#!/usr/bin/env python
"""CI perf smoke: admission fast-path regression + exactness gate.

Two checks, both cheap enough for every pull request:

1. **Throughput floor** — re-measures the tracked ``smoke`` benchmark
   (400 jobs x 64 nodes, see ``BENCH_admission.json``) and fails when
   any policy's engine submit throughput drops more than
   ``--max-regression`` (default 1.5x) below the committed numbers.
   The threshold absorbs runner noise while still catching algorithmic
   regressions (an accidentally disabled cache, a quadratic scan, a
   cert that silently stopped firing).

2. **Exactness spot check** — runs one scenario per policy with the
   fast path on and again with ``REPRO_DISABLE_ADMISSION_CACHE=1`` and
   requires byte-identical metrics.  The fast path is exact memoization
   by design; this is the canary if that ever stops being true (the
   full property-based check lives in
   ``tests/test_scheduling/test_cache_parity.py``).

Exit status 0 = both gates pass.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PARITY_SNIPPET = r"""
import dataclasses, json, sys
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario, build_scenario_jobs
cfg = ScenarioConfig(
    num_jobs=int(sys.argv[2]), num_nodes=int(sys.argv[3]),
    seed=int(sys.argv[4]), policy=sys.argv[1],
)
res = run_scenario(cfg, jobs=build_scenario_jobs(cfg))
print(json.dumps(dataclasses.asdict(res.metrics), sort_keys=True))
"""


def _run_parity(policy: str, jobs: int, nodes: int, seed: int) -> bool:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    args = [sys.executable, "-c", PARITY_SNIPPET, policy, str(jobs), str(nodes), str(seed)]
    env.pop("REPRO_DISABLE_ADMISSION_CACHE", None)
    env.pop("REPRO_LAZY_SYNC", None)
    fast = subprocess.run(args, env=env, capture_output=True, text=True)
    env["REPRO_DISABLE_ADMISSION_CACHE"] = "1"
    reference = subprocess.run(args, env=env, capture_output=True, text=True)
    if fast.returncode or reference.returncode:
        sys.stderr.write(fast.stderr + reference.stderr)
        return False
    if fast.stdout != reference.stdout:
        print(f"parity FAILED for {policy}: fast path != reference", file=sys.stderr)
        print(f"  fast:      {fast.stdout.strip()[:200]}", file=sys.stderr)
        print(f"  reference: {reference.stdout.strip()[:200]}", file=sys.stderr)
        return False
    print(f"parity OK for {policy} ({jobs} jobs x {nodes} nodes)")
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=400)
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--label", default="smoke",
                        help="committed BENCH_admission.json section to gate against")
    parser.add_argument("--max-regression", type=float, default=1.5)
    parser.add_argument("--skip-bench", action="store_true",
                        help="only run the exactness spot check")
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

    ok = True
    for policy in ("edf", "libra", "librarisk"):
        ok = _run_parity(policy, args.jobs, args.nodes, args.seed) and ok
    if not ok:
        return 1

    if args.skip_bench:
        return 0

    from repro.experiments.bench import (
        BENCH_FILENAME,
        check_regression,
        load_bench_file,
        run_bench,
    )

    doc = load_bench_file(os.path.join(REPO_ROOT, BENCH_FILENAME))
    fresh = run_bench(jobs=args.jobs, nodes=args.nodes, seed=args.seed, repeats=2)
    for policy, body in sorted(fresh["policies"].items()):
        engine = body["engine"]
        print(
            f"{policy:<10s} engine {engine['jobs_per_sec']:>9.1f} jobs/s "
            f"(p99 {engine['latency_us']['p99']:.0f} us)"
        )
    failures = check_regression(
        doc, args.label, fresh, max_regression=args.max_regression
    )
    if failures:
        for failure in failures:
            print(f"perf regression: {failure}", file=sys.stderr)
        return 1
    print(f"perf smoke passed (within {args.max_regression:g}x of "
          f"committed {args.label!r} numbers)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
