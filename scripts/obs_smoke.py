#!/usr/bin/env python3
"""Observability smoke test: serve, load, trace, top — twice, byte-identical.

The observability stack promises determinism end to end: trace ids are
minted from (config seed, submit sequence, job id), windowed telemetry
advances on simulated time, and ``repro top --once --json`` emits only
the deterministic view.  This script holds that promise against the
real CLI surface:

1. start ``repro serve`` (WAL-backed) as a subprocess,
2. drive 200 jobs through ``repro replay --url`` (the load generator),
3. capture ``repro trace <job-id> --url ... --json``,
4. capture ``repro top --once --json``,
5. stop the server, re-read the same trace offline from the WAL
   (``repro trace --wal``) and require it byte-identical to the live
   answer,
6. run the whole cycle again from scratch and require both the trace
   and the top snapshot byte-identical to the first pass.

Exit status 0 iff every comparison holds.

Usage::

    python scripts/obs_smoke.py [--port 8471] [--jobs 200]
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

POLICY = "librarisk"
NODES = 16
TRACE_JOB_ID = 1


def server_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def repro(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=server_env(), capture_output=True, text=True, timeout=120,
    )


def must(proc: subprocess.CompletedProcess, what: str) -> str:
    if proc.returncode != 0:
        raise SystemExit(
            f"{what} failed (rc={proc.returncode}):\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc.stdout


def wait_healthy(port: int, proc: subprocess.Popen,
                 deadline: float = 30.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if proc.poll() is not None:
            raise SystemExit(
                f"server exited during startup (rc={proc.returncode}):\n"
                f"{proc.stdout.read() if proc.stdout else ''}"
            )
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1.0
            ):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit("server did not become healthy in time")


def stop_server(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


def run_cycle(port: int, jobs: int, workdir: str) -> dict:
    """One serve → load → trace → top pass; returns the captured outputs."""
    wal = os.path.join(workdir, "obs.wal")
    url = f"http://127.0.0.1:{port}"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--policy", POLICY,
         "--nodes", str(NODES), "--port", str(port), "--wal", wal],
        env=server_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    try:
        wait_healthy(port, server)
        must(repro("replay", "--url", url, "--jobs", str(jobs),
                   "--nodes", str(NODES), "--policy", POLICY),
             "repro replay")
        live_trace = must(
            repro("trace", str(TRACE_JOB_ID), "--url", url, "--json"),
            "repro trace --url",
        ).strip()
        top_json = must(
            repro("top", "--url", url, "--once", "--json"),
            "repro top --once --json",
        ).strip()
    finally:
        stop_server(server)

    wal_trace = must(
        repro("trace", str(TRACE_JOB_ID), "--wal", wal, "--json"),
        "repro trace --wal",
    ).strip()
    return {"live_trace": live_trace, "wal_trace": wal_trace, "top": top_json}


def check(label: str, ok: bool) -> bool:
    print(f"  {'PASS' if ok else 'FAIL'}  {label}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8471)
    parser.add_argument("--jobs", type=int, default=200)
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="obs-smoke-")
    failures = 0
    try:
        dir_a = os.path.join(workdir, "a")
        dir_b = os.path.join(workdir, "b")
        os.makedirs(dir_a)
        os.makedirs(dir_b)
        print(f"obs smoke: pass 1 ({args.jobs} jobs on port {args.port})")
        first = run_cycle(args.port, args.jobs, dir_a)
        print(f"obs smoke: pass 2 (fresh server on port {args.port + 1})")
        second = run_cycle(args.port + 1, args.jobs, dir_b)

        trace = json.loads(first["live_trace"])
        top = json.loads(first["top"])
        print("obs smoke: comparisons")
        for label, ok in (
            ("trace has a span tree",
             bool(trace.get("trace_id")) and len(trace.get("spans", [])) >= 2),
            ("top reports the policy and counts",
             top.get("policy") == POLICY
             and top.get("counts", {}).get("submitted") == args.jobs),
            ("top carries windowed loss ratio",
             POLICY in top.get("window", {}).get("policies", {})),
            ("live trace == WAL-recovered trace",
             first["live_trace"] == first["wal_trace"]),
            ("trace byte-identical across runs",
             first["live_trace"] == second["live_trace"]),
            ("top snapshot byte-identical across runs",
             first["top"] == second["top"]),
        ):
            if not check(label, ok):
                failures += 1
        if failures:
            print(f"\nfirst trace:  {first['live_trace'][:400]}")
            print(f"second trace: {second['live_trace'][:400]}")
            print(f"first top:    {first['top'][:400]}")
            print(f"second top:   {second['top'][:400]}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print(f"\nobs smoke: {'OK' if not failures else f'{failures} failure(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
