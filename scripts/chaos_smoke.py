#!/usr/bin/env python3
"""Chaos smoke test: ``kill -9`` a WAL-backed server mid-replay, recover,
and require byte-identical final metrics to an uninterrupted run.

This is the out-of-process complement to ``tests/test_service/test_chaos.py``:
the server really dies (``--faults crash=...,mode=exit`` hard-exits with
``os._exit(137)``, the same abrupt death ``kill -9`` produces), recovery
really reads whatever the dead process left on disk, and the comparison
is against a plain in-process replay of the same job stream.

One scripted crash is exercised at every WAL crash point::

    wal.before_append   request lost before it was logged
    wal.after_append    logged but never applied
    wal.after_apply     applied but never acked

Exit status 0 iff every crash point recovers to the baseline metrics.

Usage::

    python scripts/chaos_smoke.py [--port 8461] [--jobs 40]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.experiments.config import ScenarioConfig  # noqa: E402
from repro.service import protocol  # noqa: E402
from repro.service.loadgen import job_request_payload  # noqa: E402

POLICY = "librarisk"
NODES = 8
SEED = 23
CRASH_POINTS = ("wal.before_append", "wal.after_append", "wal.after_apply")
CRASH_AT = 15  # the Nth hit of the crash point dies


def server_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def rpc(port: int, request: dict, timeout: float = 10.0):
    body = json.dumps(request).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/rpc", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def submit_request(job) -> dict:
    return {"v": protocol.PROTOCOL_VERSION, "type": "submit",
            "job": job_request_payload(job)}


def wait_healthy(port: int, proc, deadline: float = 30.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if proc.poll() is not None:
            raise SystemExit(
                f"server exited during startup (rc={proc.returncode}):\n"
                f"{proc.stdout.read() if proc.stdout else ''}"
            )
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1.0
            ):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit("server did not become healthy in time")


def start_server(port: int, wal: str, restore=None, faults=None):
    cmd = [
        sys.executable, "-m", "repro", "serve", "--policy", POLICY,
        "--nodes", str(NODES), "--port", str(port), "--wal", wal,
    ]
    if restore is not None:
        cmd += ["--restore", restore]
    if faults is not None:
        cmd += ["--faults", faults]
    proc = subprocess.Popen(
        cmd, env=server_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    wait_healthy(port, proc)
    return proc


def baseline_metrics(jobs) -> dict:
    from repro.service.engine import AdmissionEngine, EngineConfig

    engine = AdmissionEngine(EngineConfig(policy=POLICY, num_nodes=NODES))
    for job in jobs:
        engine.submit(job)
    engine.drain()
    return engine.metrics().as_dict()


def run_crash_point(point: str, jobs, port: int, baseline: dict) -> bool:
    workdir = tempfile.mkdtemp(prefix=f"chaos-{point.replace('.', '-')}-")
    wal = os.path.join(workdir, "chaos.wal")
    compacted = os.path.join(workdir, "compact.json")

    proc = start_server(
        port, wal, faults=f"crash={point}:{CRASH_AT},mode=exit",
    )
    crashed_index = None
    for index, job in enumerate(jobs):
        try:
            status, _ = rpc(port, submit_request(job))
        except OSError:
            crashed_index = index
            break
        if status != 200:
            print(f"  [{point}] unexpected HTTP {status} on job {job.job_id}")
            proc.kill()
            return False
    proc.wait(timeout=30)
    if crashed_index is None or proc.returncode != 137:
        print(f"  [{point}] server did not die as scripted "
              f"(rc={proc.returncode}, crashed_index={crashed_index})")
        return False
    print(f"  [{point}] server died with rc=137 mid-job "
          f"{jobs[crashed_index].job_id} (as scripted)")

    # Offline recovery compacts whatever the dead process left behind.
    recover = subprocess.run(
        [sys.executable, "-m", "repro", "recover", wal, "--out", compacted],
        env=server_env(), capture_output=True, text=True, timeout=120,
    )
    if recover.returncode != 0:
        print(f"  [{point}] repro recover failed:\n{recover.stdout}{recover.stderr}")
        return False
    print("  " + recover.stdout.splitlines()[0])

    # Restart from the compacted checkpoint + the same WAL; the client
    # retries its unacknowledged request, then finishes the stream.
    proc = start_server(port, wal, restore=compacted)
    try:
        status, response = rpc(port, submit_request(jobs[crashed_index]))
        if status != 200:
            print(f"  [{point}] retry of the in-flight job failed: "
                  f"HTTP {status} {response}")
            return False
        if response.get("duplicate"):
            print(f"  [{point}] retry answered from the decision log "
                  f"(duplicate=true)")
        for job in jobs[crashed_index + 1:]:
            status, response = rpc(port, submit_request(job))
            if status != 200:
                print(f"  [{point}] job {job.job_id} failed after recovery: "
                      f"HTTP {status}")
                return False
        status, drained = rpc(
            port, {"v": protocol.PROTOCOL_VERSION, "type": "drain"},
            timeout=60.0,
        )
        if status != 200:
            print(f"  [{point}] drain failed: HTTP {status}")
            return False
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    if drained["metrics"] != baseline:
        print(f"  [{point}] FINAL METRICS DIVERGED")
        for key in sorted(set(baseline) | set(drained["metrics"])):
            got, want = drained["metrics"].get(key), baseline.get(key)
            if got != want:
                print(f"    {key}: recovered={got!r} baseline={want!r}")
        return False
    print(f"  [{point}] final metrics byte-identical to uninterrupted run")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8461)
    parser.add_argument("--jobs", type=int, default=40)
    args = parser.parse_args()

    from repro.experiments.runner import build_scenario_jobs

    config = ScenarioConfig(
        policy=POLICY, num_jobs=args.jobs, num_nodes=NODES, seed=SEED,
    )
    jobs = build_scenario_jobs(config)
    baseline = baseline_metrics(jobs)
    print(f"baseline: {len(jobs)} jobs through in-process {POLICY}, "
          f"{baseline['pct_deadlines_fulfilled']:.1f}% deadlines fulfilled")

    ok = True
    for offset, point in enumerate(CRASH_POINTS):
        print(f"crash point {point}:")
        ok = run_crash_point(point, jobs, args.port + offset, baseline) and ok
    print("chaos smoke: " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
