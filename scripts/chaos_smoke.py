#!/usr/bin/env python3
"""Chaos smoke test: ``kill -9`` a WAL-backed server mid-replay, recover,
and require byte-identical final metrics to an uninterrupted run.

This is the out-of-process complement to ``tests/test_service/test_chaos.py``:
the server really dies (``--faults crash=...,mode=exit`` hard-exits with
``os._exit(137)``, the same abrupt death ``kill -9`` produces), recovery
really reads whatever the dead process left on disk, and the comparison
is against a plain in-process replay of the same job stream.

One scripted crash is exercised at every WAL crash point::

    wal.before_append   request lost before it was logged
    wal.after_append    logged but never applied
    wal.after_apply     applied but never acked

A fourth scenario exercises the sharded fleet: a 4-worker
``repro serve --shards``-style deployment is driven through a
:class:`~repro.service.sharding.ShardRouter`, one worker is killed with
a real ``SIGKILL`` mid-stream, the supervisor respawns it, it recovers
from its own shard WAL, and the merged drained metrics must be
byte-identical to an un-killed run of the same fleet — while the
surviving shards kept answering throughout the outage.

A fifth scenario repeats the shard kill with **failover parking** on
(``max_parked``) and WAL auto-compaction enabled on every worker: no
submit may see a client-visible error (the down shard's submits are
parked in arrival order and acked, then flushed in order on recovery),
the drained fleet must again be byte-identical to the un-killed
baseline, and ``repro scrub`` must pass the surviving WAL chains —
then fail once a byte of an archived segment is flipped.

Exit status 0 iff every scenario recovers to its baseline metrics.

Usage::

    python scripts/chaos_smoke.py [--port 8461] [--jobs 40]
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.experiments.config import ScenarioConfig  # noqa: E402
from repro.service import protocol  # noqa: E402
from repro.service.loadgen import job_request_payload  # noqa: E402

POLICY = "librarisk"
NODES = 8
SEED = 23
CRASH_POINTS = ("wal.before_append", "wal.after_append", "wal.after_apply")
CRASH_AT = 15  # the Nth hit of the crash point dies


def server_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def rpc(port: int, request: dict, timeout: float = 10.0):
    body = json.dumps(request).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/rpc", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def submit_request(job) -> dict:
    return {"v": protocol.PROTOCOL_VERSION, "type": "submit",
            "job": job_request_payload(job)}


def wait_healthy(port: int, proc, deadline: float = 30.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if proc.poll() is not None:
            raise SystemExit(
                f"server exited during startup (rc={proc.returncode}):\n"
                f"{proc.stdout.read() if proc.stdout else ''}"
            )
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1.0
            ):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit("server did not become healthy in time")


def start_server(port: int, wal: str, restore=None, faults=None):
    cmd = [
        sys.executable, "-m", "repro", "serve", "--policy", POLICY,
        "--nodes", str(NODES), "--port", str(port), "--wal", wal,
    ]
    if restore is not None:
        cmd += ["--restore", restore]
    if faults is not None:
        cmd += ["--faults", faults]
    proc = subprocess.Popen(
        cmd, env=server_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    wait_healthy(port, proc)
    return proc


def baseline_metrics(jobs) -> dict:
    from repro.service.engine import AdmissionEngine, EngineConfig

    engine = AdmissionEngine(EngineConfig(policy=POLICY, num_nodes=NODES))
    for job in jobs:
        engine.submit(job)
    engine.drain()
    return engine.metrics().as_dict()


def run_crash_point(point: str, jobs, port: int, baseline: dict) -> bool:
    workdir = tempfile.mkdtemp(prefix=f"chaos-{point.replace('.', '-')}-")
    wal = os.path.join(workdir, "chaos.wal")
    compacted = os.path.join(workdir, "compact.json")

    proc = start_server(
        port, wal, faults=f"crash={point}:{CRASH_AT},mode=exit",
    )
    crashed_index = None
    for index, job in enumerate(jobs):
        try:
            status, _ = rpc(port, submit_request(job))
        except OSError:
            crashed_index = index
            break
        if status != 200:
            print(f"  [{point}] unexpected HTTP {status} on job {job.job_id}")
            proc.kill()
            return False
    proc.wait(timeout=30)
    if crashed_index is None or proc.returncode != 137:
        print(f"  [{point}] server did not die as scripted "
              f"(rc={proc.returncode}, crashed_index={crashed_index})")
        return False
    print(f"  [{point}] server died with rc=137 mid-job "
          f"{jobs[crashed_index].job_id} (as scripted)")

    # Offline recovery compacts whatever the dead process left behind.
    recover = subprocess.run(
        [sys.executable, "-m", "repro", "recover", wal, "--out", compacted],
        env=server_env(), capture_output=True, text=True, timeout=120,
    )
    if recover.returncode != 0:
        print(f"  [{point}] repro recover failed:\n{recover.stdout}{recover.stderr}")
        return False
    print("  " + recover.stdout.splitlines()[0])

    # Restart from the compacted checkpoint + the same WAL; the client
    # retries its unacknowledged request, then finishes the stream.
    proc = start_server(port, wal, restore=compacted)
    try:
        status, response = rpc(port, submit_request(jobs[crashed_index]))
        if status != 200:
            print(f"  [{point}] retry of the in-flight job failed: "
                  f"HTTP {status} {response}")
            return False
        if response.get("duplicate"):
            print(f"  [{point}] retry answered from the decision log "
                  f"(duplicate=true)")
        for job in jobs[crashed_index + 1:]:
            status, response = rpc(port, submit_request(job))
            if status != 200:
                print(f"  [{point}] job {job.job_id} failed after recovery: "
                      f"HTTP {status}")
                return False
        status, drained = rpc(
            port, {"v": protocol.PROTOCOL_VERSION, "type": "drain"},
            timeout=60.0,
        )
        if status != 200:
            print(f"  [{point}] drain failed: HTTP {status}")
            return False
    finally:
        proc.terminate()
        proc.wait(timeout=30)

    if drained["metrics"] != baseline:
        print(f"  [{point}] FINAL METRICS DIVERGED")
        for key in sorted(set(baseline) | set(drained["metrics"])):
            got, want = drained["metrics"].get(key), baseline.get(key)
            if got != want:
                print(f"    {key}: recovered={got!r} baseline={want!r}")
        return False
    print(f"  [{point}] final metrics byte-identical to uninterrupted run")
    return True


SHARDS = 4
KILL_AFTER = 12  # SIGKILL a worker once this many jobs are in


def run_sharded_fleet(jobs, base_port: int, workdir: str, kill: bool,
                      park: int = 0, compact_every: int = 0):
    """Drive one sharded fleet to drain; optionally SIGKILL a worker.

    With ``park > 0`` the router runs in failover-parking mode: the
    stream keeps its original order, every submit must be acked on the
    first attempt (forwarded or parked — a non-200 is fatal), and the
    report counts how many submits were parked.  ``compact_every``
    enables WAL auto-compaction on every worker.

    Returns ``(merged_metrics, per_shard_metrics, restarts, report)``
    where ``report`` is a dict of facts about the outage (which shard
    died, how many submits the survivors answered while it was down).
    """
    import signal

    from repro.service.engine import EngineConfig
    from repro.service.sharding import (
        ShardRouter,
        ShardSupervisor,
        WorkerSpec,
        shard_for_submit,
        shard_path,
    )

    wal_base = os.path.join(workdir, "fleet.wal")
    specs = []
    for shard in range(SHARDS):
        port = base_port + shard
        cmd = [
            sys.executable, "-m", "repro", "serve", "--policy", POLICY,
            "--nodes", str(NODES), "--port", str(port),
            "--shard-id", str(shard), "--shard-count", str(SHARDS),
            "--wal", shard_path(wal_base, shard, SHARDS),
        ]
        if compact_every:
            cmd += ["--wal-compact-every", str(compact_every)]
        specs.append(WorkerSpec(
            shard_id=shard,
            cmd=cmd,
            url=f"http://127.0.0.1:{port}",
            env=server_env(),
        ))
    router = ShardRouter(
        EngineConfig(policy=POLICY, num_nodes=NODES),
        [spec.url for spec in specs],
        timeout=5.0,
        max_parked=park,
    )
    supervisor = ShardSupervisor(
        specs, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    supervisor.router = router

    # The victim is the shard owning the job at the kill index, so the
    # stream is guaranteed to route submits at a dead shard.  The jobs
    # after the kill are sent survivors-first: cross-shard interleaving
    # is irrelevant to any shard's state (each engine only ever sees
    # its own jobs, in its own order), and it lets the surviving shards
    # prove they keep admitting while the victim is down.
    victim = None
    order = list(jobs)
    if kill:
        victim = shard_for_submit(
            jobs[KILL_AFTER].job_id, jobs[KILL_AFTER].user, SHARDS,
        )
        if not park:
            # Parking keeps the original order end to end (that is the
            # point); without it the survivors-first reorder applies.
            rest = jobs[KILL_AFTER:]
            order = jobs[:KILL_AFTER] + [
                j for j in rest
                if shard_for_submit(j.job_id, j.user, SHARDS) != victim
            ] + [
                j for j in rest
                if shard_for_submit(j.job_id, j.user, SHARDS) == victim
            ]

    report = {"victim": victim, "served_during_outage": 0, "retried": 0,
              "parked": 0,
              "down_during_outage": None, "reachable_during_outage": None}
    with supervisor:
        supervisor.start(wait_healthy=True, timeout=60.0)
        victim_recovered = False
        for index, job in enumerate(order):
            if kill and index == KILL_AFTER:
                os.kill(router.shard_pids[victim], signal.SIGKILL)
                health = router.health_response()
                stats = router.stats_response()["stats"]
                report["down_during_outage"] = health["shards_down"]
                report["reachable_during_outage"] = stats["shards_reachable"]
                print(f"  [shard-kill] SIGKILL shard {victim} worker; fleet "
                      f"reports {health['status']!r} with "
                      f"{health['shards_down']} shard(s) down, "
                      f"{stats['shards_reachable']}/{SHARDS} shards "
                      f"reachable")
            body = json.dumps(submit_request(job)).encode()
            if park:
                # Parking mode is strict: every submit must be acked on
                # its first attempt — forwarded or parked — or the
                # "no client-visible submit loss" invariant is broken.
                status, response = router.handle(body)
                if status != 200:
                    raise SystemExit(
                        f"parking drill: job {job.job_id} saw a "
                        f"client-visible error: HTTP {status} {response}"
                    )
                if response.get("type") == "parked":
                    report["parked"] += 1
                continue
            attempts = 0
            deadline = time.monotonic() + 30.0
            while True:
                attempts += 1
                status, response = router.handle(body)
                if status == 200:
                    break
                if time.monotonic() > deadline:
                    raise SystemExit(
                        f"job {job.job_id} still failing after 30s: "
                        f"HTTP {status} {response}"
                    )
                time.sleep(0.2)
            if victim is not None and index >= KILL_AFTER:
                shard = shard_for_submit(job.job_id, job.user, SHARDS)
                if shard == victim:
                    victim_recovered = True
                elif attempts == 1 and not victim_recovered:
                    report["served_during_outage"] += 1
            if attempts > 1:
                report["retried"] += 1
        # The drain fans out to every shard, so wait for the whole
        # fleet (including the respawned victim) to be reachable again.
        # Keyed on shards_down, not the merged status: tiny 2-node
        # shards legitimately burn their deadline-miss budget and
        # report (SLO-)"degraded" while serving perfectly well.
        deadline = time.monotonic() + 30.0
        while router.health_response()["shards_down"] != 0:
            if time.monotonic() > deadline:
                raise SystemExit("a shard never came back after the kill")
            time.sleep(0.2)
        status, drained = router.handle(
            json.dumps({"v": protocol.PROTOCOL_VERSION, "type": "drain"})
            .encode()
        )
        if status != 200:
            raise SystemExit(f"sharded drain failed: HTTP {status} {drained}")
        restarts = supervisor.restart_counts()
    return drained["metrics"], drained.get("shards", {}), restarts, report


def run_shard_kill(jobs, base_port: int, clean, clean_shards) -> bool:
    """SIGKILL one of four shard workers mid-stream; require byte-identical
    merged metrics vs an un-killed run of the same sharded fleet."""
    killed_dir = tempfile.mkdtemp(prefix="chaos-shard-killed-")

    killed, killed_shards, restarts, report = run_sharded_fleet(
        jobs, base_port, killed_dir, kill=True,
    )
    victim = report["victim"]
    if victim is None or restarts.get(victim) != 1:
        print(f"  [shard-kill] supervisor did not restart the killed "
              f"worker exactly once (victim={victim}, restarts={restarts})")
        return False
    others = {k: v for k, v in restarts.items() if k != victim}
    if any(others.values()):
        print(f"  [shard-kill] surviving workers restarted too: {others}")
        return False
    print(f"  [shard-kill] supervisor respawned shard {victim} "
          f"(restarts {restarts}); survivors answered "
          f"{report['served_during_outage']} submit(s) during the outage; "
          f"{report['retried']} submit(s) needed retries")
    if report["reachable_during_outage"] != SHARDS - 1:
        print(f"  [shard-kill] expected {SHARDS - 1} shards reachable right "
              f"after the kill, saw {report['reachable_during_outage']}")
        return False
    if report["down_during_outage"] != 1:
        # The probe runs milliseconds after the SIGKILL; a respawned
        # worker takes far longer than that to boot, so /healthz must
        # have seen exactly the victim down while the rest served.
        print(f"  [shard-kill] /healthz saw {report['down_during_outage']} "
              f"shard(s) down during the outage, expected exactly 1")
        return False
    if report["served_during_outage"] < 1:
        print("  [shard-kill] no surviving shard answered during the outage")
        return False

    ok = True
    if killed != clean:
        print("  [shard-kill] MERGED METRICS DIVERGED")
        for key in sorted(set(clean) | set(killed)):
            got, want = killed.get(key), clean.get(key)
            if got != want:
                print(f"    {key}: killed={got!r} clean={want!r}")
        ok = False
    if killed_shards != clean_shards:
        print("  [shard-kill] PER-SHARD METRICS DIVERGED")
        ok = False
    if ok:
        print("  [shard-kill] merged + per-shard metrics byte-identical "
              "to the un-killed fleet")
    return ok


PARK_CAPACITY = 64  # per-shard failover parking slots for the drill
COMPACT_EVERY = 5   # workers compact once 5 records sit past the base LSN


def run_scrub(wal_base: str):
    """One ``repro scrub`` pass over the drill fleet's WAL chains."""
    return subprocess.run(
        [sys.executable, "-m", "repro", "scrub", wal_base,
         "--shards", str(SHARDS)],
        env=server_env(), capture_output=True, text=True, timeout=120,
    )


def run_parking_drill(jobs, base_port: int, clean, clean_shards) -> bool:
    """SIGKILL a shard with failover parking + WAL compaction on.

    Every submit must be acked first-try (forwarded or parked), the
    drained fleet must be byte-identical to the un-killed baseline,
    ``repro scrub`` must pass the surviving WAL chains, and must fail
    once a byte of an archived segment is flipped.
    """
    workdir = tempfile.mkdtemp(prefix="chaos-shard-parked-")
    killed, killed_shards, restarts, report = run_sharded_fleet(
        jobs, base_port, workdir, kill=True,
        park=PARK_CAPACITY, compact_every=COMPACT_EVERY,
    )
    victim = report["victim"]
    ok = True
    if report["parked"] < 1:
        print("  [parking] no submit was ever parked — the drill did not "
              "exercise failover parking")
        ok = False
    else:
        print(f"  [parking] {report['parked']} submit(s) to dead shard "
              f"{victim} parked and acked; zero client-visible errors")
    if restarts.get(victim) != 1 or any(
            count for shard, count in restarts.items() if shard != victim):
        print(f"  [parking] unexpected restart counts: {restarts}")
        ok = False

    if killed != clean:
        print("  [parking] MERGED METRICS DIVERGED")
        for key in sorted(set(clean) | set(killed)):
            got, want = killed.get(key), clean.get(key)
            if got != want:
                print(f"    {key}: parked={got!r} clean={want!r}")
        ok = False
    if killed_shards != clean_shards:
        print("  [parking] PER-SHARD METRICS DIVERGED")
        ok = False
    if ok:
        print("  [parking] merged + per-shard metrics byte-identical "
              "to the un-killed fleet")

    # Scrub the very WAL chains the drill dragged through a SIGKILL.
    wal_base = os.path.join(workdir, "fleet.wal")
    scrub = run_scrub(wal_base)
    if scrub.returncode != 0:
        print(f"  [scrub] surviving fleet failed scrub "
              f"(rc={scrub.returncode}):\n{scrub.stdout}{scrub.stderr}")
        ok = False
    else:
        summary = scrub.stdout.strip().splitlines()
        print("  [scrub] " + (summary[0] if summary else "clean (exit 0)"))

    segments = sorted(glob.glob(os.path.join(workdir, "*.seg*")))
    if not segments:
        print("  [scrub] no archived segments found — compaction never ran")
        return False
    target = segments[0]
    with open(target, "rb") as handle:
        blob = bytearray(handle.read())
    blob[len(blob) // 2] ^= 0x01
    with open(target, "wb") as handle:
        handle.write(bytes(blob))
    scrub = run_scrub(wal_base)
    if scrub.returncode == 0:
        print(f"  [scrub] flipped a byte of {os.path.basename(target)} "
              f"and scrub still passed")
        ok = False
    else:
        print(f"  [scrub] corrupted {os.path.basename(target)} detected "
              f"(exit {scrub.returncode})")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8461)
    parser.add_argument("--jobs", type=int, default=40)
    args = parser.parse_args()

    from repro.experiments.runner import build_scenario_jobs

    config = ScenarioConfig(
        policy=POLICY, num_jobs=args.jobs, num_nodes=NODES, seed=SEED,
    )
    jobs = build_scenario_jobs(config)
    baseline = baseline_metrics(jobs)
    print(f"baseline: {len(jobs)} jobs through in-process {POLICY}, "
          f"{baseline['pct_deadlines_fulfilled']:.1f}% deadlines fulfilled")

    ok = True
    for offset, point in enumerate(CRASH_POINTS):
        print(f"crash point {point}:")
        ok = run_crash_point(point, jobs, args.port + offset, baseline) and ok

    # One un-killed fleet run anchors both sharded drills: per-shard
    # state depends only on per-shard arrival order, which every drill
    # preserves, so a single baseline serves both comparisons.
    print(f"shard kill ({SHARDS} workers):")
    clean_dir = tempfile.mkdtemp(prefix="chaos-shard-clean-")
    clean, clean_shards, clean_restarts, _ = run_sharded_fleet(
        jobs, args.port + 100, clean_dir, kill=False,
    )
    if any(clean_restarts.values()):
        print(f"  [shard-kill] baseline fleet restarted workers "
              f"unexpectedly: {clean_restarts}")
        ok = False
    else:
        print(f"  [shard-kill] baseline fleet drained: "
              f"{clean['pct_deadlines_fulfilled']:.1f}% deadlines fulfilled")
        ok = run_shard_kill(
            jobs, args.port + 100 + SHARDS, clean, clean_shards,
        ) and ok
        print(f"parking drill ({SHARDS} workers, failover parking "
              f"+ compaction + scrub):")
        ok = run_parking_drill(
            jobs, args.port + 100 + 2 * SHARDS, clean, clean_shards,
        ) and ok
    print("chaos smoke: " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
