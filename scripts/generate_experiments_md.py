#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md at paper scale.

Runs all four figures (default: the paper's full 3000-job workload on
128 nodes), validates every §5 claim, and writes EXPERIMENTS.md.

Usage::

    python scripts/generate_experiments_md.py [num_jobs] [out_path]
"""

import sys
import time
from pathlib import Path

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import all_figures
from repro.experiments.report import experiments_markdown
from repro.experiments.runner import load_base_records
from repro.experiments.serialize import save_figures
from repro.experiments.validation import validate_all
from repro.workload.traces import describe_records


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    out_path = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("EXPERIMENTS.md")
    processes = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    base = ScenarioConfig(num_jobs=num_jobs, num_nodes=128, seed=42)
    t0 = time.time()

    def progress(msg: str) -> None:
        print(f"  [{time.time() - t0:7.0f}s] {msg}", file=sys.stderr, flush=True)

    stats = describe_records(load_base_records(base))
    figures = all_figures(base=base, progress=progress, processes=processes)
    report = validate_all(figures)

    save_figures(figures, Path("benchmarks/results/fullscale"))
    out_path.write_text(experiments_markdown(figures, trace_stats=stats))
    print(f"wrote {out_path} ({report.passed}/{len(report.claims)} claims hold) "
          f"in {time.time() - t0:.0f}s")
    for claim in report.claims:
        if not claim.passed:
            print("  " + claim.render())


if __name__ == "__main__":
    main()
