"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis import sanitizer
from repro.cluster.cluster import Cluster
from repro.cluster.job import Job, UrgencyClass
from repro.cluster.rms import ResourceManagementSystem
from repro.cluster.share import ShareParams
from repro.scheduling.registry import make_policy, policy_discipline
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams

# REPRO_SANITIZE=1 runs the whole suite with the determinism sanitizer
# armed: wall-clock/entropy reads inside engine decision spans raise.
sanitizer.install_from_env()


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RngStreams:
    return RngStreams(seed=1234)


def make_job(
    runtime: float = 100.0,
    estimate: float | None = None,
    numproc: int = 1,
    deadline: float = 200.0,
    submit: float = 0.0,
    urgency: UrgencyClass = UrgencyClass.LOW,
    job_id: int | None = None,
) -> Job:
    """A job with convenient defaults for unit tests."""
    return Job(
        runtime=runtime,
        estimated_runtime=estimate if estimate is not None else runtime,
        numproc=numproc,
        deadline=deadline,
        submit_time=submit,
        urgency=urgency,
        job_id=job_id,
    )


def run_jobs(
    policy_name: str,
    jobs: list[Job],
    num_nodes: int = 4,
    rating: float = 1.0,
    share_params: ShareParams | None = None,
    **policy_kwargs,
):
    """Run a tiny end-to-end simulation; returns (rms, sim, cluster).

    ``rating=1.0`` makes work equal runtime in seconds, which keeps
    hand-computed expectations simple.
    """
    sim = Simulator()
    cluster = Cluster.homogeneous(
        sim,
        num_nodes,
        rating=rating,
        discipline=policy_discipline(policy_name),
        share_params=share_params or ShareParams(),
    )
    rms = ResourceManagementSystem(sim, cluster, make_policy(policy_name, **policy_kwargs))
    rms.submit_all(jobs)
    sim.run()
    return rms, sim, cluster
