"""Tests for Event objects and their ordering semantics."""


from repro.sim.events import Event, EventPriority


class TestEventOrdering:
    def test_earlier_time_sorts_first(self):
        a = Event(1.0, EventPriority.NORMAL, None)
        b = Event(2.0, EventPriority.NORMAL, None)
        a.seq, b.seq = 0, 1
        assert a < b
        assert not b < a

    def test_priority_breaks_ties(self):
        completion = Event(1.0, EventPriority.COMPLETION, None)
        arrival = Event(1.0, EventPriority.ARRIVAL, None)
        completion.seq, arrival.seq = 5, 1  # seq would favour the arrival
        assert completion < arrival

    def test_seq_breaks_full_ties(self):
        a = Event(1.0, EventPriority.NORMAL, None)
        b = Event(1.0, EventPriority.NORMAL, None)
        a.seq, b.seq = 0, 1
        assert a < b

    def test_sort_key_shape(self):
        ev = Event(3.5, EventPriority.ARRIVAL, None)
        ev.seq = 42
        assert ev.sort_key() == (3.5, int(EventPriority.ARRIVAL), 42)


class TestEventBasics:
    def test_time_coerced_to_float(self):
        ev = Event(3, EventPriority.NORMAL, None)
        assert isinstance(ev.time, float)

    def test_payload_round_trip(self):
        payload = {"job": 1}
        ev = Event(0.0, EventPriority.NORMAL, None, payload=payload)
        assert ev.payload is payload

    def test_cancel_flags(self):
        ev = Event(0.0, EventPriority.NORMAL, None)
        assert not ev.cancelled
        ev.cancel()
        assert ev.cancelled

    def test_cancel_is_idempotent(self):
        ev = Event(0.0, EventPriority.NORMAL, None)
        ev.cancel()
        ev.cancel()
        assert ev.cancelled


class TestPriorityValues:
    def test_completion_before_arrival(self):
        # The admission control must see capacity freed "now" before a
        # job arriving "now" is evaluated.
        assert EventPriority.COMPLETION < EventPriority.ARRIVAL

    def test_urgent_first_monitor_last(self):
        values = [
            EventPriority.URGENT,
            EventPriority.COMPLETION,
            EventPriority.ARRIVAL,
            EventPriority.NORMAL,
            EventPriority.MONITOR,
        ]
        assert values == sorted(values)
