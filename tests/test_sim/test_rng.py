"""Tests for named deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams, _name_key


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngStreams(seed=42).get("x").random(10)
        b = RngStreams(seed=42).get("x").random(10)
        assert np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = RngStreams(seed=1).get("x").random(10)
        b = RngStreams(seed=2).get("x").random(10)
        assert not np.array_equal(a, b)

    def test_different_names_independent(self):
        s = RngStreams(seed=42)
        a = s.get("alpha").random(10)
        b = s.get("beta").random(10)
        assert not np.array_equal(a, b)

    def test_stream_identity_cached(self):
        s = RngStreams(seed=0)
        assert s.get("a") is s.get("a")

    def test_draw_order_does_not_couple_streams(self):
        # Consuming stream "a" must not perturb stream "b".
        s1 = RngStreams(seed=9)
        s1.get("a").random(100)
        b1 = s1.get("b").random(5)

        s2 = RngStreams(seed=9)
        b2 = s2.get("b").random(5)
        assert np.array_equal(b1, b2)

    def test_name_key_stable(self):
        # Guard against platform/process-salted hashing.
        assert _name_key("arrivals") == _name_key("arrivals")
        assert _name_key("arrivals") != _name_key("arrivals2")


class TestSpawn:
    def test_spawn_is_deterministic(self):
        a = RngStreams(seed=5).spawn("rep1").get("x").random(5)
        b = RngStreams(seed=5).spawn("rep1").get("x").random(5)
        assert np.array_equal(a, b)

    def test_spawn_children_differ(self):
        root = RngStreams(seed=5)
        a = root.spawn("rep1").get("x").random(5)
        b = root.spawn("rep2").get("x").random(5)
        assert not np.array_equal(a, b)

    def test_spawn_differs_from_parent(self):
        root = RngStreams(seed=5)
        child = root.spawn("rep1")
        assert not np.array_equal(root.get("x").random(5), child.get("x").random(5))


class TestMisc:
    def test_reset_restarts_streams(self):
        s = RngStreams(seed=3)
        a = s.get("x").random(4)
        s.reset()
        b = s.get("x").random(4)
        assert np.array_equal(a, b)

    def test_stream_names_sorted(self):
        s = RngStreams(seed=0)
        s.get("zeta")
        s.get("alpha")
        assert s.stream_names() == ["alpha", "zeta"]

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams(seed="42")  # type: ignore[arg-type]

    def test_numpy_int_seed_accepted(self):
        s = RngStreams(seed=np.int64(7))
        assert s.seed == 7
