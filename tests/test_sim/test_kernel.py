"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.events import Event, EventPriority
from repro.sim.kernel import SimulationError, Simulator


class TestScheduling:
    def test_schedule_fires_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(7.5, lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [7.5]

    def test_schedule_relative_delay(self, sim):
        fired = []
        sim.schedule(3.0, lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_relative_delay_is_from_current_now(self, sim):
        fired = []

        def first(ev):
            sim.schedule(2.0, lambda e: fired.append(sim.now))

        sim.schedule(5.0, first)
        sim.run()
        assert fired == [7.0]

    def test_schedule_in_past_raises(self, sim):
        sim.schedule_at(10.0, lambda ev: None)
        sim.run()
        with pytest.raises(SimulationError, match="cannot schedule"):
            sim.schedule_at(5.0, lambda ev: None)

    def test_schedule_nan_raises(self, sim):
        with pytest.raises(SimulationError, match="finite"):
            sim.schedule_at(float("nan"), lambda ev: None)

    def test_schedule_inf_raises(self, sim):
        with pytest.raises(SimulationError, match="finite"):
            sim.schedule_at(float("inf"), lambda ev: None)

    def test_schedule_at_current_time_allowed(self, sim):
        fired = []
        sim.schedule_at(0.0, lambda ev: fired.append("x"))
        sim.run()
        assert fired == ["x"]

    def test_schedule_event_object(self, sim):
        fired = []
        ev = Event(4.0, EventPriority.NORMAL, lambda e: fired.append(e.name), name="obj")
        sim.schedule_event(ev)
        sim.run()
        assert fired == ["obj"]

    def test_schedule_event_in_past_raises(self, sim):
        sim.schedule_at(1.0, lambda ev: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_event(Event(0.5, EventPriority.NORMAL, None))


class TestOrdering:
    def test_time_order(self, sim):
        order = []
        sim.schedule_at(3.0, lambda ev: order.append(3))
        sim.schedule_at(1.0, lambda ev: order.append(1))
        sim.schedule_at(2.0, lambda ev: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_priority_breaks_time_ties(self, sim):
        order = []
        sim.schedule_at(1.0, lambda ev: order.append("arrival"), priority=EventPriority.ARRIVAL)
        sim.schedule_at(
            1.0, lambda ev: order.append("completion"), priority=EventPriority.COMPLETION
        )
        sim.run()
        assert order == ["completion", "arrival"]

    def test_fifo_within_same_time_and_priority(self, sim):
        order = []
        for i in range(10):
            sim.schedule_at(1.0, lambda ev, i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_monitor_priority_runs_last(self, sim):
        order = []
        sim.schedule_at(1.0, lambda ev: order.append("monitor"), priority=EventPriority.MONITOR)
        sim.schedule_at(1.0, lambda ev: order.append("normal"), priority=EventPriority.NORMAL)
        sim.run()
        assert order == ["normal", "monitor"]

    def test_event_scheduled_at_now_runs_in_same_pass(self, sim):
        order = []

        def outer(ev):
            order.append("outer")
            sim.schedule(0.0, lambda e: order.append("inner"))

        sim.schedule_at(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 1.0


class TestRun:
    def test_run_until_stops_clock_at_bound(self, sim):
        sim.schedule_at(10.0, lambda ev: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_executes_events_at_bound(self, sim):
        fired = []
        sim.schedule_at(5.0, lambda ev: fired.append("x"))
        sim.run(until=5.0)
        assert fired == ["x"]

    def test_run_until_in_past_raises(self, sim):
        sim.schedule_at(10.0, lambda ev: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_resume_after_until(self, sim):
        fired = []
        sim.schedule_at(10.0, lambda ev: fired.append(sim.now))
        sim.run(until=5.0)
        sim.run()
        assert fired == [10.0]

    def test_stop_aborts_run(self, sim):
        fired = []

        def stopper(ev):
            fired.append("stop")
            sim.stop()

        sim.schedule_at(1.0, stopper)
        sim.schedule_at(2.0, lambda ev: fired.append("after"))
        sim.run()
        assert fired == ["stop"]
        sim.run()
        assert fired == ["stop", "after"]

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def loop(ev):
            sim.schedule(0.0, loop)

        sim.schedule_at(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()

    def test_events_fired_counts(self, sim):
        for i in range(5):
            sim.schedule_at(float(i), lambda ev: None)
        sim.run()
        assert sim.events_fired == 5

    def test_empty_run_is_noop(self, sim):
        sim.run()
        assert sim.now == 0.0
        assert sim.events_fired == 0

    def test_start_time(self):
        sim = Simulator(start_time=100.0)
        assert sim.now == 100.0
        with pytest.raises(SimulationError):
            sim.schedule_at(50.0, lambda ev: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        ev = sim.schedule_at(1.0, lambda e: fired.append("x"))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_from_earlier_event(self, sim):
        fired = []
        later = sim.schedule_at(2.0, lambda e: fired.append("later"))
        sim.schedule_at(1.0, lambda e: later.cancel())
        sim.run()
        assert fired == []

    def test_peek_skips_cancelled(self, sim):
        ev = sim.schedule_at(1.0, lambda e: None)
        sim.schedule_at(2.0, lambda e: None)
        ev.cancel()
        assert sim.peek() == 2.0

    def test_drain_cancelled(self, sim):
        events = [sim.schedule_at(float(i + 1), lambda e: None) for i in range(10)]
        for ev in events[:7]:
            ev.cancel()
        removed = sim.drain_cancelled()
        assert removed == 7
        assert sim.pending == 3
        sim.run()
        assert sim.events_fired == 3

    def test_iter_pending_excludes_cancelled(self, sim):
        keep = sim.schedule_at(1.0, lambda e: None, name="keep")
        drop = sim.schedule_at(2.0, lambda e: None, name="drop")
        drop.cancel()
        names = [e.name for e in sim.iter_pending()]
        assert names == ["keep"]
        keep.cancel()  # silence unused warnings


class TestStep:
    def test_step_executes_single_event(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda e: fired.append(1))
        sim.schedule_at(2.0, lambda e: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.now == 1.0

    def test_step_on_empty_queue(self, sim):
        assert sim.step() is False


class TestDeterminism:
    def test_identical_schedules_identical_execution(self):
        def build():
            sim = Simulator()
            order = []
            for i in range(50):
                t = (i * 37) % 11
                sim.schedule_at(float(t), lambda ev, i=i: order.append(i))
            sim.run()
            return order

        assert build() == build()


class TestOnEventObserver:
    def test_observer_sees_every_fired_event(self, sim):
        seen = []
        sim.on_event = lambda ev: seen.append(ev.name)
        sim.schedule_at(1.0, lambda e: None, name="a")
        sim.schedule_at(2.0, lambda e: None, name="b")
        sim.run()
        assert seen == ["a", "b"]

    def test_observer_skips_cancelled_events(self, sim):
        seen = []
        sim.on_event = lambda ev: seen.append(ev.name)
        ev = sim.schedule_at(1.0, lambda e: None, name="gone")
        sim.schedule_at(2.0, lambda e: None, name="kept")
        ev.cancel()
        sim.run()
        assert seen == ["kept"]

    def test_observer_fires_before_callback(self, sim):
        order = []
        sim.on_event = lambda ev: order.append("observe")
        sim.schedule_at(1.0, lambda e: order.append("callback"))
        sim.run()
        assert order == ["observe", "callback"]

    def test_constructor_accepts_observer(self):
        seen = []
        sim = Simulator(on_event=lambda ev: seen.append(ev.time))
        sim.schedule_at(3.0, lambda e: None)
        sim.run()
        assert seen == [3.0]
