"""Tests for the generator-based process layer."""

import pytest

from repro.sim.process import Process, Timeout, Waiter


class TestTimeout:
    def test_process_sleeps(self, sim):
        log = []

        def proc():
            log.append(("start", sim.now))
            yield Timeout(5.0)
            log.append(("woke", sim.now))

        Process(sim, proc())
        sim.run()
        assert log == [("start", 0.0), ("woke", 5.0)]

    def test_multiple_timeouts_accumulate(self, sim):
        times = []

        def proc():
            for _ in range(3):
                yield Timeout(2.0)
                times.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert times == [2.0, 4.0, 6.0]

    def test_zero_timeout_allowed(self, sim):
        done = []

        def proc():
            yield Timeout(0.0)
            done.append(True)

        Process(sim, proc())
        sim.run()
        assert done == [True]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_result_captured(self, sim):
        def proc():
            yield Timeout(1.0)
            return 42

        p = Process(sim, proc())
        sim.run()
        assert p.done
        assert p.result == 42

    def test_process_runs_to_first_yield_immediately(self, sim):
        log = []

        def proc():
            log.append("immediate")
            yield Timeout(1.0)

        Process(sim, proc())
        assert log == ["immediate"]


class TestWaiter:
    def test_trigger_wakes_process(self, sim):
        waiter = Waiter(sim, name="door")
        got = []

        def waiting():
            value = yield waiter
            got.append((value, sim.now))

        def opener():
            yield Timeout(3.0)
            waiter.trigger("opened")

        Process(sim, waiting())
        Process(sim, opener())
        sim.run()
        assert got == [("opened", 3.0)]

    def test_trigger_wakes_all_parked(self, sim):
        waiter = Waiter(sim)
        woken = []

        def waiting(tag):
            yield waiter
            woken.append(tag)

        for tag in ("a", "b", "c"):
            Process(sim, waiting(tag))
        assert waiter.waiting == 3
        assert waiter.trigger() == 3
        sim.run()
        assert woken == ["a", "b", "c"]

    def test_trigger_with_nobody_parked(self, sim):
        waiter = Waiter(sim)
        assert waiter.trigger() == 0

    def test_waiter_reusable_across_triggers(self, sim):
        waiter = Waiter(sim)
        counts = []

        def looper():
            for _ in range(2):
                yield waiter
                counts.append(sim.now)

        Process(sim, looper())

        def driver():
            yield Timeout(1.0)
            waiter.trigger()
            yield Timeout(1.0)
            waiter.trigger()

        Process(sim, driver())
        sim.run()
        assert counts == [1.0, 2.0]


class TestErrors:
    def test_bad_directive_raises(self, sim):
        def proc():
            yield "not a directive"

        with pytest.raises(TypeError, match="expected Timeout or Waiter"):
            Process(sim, proc())

    def test_process_exception_surfaces(self, sim):
        def proc():
            yield Timeout(1.0)
            raise RuntimeError("boom")

        p = Process(sim, proc())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert p.done
        assert isinstance(p.error, RuntimeError)
