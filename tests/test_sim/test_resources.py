"""Tests for the process-layer resources."""

import pytest

from repro.sim.process import Process, Timeout
from repro.sim.resources import Gate, Semaphore, Store


class TestSemaphore:
    def test_try_acquire_counts_down(self, sim):
        sem = Semaphore(sim, capacity=2)
        assert sem.try_acquire() and sem.try_acquire()
        assert not sem.try_acquire()
        assert sem.available == 0

    def test_release_restores(self, sim):
        sem = Semaphore(sim, capacity=1)
        sem.try_acquire()
        sem.release()
        assert sem.available == 1

    def test_release_without_acquire_rejected(self, sim):
        sem = Semaphore(sim, capacity=1)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_blocking_fifo_order(self, sim):
        sem = Semaphore(sim, capacity=1)
        order = []

        def worker(tag, hold):
            yield from sem.acquire()
            order.append((tag, sim.now))
            yield Timeout(hold)
            sem.release()

        Process(sim, worker("a", 10.0))
        Process(sim, worker("b", 5.0))
        Process(sim, worker("c", 1.0))
        sim.run()
        assert [t for t, _ in order] == ["a", "b", "c"]
        assert [when for _, when in order] == [0.0, 10.0, 15.0]

    def test_capacity_two_runs_pairs(self, sim):
        sem = Semaphore(sim, capacity=2)
        starts = []

        def worker(tag):
            yield from sem.acquire()
            starts.append((tag, sim.now))
            yield Timeout(10.0)
            sem.release()

        for tag in "abc":
            Process(sim, worker(tag))
        sim.run()
        assert dict(starts)["a"] == 0.0
        assert dict(starts)["b"] == 0.0
        assert dict(starts)["c"] == 10.0

    def test_bad_capacity(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield from store.get()
            got.append((item, sim.now))

        store.put("x")
        Process(sim, consumer())
        sim.run()
        assert got == [("x", 0.0)]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield from store.get()
            got.append((item, sim.now))

        def producer():
            yield Timeout(7.0)
            store.put(42)

        Process(sim, consumer())
        Process(sim, producer())
        sim.run()
        assert got == [(42, 7.0)]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield from store.get()))

        Process(sim, consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_capacity_bound_drops(self, sim):
        store = Store(sim, capacity=1)
        assert store.put("a")
        assert not store.put("b")
        assert len(store) == 1
        assert store.full

    def test_try_get_empty(self, sim):
        ok, item = Store(sim).try_get()
        assert not ok and item is None

    def test_bad_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestGate:
    def test_wait_on_open_gate_is_noop(self, sim):
        gate = Gate(sim, open_=True)
        done = []

        def proc():
            yield from gate.wait()
            done.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert done == [0.0]

    def test_closed_gate_parks_until_open(self, sim):
        gate = Gate(sim)
        done = []

        def proc():
            yield from gate.wait()
            done.append(sim.now)

        def opener():
            yield Timeout(5.0)
            gate.open()

        Process(sim, proc())
        Process(sim, opener())
        assert gate.waiting == 1
        sim.run()
        assert done == [5.0]

    def test_open_wakes_all(self, sim):
        gate = Gate(sim)
        done = []

        def proc(tag):
            yield from gate.wait()
            done.append(tag)

        for tag in "abc":
            Process(sim, proc(tag))
        assert gate.open() == 3
        sim.run()
        assert sorted(done) == ["a", "b", "c"]

    def test_close_reparks_new_waiters(self, sim):
        gate = Gate(sim, open_=True)
        gate.close()
        done = []

        def proc():
            yield from gate.wait()
            done.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert done == []
        gate.open()
        sim.run()
        assert done == [0.0]
