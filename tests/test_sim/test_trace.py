"""Tests for the event trace recorder."""

from repro.sim.kernel import Simulator
from repro.sim.trace import EventTrace


def run_with_trace(n: int, capacity=None, predicate=None) -> tuple[Simulator, EventTrace]:
    trace = EventTrace(capacity=capacity, predicate=predicate)
    sim = Simulator(trace=trace)
    for i in range(n):
        sim.schedule_at(float(i), lambda ev: None, name=f"ev{i}")
    sim.run()
    return sim, trace


class TestRecording:
    def test_records_all_events_in_order(self):
        _, trace = run_with_trace(5)
        assert trace.names() == [f"ev{i}" for i in range(5)]
        assert [r.time for r in trace] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_len_and_total(self):
        _, trace = run_with_trace(5)
        assert len(trace) == 5
        assert trace.total_recorded == 5

    def test_capacity_evicts_oldest(self):
        _, trace = run_with_trace(10, capacity=3)
        assert trace.names() == ["ev7", "ev8", "ev9"]
        assert trace.total_recorded == 10

    def test_predicate_filters(self):
        _, trace = run_with_trace(10, predicate=lambda ev: ev.name.endswith(("0", "5")))
        assert trace.names() == ["ev0", "ev5"]

    def test_cancelled_events_not_recorded(self):
        trace = EventTrace()
        sim = Simulator(trace=trace)
        ev = sim.schedule_at(1.0, lambda e: None, name="gone")
        sim.schedule_at(2.0, lambda e: None, name="kept")
        ev.cancel()
        sim.run()
        assert trace.names() == ["kept"]


class TestQueries:
    def test_filter_by_substring(self):
        _, trace = run_with_trace(12)
        assert [r.name for r in trace.filter("ev1")] == ["ev1", "ev10", "ev11"]

    def test_between(self):
        _, trace = run_with_trace(10)
        assert [r.time for r in trace.between(3.0, 5.0)] == [3.0, 4.0, 5.0]

    def test_getitem(self):
        _, trace = run_with_trace(3)
        assert trace[0].name == "ev0"
        assert trace[-1].name == "ev2"

    def test_clear(self):
        _, trace = run_with_trace(3)
        trace.clear()
        assert len(trace) == 0

    def test_dump_renders_lines(self):
        _, trace = run_with_trace(3)
        dump = trace.dump()
        assert "ev0" in dump and "ev2" in dump
        assert len(dump.splitlines()) == 3

    def test_dump_limit(self):
        _, trace = run_with_trace(10)
        assert len(trace.dump(limit=2).splitlines()) == 2


class TestDroppedVisibility:
    def test_no_drops_within_capacity(self):
        _, trace = run_with_trace(5, capacity=10)
        assert trace.dropped == 0
        assert str(trace) == "EventTrace: 5 records"
        assert "dropped" not in repr(trace)

    def test_dropped_counts_evictions(self):
        _, trace = run_with_trace(10, capacity=3)
        assert trace.dropped == 7
        assert "7 older records dropped" in str(trace)
        assert "dropped=7" in repr(trace)

    def test_clear_resets_drop_accounting(self):
        _, trace = run_with_trace(10, capacity=3)
        trace.clear()
        assert trace.dropped == 0
        assert trace.total_recorded == 0
