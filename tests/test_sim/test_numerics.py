"""The numerics helpers must be drop-in equivalent to the bare
comparisons they replaced — a behavior change here would shift
admission decisions and break byte-parity."""

from __future__ import annotations

import math

from repro.sim.numerics import approx_eq, exact_eq, exact_zero


def test_exact_zero_matches_bare_comparison():
    for x in (0.0, -0.0, 1e-300, -1e-300, 5e-324, 1.0, float("inf"), float("-inf")):
        assert exact_zero(x) == (x == 0.0)
    assert exact_zero(0.0) and exact_zero(-0.0)
    assert not exact_zero(5e-324)  # smallest subnormal is NOT zero
    assert not exact_zero(float("nan"))


def test_exact_eq_is_ieee_equality():
    assert exact_eq(0.5, 0.5)
    assert exact_eq(0.0, -0.0)  # IEEE: +0 == -0
    assert not exact_eq(0.1 + 0.2, 0.3)  # the classic
    assert not exact_eq(float("nan"), float("nan"))
    assert exact_eq(float("inf"), float("inf"))


def test_approx_eq_tolerates_accumulation_error():
    assert approx_eq(0.1 + 0.2, 0.3)
    assert not approx_eq(0.3, 0.30001)
    assert approx_eq(0.0, 1e-12, abs_tol=1e-9)
    assert not approx_eq(0.0, 1e-12)  # rel_tol alone can't reach zero


def test_isfinite_replacement_is_equivalent_to_old_checks():
    # kernel.py/protocol.py used `x != x or x in (inf, -inf)`; the
    # math.isfinite rewrite must reject and accept exactly the same set.
    def old_check(value: float) -> bool:
        return value != value or value in (float("inf"), float("-inf"))

    cases = (0.0, -0.0, 1.5, -1.5, 1e308, -1e308, 5e-324,
             float("inf"), float("-inf"), float("nan"))
    for value in cases:
        assert (not math.isfinite(value)) == old_check(value), value
