"""Tests for the abstract policy machinery in base.py."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.job import JobState
from repro.cluster.rms import ResourceManagementSystem
from repro.scheduling.base import SchedulingPolicy
from repro.sim.kernel import Simulator
from tests.conftest import make_job


class RecordingPolicy(SchedulingPolicy):
    """Minimal concrete policy for probing the base-class machinery."""

    name = "recording"
    discipline = "time_shared"

    def __init__(self):
        super().__init__()
        self.submitted = []
        self.completed = []

    def on_job_submitted(self, job, now):
        self.submitted.append((job.job_id, now))
        # Immediately run on node 0.
        node = self.cluster.node(0)
        job.mark_running(now, [0])
        self._track(job)
        self.rms.notify_accepted(job)
        node.add_task(job, work=self.cluster.work_of(job.runtime),
                      est_work=self.cluster.work_of(job.estimated_runtime), now=now)

    def on_job_completed(self, job, now):
        self.completed.append((job.job_id, now))


def wire(policy=None, num_nodes=2):
    sim = Simulator()
    cluster = Cluster.homogeneous(sim, num_nodes, rating=1.0, discipline="time_shared")
    policy = policy or RecordingPolicy()
    rms = ResourceManagementSystem(sim, cluster, policy)
    return sim, cluster, policy, rms


class TestBinding:
    def test_bind_installs_listener_on_every_node(self):
        _, cluster, policy, _ = wire()
        assert all(n.listener == policy._task_listener for n in cluster)

    def test_double_bind_rejected(self):
        sim, cluster, policy, _ = wire()
        with pytest.raises(RuntimeError, match="already has a listener"):
            ResourceManagementSystem(sim, cluster, RecordingPolicy())


class TestCompletionTracking:
    def test_multi_node_job_completes_once(self):
        sim, cluster, policy, rms = wire()
        job = make_job(runtime=10.0, deadline=100.0, numproc=2, job_id=1)
        job.mark_submitted()
        job.mark_running(0.0, [0, 1])
        policy._track(job)
        rms.notify_accepted(job)
        for nid in (0, 1):
            cluster.node(nid).add_task(job, work=10.0, est_work=10.0, now=0.0)
        sim.run()
        assert policy.completed == [(1, pytest.approx(100.0))]
        assert rms.completed == [job]

    def test_running_jobs_property(self):
        sim, cluster, policy, rms = wire()
        rms.submit_all([make_job(runtime=10.0, deadline=100.0)])
        sim.run(until=1.0)
        assert policy.running_jobs == 1
        sim.run()
        assert policy.running_jobs == 0

    def test_untracked_completion_is_an_error(self):
        sim, cluster, policy, _ = wire()
        job = make_job(runtime=10.0, deadline=100.0)
        job.mark_submitted()
        job.mark_running(0.0, [0])
        # Deliberately NOT tracked.
        cluster.node(0).add_task(job, work=10.0, est_work=10.0, now=0.0)
        with pytest.raises(RuntimeError, match="untracked job"):
            sim.run()


class TestRejectHelper:
    def test_reject_marks_and_notifies(self):
        _, _, policy, rms = wire()
        job = make_job()
        job.mark_submitted()
        policy._reject(job, "because")
        assert job.state is JobState.REJECTED
        assert job.reject_reason == "because"
        assert rms.rejected == [job]


class TestFailureHooks:
    def test_fail_job_cleans_pending_and_siblings(self):
        sim, cluster, policy, rms = wire()
        job = make_job(runtime=50.0, deadline=500.0, numproc=2, job_id=1)
        job.mark_submitted()
        job.mark_running(0.0, [0, 1])
        policy._track(job)
        rms.notify_accepted(job)
        for nid in (0, 1):
            cluster.node(nid).add_task(job, work=50.0, est_work=50.0, now=0.0)
        policy.handle_node_failure(cluster.node(0), 1.0)
        assert job.state is JobState.FAILED
        assert policy.running_jobs == 0
        assert not cluster.node(1).has_job(1)
        sim.run()  # no stray completion events blow up

    def test_repair_hook_called(self):
        sim, cluster, policy, _ = wire()
        calls = []
        policy.on_node_repair = lambda node, now: calls.append(node.node_id)
        policy.handle_node_failure(cluster.node(0), 0.0)
        policy.handle_node_repair(cluster.node(0), 5.0)
        assert calls == [0]
        assert cluster.node(0).online
