"""Cache-invalidation semantics of the admission fast path.

The fast path memoizes per-node suitability facts keyed on
:attr:`TimeSharedNode.generation`; every mutation of a node's task set
must bump the generation or a stale verdict could leak into an
admission decision.  These tests pin each invalidation edge, plus the
decision parity that the invalidation rules exist to protect.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cluster.job import Job
from repro.cluster.node import TimeSharedNode
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs, run_scenario
from repro.scheduling.librarisk import LibraRiskPolicy
from repro.sim.kernel import Simulator


def _node(sim: Simulator, rating: float = 100.0) -> TimeSharedNode:
    return TimeSharedNode(node_id=0, rating=rating, sim=sim)


def _job(job_id: int, runtime: float = 10.0, deadline: float = 100.0,
         submit_time: float = 0.0) -> Job:
    return Job(
        runtime=runtime,
        estimated_runtime=runtime,
        numproc=1,
        deadline=deadline,
        submit_time=submit_time,
        job_id=job_id,
    )


class TestGenerationBumps:
    def test_add_task_bumps_generation(self):
        sim = Simulator()
        node = _node(sim)
        before = node.generation
        node.add_task(_job(1), work=1000.0, est_work=1000.0, now=0.0)
        assert node.generation > before

    def test_remove_task_bumps_generation(self):
        sim = Simulator()
        node = _node(sim)
        node.add_task(_job(1), work=1000.0, est_work=1000.0, now=0.0)
        before = node.generation
        node.remove_task(1, now=1.0)
        assert node.generation > before

    def test_completion_bumps_generation(self):
        sim = Simulator()
        node = _node(sim)
        node.add_task(_job(1, runtime=10.0), work=1000.0, est_work=1000.0, now=0.0)
        before = node.generation
        sim.run()
        assert not node.tasks
        assert node.generation > before

    def test_overrun_demotion_bumps_generation(self):
        # Estimate exhausts before actual work: the overrun recompute
        # (share demotion to the floor) must invalidate cached verdicts
        # even though the task set membership is unchanged.
        sim = Simulator()
        node = _node(sim)
        # share = (500/100)/100 = 0.05 -> estimate exhausts at t=100.
        node.add_task(_job(1, runtime=20.0), work=2000.0, est_work=500.0, now=0.0)
        before = node.generation
        sim.run(until=101.0)
        assert node.tasks[1].overrun
        assert node.generation > before

    def test_fail_and_repair_bump_generation(self):
        sim = Simulator()
        node = _node(sim)
        node.add_task(_job(1), work=1000.0, est_work=1000.0, now=0.0)
        g0 = node.generation
        node.fail(1.0)
        g1 = node.generation
        assert g1 > g0
        node.repair(2.0)
        assert node.generation > g1

    def test_restore_tasks_bumps_generation(self):
        # Checkpoint/WAL recovery rebuilds residents via restore_tasks;
        # a verdict cached against the pre-restore generation must die.
        sim = Simulator()
        node = _node(sim)
        before = node.generation
        job = _job(1)
        job.mark_submitted()
        job.mark_running(0.0, [0])
        node.restore_tasks([(job, 500.0, 500.0, 0.0)], now=0.0)
        assert node.generation > before
        assert node.tasks[1].deadline == job.absolute_deadline


class TestMinResidentDeadline:
    def test_empty_node_is_never_poisoned(self):
        sim = Simulator()
        node = _node(sim)
        assert node.min_resident_deadline() == float("inf")

    def test_tracks_minimum_and_invalidates_on_change(self):
        sim = Simulator()
        node = _node(sim)
        node.add_task(_job(1, deadline=50.0), work=1000.0, est_work=1000.0, now=0.0)
        node.add_task(_job(2, deadline=30.0), work=1000.0, est_work=1000.0, now=0.0)
        assert node.min_resident_deadline() == 30.0
        # Cached: second read hits the generation check only.
        assert node.min_resident_deadline() == 30.0
        node.remove_task(2, now=1.0)
        assert node.min_resident_deadline() == 50.0

    def test_poison_verdict_clears_when_resident_leaves(self):
        # A resident past its deadline poisons the node (sigma = inf for
        # every candidate); removing it must lift the verdict.
        sim = Simulator()
        node = _node(sim)
        node.add_task(_job(1, deadline=5.0), work=10000.0, est_work=10000.0, now=0.0)
        now = 10.0
        assert now >= node.min_resident_deadline()  # poisoned
        node.remove_task(1, now=now)
        assert not (now >= node.min_resident_deadline())

    def test_task_deadline_snapshot_matches_job(self):
        sim = Simulator()
        node = _node(sim)
        job = _job(7, deadline=123.0, submit_time=4.0)
        node.add_task(job, work=100.0, est_work=100.0, now=4.0)
        assert node.tasks[7].deadline == job.absolute_deadline == 127.0


def _run_metrics(policy: str, seed: int, monkeypatch, disable_cache: bool,
                 num_jobs: int = 150) -> str:
    if disable_cache:
        monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
    else:
        monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
    config = ScenarioConfig(num_jobs=num_jobs, num_nodes=24, seed=seed, policy=policy)
    result = run_scenario(config, jobs=build_scenario_jobs(config))
    return json.dumps(dataclasses.asdict(result.metrics), sort_keys=True)


class TestDecisionParityAcrossInvalidation:
    @pytest.mark.parametrize("policy", ["libra", "librarisk"])
    def test_parity_under_node_failures(self, policy, monkeypatch):
        # Failures + repairs churn node state mid-run; the cached run
        # must make byte-identical decisions to the reference scan.
        from repro.experiments.robustness import run_with_failures

        def cell(disable: bool) -> str:
            if disable:
                monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
            else:
                monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
            config = ScenarioConfig(
                num_jobs=150, num_nodes=24, seed=11, policy=policy
            )
            result = run_with_failures(config, mtbf_hours=8.0, repair_hours=1.0)
            return json.dumps(
                dataclasses.asdict(result.metrics)
                | {"failures": result.failures_injected},
                sort_keys=True,
            )

        assert cell(False) == cell(True)

    def test_librarisk_parity_with_restored_state(self, monkeypatch):
        # Checkpoint mid-run, restore into a fresh engine, finish the
        # workload: the restored engine's decisions must not depend on
        # whether the fast path is enabled.
        from repro.service.checkpoint import restore, snapshot
        from repro.service.engine import engine_for_scenario

        def drive(disable: bool) -> str:
            if disable:
                monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
            else:
                monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
            config = ScenarioConfig(
                num_jobs=120, num_nodes=16, seed=3, policy="librarisk"
            )
            jobs = build_scenario_jobs(config)
            engine = engine_for_scenario(config)
            for job in jobs[:60]:
                engine.submit(job)
            snap = snapshot(engine)
            restored = restore(snap)
            outcomes = []
            for job in jobs[60:]:
                decision = restored.submit(job)
                outcomes.append((job.job_id, decision.outcome))
            restored.drain()
            return json.dumps(
                {"outcomes": outcomes, "stats_t": restored.sim.now}, sort_keys=True
            )

        assert drive(False) == drive(True)


class TestCacheStatsCounters:
    def test_librarisk_counters_populate(self):
        config = ScenarioConfig(num_jobs=80, num_nodes=16, seed=5, policy="librarisk")
        from repro.service.engine import engine_for_scenario

        engine = engine_for_scenario(config)
        for job in build_scenario_jobs(config):
            engine.submit(job)
        engine.drain()
        stats = engine.policy.cache_stats
        assert stats["online_scans"] > 0
        assert stats["projections_run"] >= 0
        # The fast path must have classified something without projecting.
        assert (
            stats["fast_fit_hits"] + stats["empty_shortcuts"] + stats["poison_skips"]
            > 0
        )
        served = engine.stats()
        assert served["cache"]["online_scans"] == stats["online_scans"]
        assert "events_tombstoned" in served

    def test_reference_path_records_no_counters(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
        policy = LibraRiskPolicy()
        assert policy.fast_path is False
        config = ScenarioConfig(num_jobs=40, num_nodes=8, seed=5, policy="librarisk")
        result = run_scenario(config, jobs=build_scenario_jobs(config))
        assert result.metrics.total_submitted == 40


class TestLazySync:
    def test_lazy_sync_is_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAZY_SYNC", "1")
        first = _run_metrics("librarisk", seed=9, monkeypatch=monkeypatch,
                             disable_cache=False)
        second = _run_metrics("librarisk", seed=9, monkeypatch=monkeypatch,
                              disable_cache=False)
        assert first == second

    def test_lazy_sync_flag_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAZY_SYNC", "1")
        assert LibraRiskPolicy().lazy_sync is True
        monkeypatch.delenv("REPRO_LAZY_SYNC")
        assert LibraRiskPolicy().lazy_sync is False


class TestKernelTombstones:
    def test_cancel_is_lazy_and_counted(self):
        sim = Simulator()
        kept = sim.schedule(5.0, lambda ev: None)
        dropped = sim.schedule(1.0, lambda ev: None)
        dropped.cancel()
        assert sim.pending == 2  # tombstone still buried in the heap
        assert sim.tombstones_dropped == 0
        sim.run()
        assert sim.tombstones_dropped == 1
        assert kept.cancelled is False

    def test_drain_cancelled_counts(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda ev: None) for i in range(10)]
        for ev in events[::2]:
            ev.cancel()
        removed = sim.drain_cancelled()
        assert removed == 5
        assert sim.tombstones_dropped == 5
        assert sim.pending == 5
