"""Tests for the FCFS baseline."""


from tests.conftest import make_job, run_jobs


class TestOrdering:
    def test_strict_arrival_order(self):
        jobs = [
            make_job(runtime=10.0, deadline=1000.0, submit=0.0, job_id=1),
            # Much more urgent but arrives later: FCFS ignores deadlines.
            make_job(runtime=10.0, deadline=50.0, submit=1.0, job_id=2),
            make_job(runtime=10.0, deadline=2000.0, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("fcfs", jobs, num_nodes=1)
        starts = {j.job_id: j.start_time for j in rms.jobs if j.start_time is not None}
        assert starts[1] < starts[2]
        assert 3 not in starts or starts[2] < starts[3]

    def test_edf_beats_fcfs_on_urgent_latecomer(self):
        def mk():
            return [
                make_job(runtime=50.0, deadline=1000.0, submit=0.0, job_id=1),
                make_job(runtime=50.0, deadline=1000.0, submit=1.0, job_id=2),
                make_job(runtime=10.0, deadline=70.0, submit=2.0, job_id=3),
            ]

        fcfs_rms, _, _ = run_jobs("fcfs", mk(), num_nodes=1)
        edf_rms, _, _ = run_jobs("edf", mk(), num_nodes=1)
        fcfs_met = {j.job_id for j in fcfs_rms.completed if j.deadline_met}
        edf_met = {j.job_id for j in edf_rms.completed if j.deadline_met}
        assert 3 in edf_met
        assert 3 not in fcfs_met


class TestAdmission:
    def test_dispatch_check_applies(self):
        jobs = [make_job(runtime=10.0, estimate=500.0, deadline=100.0)]
        rms, _, _ = run_jobs("fcfs", jobs)
        assert len(rms.rejected) == 1

    def test_check_disabled(self):
        jobs = [make_job(runtime=10.0, estimate=500.0, deadline=100.0)]
        rms, _, _ = run_jobs("fcfs", jobs, admission_check=False)
        assert len(rms.completed) == 1

    def test_queued_jobs_property(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=10000.0, submit=1.0, job_id=2),
        ]
        rms, sim, _ = run_jobs("fcfs", jobs, num_nodes=1)
        # After the run everything drained.
        assert rms.policy.queued_jobs == 0
        assert len(rms.completed) == 2
