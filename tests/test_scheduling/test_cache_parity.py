"""Property-style exactness check: fast path == reference, byte for byte.

The admission fast path (``repro.scheduling.libra`` / ``librarisk``)
claims to be *exact memoization*: not statistically close, but
bit-identical on every decision, metric and exported record.  These
tests hold it to that claim over randomized workloads — random scale,
seed, estimate mode and policy knobs — by running each scenario twice,
once cached and once with ``REPRO_DISABLE_ADMISSION_CACHE=1`` (which
routes through the pre-optimization reference scan), and comparing the
complete JSON-lines metrics export byte for byte.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import NodeFailureInjector
from repro.cluster.rms import ResourceManagementSystem
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs, run_scenario
from repro.obs.session import RunSink
from repro.scheduling.registry import make_policy, policy_discipline
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams

POLICIES = ("edf", "libra", "librarisk")

#: Deterministic sampling of scenario space (fixed seed: the *workloads*
#: inside each scenario are random, the test matrix is reproducible).
_RNG = random.Random(20260806)


def _random_configs(policy: str, count: int) -> list[ScenarioConfig]:
    configs = []
    for _ in range(count):
        kwargs = {}
        if policy == "librarisk":
            kwargs["suitability"] = _RNG.choice(["sigma", "no-delay"])
            kwargs["node_order"] = _RNG.choice(["best_fit", "worst_fit", "index"])
        configs.append(
            ScenarioConfig(
                num_jobs=200,
                num_nodes=_RNG.choice([16, 32, 48]),
                seed=_RNG.randrange(1, 10_000),
                policy=policy,
                policy_kwargs=kwargs,
                estimate_mode=_RNG.choice(["accurate", "trace", "inaccuracy"]),
                arrival_delay_factor=_RNG.choice([0.5, 1.0]),
            )
        )
    return configs


def _export_bytes(config: ScenarioConfig, tmp_path, tag: str) -> bytes:
    path = tmp_path / f"{tag}.jsonl"
    with RunSink(path=str(path)):
        run_scenario(config, jobs=build_scenario_jobs(config))
    return path.read_bytes()


@pytest.mark.parametrize("policy", POLICIES)
def test_randomized_workloads_export_identically(policy, tmp_path, monkeypatch):
    for i, config in enumerate(_random_configs(policy, count=3)):
        monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
        fast = _export_bytes(config, tmp_path, f"{policy}-{i}-fast")
        monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
        reference = _export_bytes(config, tmp_path, f"{policy}-{i}-ref")
        assert fast == reference, (
            f"{policy} export diverged for {config.label()} "
            f"(seed={config.seed}, kwargs={config.policy_kwargs})"
        )
        assert len(fast) > 0


def _run_churn(
    config: ScenarioConfig, mtbf_hours: float, repair_hours: float
) -> tuple:
    """One scenario under failure/repair churn; returns an exact digest.

    Overrunning estimates (``inaccuracy`` mode) demote residents to the
    floor share mid-flight, node failures kill whole jobs and poison
    admission state, repairs bring empty nodes back — interleaved with
    ordinary completions.  The digest captures every job's terminal
    state and exact timestamps (``repr`` keeps full float precision),
    so any admission decision that diverges between the cached and the
    reference scan shows up byte-for-byte.
    """
    jobs = build_scenario_jobs(config)
    horizon = max(j.submit_time for j in jobs) + 864_000.0
    sim = Simulator()
    cluster = Cluster.homogeneous(
        sim,
        config.num_nodes,
        rating=config.rating,
        discipline=policy_discipline(config.policy),
        share_params=config.share_params(),
    )
    policy = make_policy(config.policy, **config.policy_kwargs)
    rms = ResourceManagementSystem(sim, cluster, policy)
    rms.submit_all(jobs)
    injector = NodeFailureInjector(
        sim,
        cluster,
        policy,
        RngStreams(seed=config.seed).spawn("failures"),
        mtbf=mtbf_hours * 3600.0,
        repair_time=repair_hours * 3600.0,
        horizon=horizon,
    )
    injector.start()
    sim.run()
    digest = tuple(
        (job.job_id, job.state.value, repr(job.start_time), repr(job.finish_time))
        for job in rms.jobs
    )
    return digest, injector.failures_injected, injector.repairs_done, policy


_CHURN_RNG = random.Random(20260809)


def _churn_configs(policy: str, count: int) -> list[ScenarioConfig]:
    configs = []
    for _ in range(count):
        kwargs = {}
        if policy == "librarisk":
            kwargs["suitability"] = _CHURN_RNG.choice(["sigma", "no-delay"])
        configs.append(
            ScenarioConfig(
                num_jobs=150,
                num_nodes=_CHURN_RNG.choice([16, 24]),
                seed=_CHURN_RNG.randrange(1, 10_000),
                policy=policy,
                policy_kwargs=kwargs,
                estimate_mode="inaccuracy",  # guarantees overrun demotions
                arrival_delay_factor=0.5,
            )
        )
    return configs


@pytest.mark.parametrize("policy", ("libra", "librarisk"))
def test_churn_interleavings_match_reference(policy, monkeypatch):
    # Fail/repair/overrun-demote/complete interleavings must leave the
    # cached scan's decisions byte-identical to the reference scan's —
    # generation bumps from fail() and repair() are what invalidate the
    # aggregates, so this is the invalidation correctness test.
    for config in _churn_configs(policy, count=2):
        monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
        fast, fails, repairs, _ = _run_churn(config, mtbf_hours=10.0, repair_hours=1.0)
        monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
        ref, ref_fails, _, _ = _run_churn(config, mtbf_hours=10.0, repair_hours=1.0)
        assert fails == ref_fails
        assert fails > 0, "churn scenario injected no failures; raise intensity"
        assert repairs > 0, "churn scenario saw no repairs; raise intensity"
        assert fast == ref, (
            f"{policy} diverged under churn for seed={config.seed} "
            f"kwargs={config.policy_kwargs} ({fails} failures)"
        )


def test_churn_certificates_hold_under_verification(monkeypatch):
    # REPRO_VERIFY_CERT re-proves every fired O(1) certificate against
    # the exact projection/walk; an unsound invalidation under churn
    # raises AssertionError inside the run.
    monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
    monkeypatch.setenv("REPRO_VERIFY_CERT", "1")
    config = ScenarioConfig(
        num_jobs=150, num_nodes=16, seed=4242, policy="librarisk",
        estimate_mode="inaccuracy", arrival_delay_factor=0.5,
    )
    _, fails, _, policy = _run_churn(config, mtbf_hours=10.0, repair_hours=1.0)
    assert fails > 0
    assert policy.cache_stats.get("sigma_cert_hits", 0) > 0


def test_churn_lazy_sync_is_deterministic(monkeypatch):
    # Lazy sync is mathematically equivalent but not bit-identical to
    # eager chop points; under churn it must still be run-to-run
    # deterministic.
    monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
    monkeypatch.setenv("REPRO_LAZY_SYNC", "1")
    config = ScenarioConfig(
        num_jobs=150, num_nodes=16, seed=99, policy="librarisk",
        estimate_mode="inaccuracy", arrival_delay_factor=0.5,
    )
    first, fails, _, _ = _run_churn(config, mtbf_hours=10.0, repair_hours=1.0)
    second, _, _, _ = _run_churn(config, mtbf_hours=10.0, repair_hours=1.0)
    assert fails > 0
    assert first == second


def test_libra_non_default_share_mode_uses_reference_path(monkeypatch):
    # "floor"/"infinite" expired-share modes are research knobs the
    # inlined scan does not replicate; the policy must route them to the
    # reference implementation even with the cache enabled.
    monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
    for mode in ("floor", "infinite"):
        config = ScenarioConfig(
            num_jobs=120, num_nodes=16, seed=21, policy="libra",
            policy_kwargs={"expired_job_share_mode": mode},
        )
        cached = run_scenario(config, jobs=build_scenario_jobs(config))
        monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
        reference = run_scenario(config, jobs=build_scenario_jobs(config))
        monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE")
        assert cached.metrics == reference.metrics
