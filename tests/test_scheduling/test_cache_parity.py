"""Property-style exactness check: fast path == reference, byte for byte.

The admission fast path (``repro.scheduling.libra`` / ``librarisk``)
claims to be *exact memoization*: not statistically close, but
bit-identical on every decision, metric and exported record.  These
tests hold it to that claim over randomized workloads — random scale,
seed, estimate mode and policy knobs — by running each scenario twice,
once cached and once with ``REPRO_DISABLE_ADMISSION_CACHE=1`` (which
routes through the pre-optimization reference scan), and comparing the
complete JSON-lines metrics export byte for byte.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs, run_scenario
from repro.obs.session import RunSink

POLICIES = ("edf", "libra", "librarisk")

#: Deterministic sampling of scenario space (fixed seed: the *workloads*
#: inside each scenario are random, the test matrix is reproducible).
_RNG = random.Random(20260806)


def _random_configs(policy: str, count: int) -> list[ScenarioConfig]:
    configs = []
    for _ in range(count):
        kwargs = {}
        if policy == "librarisk":
            kwargs["suitability"] = _RNG.choice(["sigma", "no-delay"])
            kwargs["node_order"] = _RNG.choice(["best_fit", "worst_fit", "index"])
        configs.append(
            ScenarioConfig(
                num_jobs=200,
                num_nodes=_RNG.choice([16, 32, 48]),
                seed=_RNG.randrange(1, 10_000),
                policy=policy,
                policy_kwargs=kwargs,
                estimate_mode=_RNG.choice(["accurate", "trace", "inaccuracy"]),
                arrival_delay_factor=_RNG.choice([0.5, 1.0]),
            )
        )
    return configs


def _export_bytes(config: ScenarioConfig, tmp_path, tag: str) -> bytes:
    path = tmp_path / f"{tag}.jsonl"
    with RunSink(path=str(path)):
        run_scenario(config, jobs=build_scenario_jobs(config))
    return path.read_bytes()


@pytest.mark.parametrize("policy", POLICIES)
def test_randomized_workloads_export_identically(policy, tmp_path, monkeypatch):
    for i, config in enumerate(_random_configs(policy, count=3)):
        monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
        fast = _export_bytes(config, tmp_path, f"{policy}-{i}-fast")
        monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
        reference = _export_bytes(config, tmp_path, f"{policy}-{i}-ref")
        assert fast == reference, (
            f"{policy} export diverged for {config.label()} "
            f"(seed={config.seed}, kwargs={config.policy_kwargs})"
        )
        assert len(fast) > 0


def test_libra_non_default_share_mode_uses_reference_path(monkeypatch):
    # "floor"/"infinite" expired-share modes are research knobs the
    # inlined scan does not replicate; the policy must route them to the
    # reference implementation even with the cache enabled.
    monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE", raising=False)
    for mode in ("floor", "infinite"):
        config = ScenarioConfig(
            num_jobs=120, num_nodes=16, seed=21, policy="libra",
            policy_kwargs={"expired_job_share_mode": mode},
        )
        cached = run_scenario(config, jobs=build_scenario_jobs(config))
        monkeypatch.setenv("REPRO_DISABLE_ADMISSION_CACHE", "1")
        reference = run_scenario(config, jobs=build_scenario_jobs(config))
        monkeypatch.delenv("REPRO_DISABLE_ADMISSION_CACHE")
        assert cached.metrics == reference.metrics
