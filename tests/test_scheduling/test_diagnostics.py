"""Tests for admission-state diagnostics."""

import pytest

from repro.cluster.cluster import Cluster
from repro.scheduling.diagnostics import (
    cluster_risk_profile,
    explain_admission,
    node_snapshot,
    render_profile,
)
from tests.conftest import make_job


@pytest.fixture
def cluster(sim):
    return Cluster.homogeneous(sim, 3, rating=1.0, discipline="time_shared")


class TestNodeSnapshot:
    def test_empty_node_healthy(self, cluster):
        snap = node_snapshot(cluster.node(0), 0.0)
        assert snap.num_tasks == 0
        assert snap.total_share == 0.0
        assert snap.healthy

    def test_loaded_node_counts_share(self, cluster):
        cluster.node(0).add_task(make_job(runtime=60.0, deadline=100.0),
                                 work=60.0, est_work=60.0, now=0.0)
        snap = node_snapshot(cluster.node(0), 0.0)
        assert snap.num_tasks == 1
        assert snap.total_share == pytest.approx(0.6)
        assert snap.healthy

    def test_overrun_flagged(self, sim, cluster):
        node = cluster.node(0)
        node.add_task(make_job(runtime=1000.0, estimate=10.0, deadline=20.0),
                      work=1000.0, est_work=10.0, now=0.0)
        sim.run(until=100.0)
        snap = node_snapshot(node, 100.0)
        assert snap.overruns == 1
        assert snap.expired == 1
        assert not snap.healthy


class TestClusterProfile:
    def test_one_snapshot_per_node(self, cluster):
        profile = cluster_risk_profile(cluster, 0.0)
        assert [s.node_id for s in profile] == [0, 1, 2]

    def test_render_is_table(self, cluster):
        cluster.node(1).add_task(make_job(runtime=30.0, deadline=100.0),
                                 work=30.0, est_work=30.0, now=0.0)
        text = render_profile(cluster_risk_profile(cluster, 0.0))
        assert "zero-risk" in text
        assert "0.300" in text


class TestExplainAdmission:
    def test_both_accept_feasible_job(self, cluster):
        exp = explain_admission(cluster, make_job(runtime=50.0, deadline=100.0), 0.0)
        assert exp.libra_accepts and exp.librarisk_accepts
        assert len(exp.libra_suitable) == 3

    def test_gamble_divergence_visible(self, cluster):
        # Estimate-infeasible job: Libra rejects, LibraRisk gambles.
        job = make_job(runtime=50.0, estimate=500.0, deadline=100.0)
        exp = explain_admission(cluster, job, 0.0)
        assert not exp.libra_accepts
        assert exp.librarisk_accepts
        text = exp.render()
        assert "REJECT" in text and "ACCEPT" in text

    def test_numproc_threshold(self, cluster):
        job = make_job(runtime=50.0, deadline=100.0, numproc=4)  # > 3 nodes
        exp = explain_admission(cluster, job, 0.0)
        assert not exp.libra_accepts and not exp.librarisk_accepts

    def test_dry_run_does_not_place_job(self, cluster):
        job = make_job(runtime=50.0, deadline=100.0)
        explain_admission(cluster, job, 0.0)
        assert all(n.idle for n in cluster)
