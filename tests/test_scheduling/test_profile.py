"""Tests for the capacity-profile component."""

import pytest

from repro.scheduling.profile import CapacityProfile, profile_from_cluster
from tests.conftest import make_job


class TestBasics:
    def test_constant_capacity(self):
        p = CapacityProfile(base_free=4)
        assert p.free_at(0.0) == 4
        assert p.free_at(1e9) == 4

    def test_release_adds_capacity(self):
        p = CapacityProfile(base_free=1)
        p.add_release(10.0, 3)
        assert p.free_at(5.0) == 1
        assert p.free_at(10.0) == 4

    def test_reservation_removes_capacity_over_window(self):
        p = CapacityProfile(base_free=4)
        p.add_reservation(10.0, 20.0, 3)
        assert p.free_at(5.0) == 4
        assert p.free_at(10.0) == 1
        assert p.free_at(19.999) == 1
        assert p.free_at(20.0) == 4

    def test_release_before_origin_clamped(self):
        p = CapacityProfile(base_free=0, origin=100.0)
        p.add_release(50.0, 2)
        assert p.free_at(100.0) == 2

    def test_zero_count_noop(self):
        p = CapacityProfile(base_free=1)
        p.add_release(10.0, 0)
        p.add_reservation(1.0, 2.0, 0)
        assert p.breakpoints() == []

    def test_query_before_origin_rejected(self):
        p = CapacityProfile(base_free=1, origin=10.0)
        with pytest.raises(ValueError):
            p.free_at(5.0)

    @pytest.mark.parametrize("call", [
        lambda p: p.add_release(0.0, -1),
        lambda p: p.add_reservation(0.0, 1.0, -1),
        lambda p: p.add_reservation(5.0, 1.0, 1),
    ])
    def test_invalid_arguments(self, call):
        with pytest.raises(ValueError):
            call(CapacityProfile(base_free=1))

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            CapacityProfile(base_free=-1)


class TestMinFree:
    def test_min_over_window_sees_dips(self):
        p = CapacityProfile(base_free=4)
        p.add_reservation(5.0, 8.0, 3)
        assert p.min_free_over(0.0, 10.0) == 1
        assert p.min_free_over(0.0, 5.0) == 4  # dip starts at 5, window open
        assert p.min_free_over(8.0, 10.0) == 4


class TestEarliestFit:
    def test_fits_now_when_free(self):
        p = CapacityProfile(base_free=4)
        assert p.earliest_fit(2, 100.0) == 0.0

    def test_waits_for_release(self):
        p = CapacityProfile(base_free=1)
        p.add_release(50.0, 3)
        assert p.earliest_fit(2, 10.0) == 50.0

    def test_skips_over_reservation(self):
        p = CapacityProfile(base_free=2)
        p.add_reservation(10.0, 30.0, 2)
        # A 15 s window of 2 nodes fits before the reservation? No:
        # [0, 15) overlaps [10, 30) with zero free -> wait until 30.
        assert p.earliest_fit(2, 15.0) == 30.0
        # But a 10 s job fits exactly before it.
        assert p.earliest_fit(2, 10.0) == 0.0

    def test_respects_not_before(self):
        p = CapacityProfile(base_free=4)
        assert p.earliest_fit(1, 5.0, not_before=42.0) == 42.0

    def test_none_when_impossible(self):
        p = CapacityProfile(base_free=2)
        assert p.earliest_fit(3, 1.0) is None

    def test_result_is_always_feasible(self):
        p = CapacityProfile(base_free=3)
        p.add_reservation(5.0, 15.0, 2)
        p.add_release(20.0, 1)
        for count in (1, 2, 3, 4):
            for duration in (1.0, 7.0, 30.0):
                start = p.earliest_fit(count, duration)
                if start is not None:
                    assert p.would_fit(count, start, duration)

    def test_zero_duration_fits_anywhere_capacity_allows(self):
        p = CapacityProfile(base_free=1)
        assert p.earliest_fit(1, 0.0) == 0.0


class TestProfileFromCluster:
    def test_reflects_idle_and_running(self, sim):
        from repro.cluster.cluster import Cluster

        cluster = Cluster.homogeneous(sim, 4, rating=1.0, discipline="space_shared")
        job = make_job(runtime=100.0, estimate=120.0, deadline=1000.0, numproc=2)
        job.mark_submitted()
        job.mark_running(0.0, [0, 1])
        for nid in (0, 1):
            cluster.node(nid).start_task(job, work=100.0, now=0.0)

        p = profile_from_cluster(cluster, now=0.0)
        assert p.free_at(0.0) == 2
        # Release at the ESTIMATED completion (120), not the actual (100).
        assert p.free_at(119.0) == 2
        assert p.free_at(120.0) == 4

    def test_overrunning_job_releases_now_for_planning(self, sim):
        from repro.cluster.cluster import Cluster

        cluster = Cluster.homogeneous(sim, 2, rating=1.0, discipline="space_shared")
        job = make_job(runtime=100.0, estimate=10.0, deadline=1000.0)
        job.mark_submitted()
        job.mark_running(0.0, [0])
        cluster.node(0).start_task(job, work=100.0, now=0.0)
        # At t=50 the estimate (10) is long past: planning treats the
        # release as immediate.
        p = profile_from_cluster(cluster, now=50.0)
        assert p.free_at(50.0) == 2
