"""Tests for the Libra policy (proportional share + best-fit)."""

import pytest

from repro.cluster.job import JobState
from repro.cluster.share import ShareParams
from repro.scheduling.libra import LibraPolicy
from tests.conftest import make_job, run_jobs


class TestAdmission:
    def test_feasible_job_accepted_and_starts_immediately(self):
        jobs = [make_job(runtime=50.0, deadline=100.0)]
        rms, sim, _ = run_jobs("libra", jobs, num_nodes=2)
        job = rms.completed[0]
        assert job.start_time == 0.0            # no queue in Libra
        assert job.finish_time == pytest.approx(100.0)  # share = 0.5
        assert job.deadline_met

    def test_estimate_infeasible_job_rejected(self):
        # Eq. 1 share = 300/100 = 3 > 1 on every node.
        jobs = [make_job(runtime=50.0, estimate=300.0, deadline=100.0)]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=2)
        assert rms.rejected[0].state is JobState.REJECTED

    def test_admission_enforces_eq2_capacity(self):
        # Two jobs each needing 0.6 of the single node: the second must
        # be rejected (0.6 + 0.6 > 1).
        jobs = [
            make_job(runtime=60.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=60.0, deadline=100.0, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=1)
        assert [j.job_id for j in rms.accepted] == [1]
        assert [j.job_id for j in rms.rejected] == [2]

    def test_accepts_when_exactly_full(self):
        jobs = [
            make_job(runtime=60.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=40.0, deadline=100.0, submit=0.0, job_id=2),
        ]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=1)
        assert len(rms.accepted) == 2
        assert all(j.deadline_met for j in rms.completed)

    def test_capacity_freed_by_completion_reused(self):
        jobs = [
            make_job(runtime=60.0, deadline=100.0, submit=0.0, job_id=1),
            # Arrives after job 1 finished (t=100): node free again.
            make_job(runtime=60.0, deadline=100.0, submit=150.0, job_id=2),
        ]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=1)
        assert len(rms.completed) == 2

    def test_parallel_job_needs_numproc_suitable_nodes(self):
        jobs = [make_job(runtime=50.0, deadline=100.0, numproc=3)]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=2)
        assert len(rms.rejected) == 1

    def test_parallel_job_allocated_one_task_per_node(self):
        jobs = [make_job(runtime=50.0, deadline=100.0, numproc=3)]
        rms, _, cluster = run_jobs("libra", jobs, num_nodes=4)
        job = rms.accepted[0]
        assert len(set(job.assigned_nodes)) == 3

    def test_multinode_job_completes_when_all_tasks_finish(self):
        jobs = [make_job(runtime=50.0, deadline=100.0, numproc=2)]
        rms, sim, _ = run_jobs("libra", jobs, num_nodes=2)
        assert rms.completed[0].finish_time == pytest.approx(100.0)


class TestBestFit:
    def test_best_fit_saturates_loaded_node_first(self):
        # Node 0 carries a small job; the next job should go to node 0
        # again (least residual share after acceptance).
        jobs = [
            make_job(runtime=20.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=20.0, deadline=100.0, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=3)
        a, b = rms.accepted
        assert a.assigned_nodes == b.assigned_nodes

    def test_spillover_when_best_node_full(self):
        jobs = [
            make_job(runtime=90.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=90.0, deadline=100.0, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=2)
        a, b = rms.accepted
        assert a.assigned_nodes != b.assigned_nodes
        assert len(rms.completed) == 2


class TestEstimateBlindness:
    def test_overrunning_job_invisible_to_admission(self):
        """The core Libra weakness the paper attacks: a job past its
        estimate contributes zero Eq. 1 share, so Libra over-admits
        onto its node and the newcomers get squeezed by the floor."""
        params = ShareParams(overrun_floor_share=0.25)
        jobs = [
            # share 10/20=0.5; estimate exhausted at t=20, actual work
            # 1000 continues at the floor for a long time.
            make_job(runtime=1000.0, estimate=10.0, deadline=20.0, submit=0.0, job_id=1),
            # Arrives at t=30 needing 0.9: Libra sees the node as empty.
            make_job(runtime=90.0, estimate=90.0, deadline=100.0, submit=30.0, job_id=2),
        ]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=1, share_params=params)
        assert len(rms.accepted) == 2
        victim = next(j for j in rms.completed if j.job_id == 2)
        # 0.9 + 0.25 floor over-commits the node -> job 2 runs slower
        # than its Eq. 1 share and misses its deadline.
        assert not victim.deadline_met

    def test_expired_mode_infinite_blocks_node(self):
        params = ShareParams(overrun_floor_share=0.25)
        jobs = [
            make_job(runtime=1000.0, estimate=10.0, deadline=20.0, submit=0.0, job_id=1),
            make_job(runtime=90.0, estimate=90.0, deadline=100.0, submit=30.0, job_id=2),
        ]
        rms, _, _ = run_jobs(
            "libra", jobs, num_nodes=1, share_params=params,
            expired_job_share_mode="infinite",
        )
        assert [j.job_id for j in rms.rejected] == [2]

    def test_expired_mode_floor_counts_floor_share(self):
        params = ShareParams(overrun_floor_share=0.25)
        jobs = [
            make_job(runtime=1000.0, estimate=10.0, deadline=20.0, submit=0.0, job_id=1),
            # needs 0.70; 0.70 + 0.25 floor <= 1 -> accepted even in
            # floor mode.
            make_job(runtime=70.0, estimate=70.0, deadline=100.0, submit=30.0, job_id=2),
            # needs 0.90; 0.90 + 0.25 > 1 -> rejected in floor mode.
            make_job(runtime=90.0, estimate=90.0, deadline=100.0, submit=31.0, job_id=3),
        ]
        rms, _, _ = run_jobs(
            "libra", jobs, num_nodes=1, share_params=params,
            expired_job_share_mode="floor",
        )
        accepted_ids = {j.job_id for j in rms.accepted}
        assert 2 in accepted_ids and 3 not in accepted_ids


class TestValidation:
    def test_unknown_expired_mode_rejected(self):
        with pytest.raises(ValueError):
            LibraPolicy(expired_job_share_mode="bogus")

    def test_requires_time_shared_nodes(self):
        from repro.cluster.cluster import Cluster
        from repro.cluster.rms import ResourceManagementSystem
        from repro.sim.kernel import Simulator

        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 1, discipline="space_shared")
        with pytest.raises(TypeError, match="requires time-shared"):
            ResourceManagementSystem(sim, cluster, LibraPolicy())
