"""Tests for conservative backfilling with reservation-based admission."""

import pytest

from repro.cluster.job import JobState
from tests.conftest import make_job, run_jobs


class TestReservations:
    def test_single_job_starts_immediately(self):
        jobs = [make_job(runtime=10.0, deadline=100.0)]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2)
        assert rms.completed[0].start_time == 0.0

    def test_every_queued_job_gets_a_reservation(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=2, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=10000.0, numproc=2, submit=1.0, job_id=2),
            make_job(runtime=10.0, deadline=10000.0, numproc=2, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[2].start_time == pytest.approx(100.0)
        assert by_id[3].start_time == pytest.approx(110.0)

    def test_backfills_without_delaying_reservations(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=50.0, deadline=10000.0, numproc=2, submit=1.0, job_id=2),
            # 1-node 5 s job: fits on the idle node before job 2's
            # t=100 reservation.
            make_job(runtime=5.0, deadline=10000.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[3].start_time == pytest.approx(2.0)
        assert by_id[2].start_time == pytest.approx(100.0)

    def test_conservative_blocks_backfill_that_easy_allows(self):
        # A long narrow job may backfill under EASY only against the
        # head's reservation; conservative also protects job 3's.
        jobs = [
            make_job(runtime=100.0, deadline=100000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=100000.0, numproc=2, submit=1.0, job_id=2),
            make_job(runtime=10.0, deadline=100000.0, numproc=2, submit=2.0, job_id=3),
            # Would delay job 3's reservation (start 110, both nodes).
            make_job(runtime=150.0, deadline=100000.0, numproc=1, submit=3.0, job_id=4),
        ]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2, admission_check=False)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[3].start_time == pytest.approx(110.0)
        assert by_id[4].start_time >= 110.0

    def test_early_completion_compresses_schedule(self):
        jobs = [
            # Claims 100 s, actually runs 20 s.
            make_job(runtime=20.0, estimate=100.0, deadline=10000.0, numproc=2,
                     submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=10000.0, numproc=2, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[2].start_time == pytest.approx(20.0)  # not 100


class TestSubmissionAdmission:
    def test_rejects_at_submission_when_reservation_misses_deadline(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=2, submit=0.0, job_id=1),
            # Earliest start 100, est 50 -> completion 150 > deadline 80.
            make_job(runtime=50.0, deadline=80.0, numproc=2, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2)
        rejected = {j.job_id for j in rms.rejected}
        assert rejected == {2}
        # Rejected immediately, never queued/started.
        job2 = next(j for j in rms.jobs if j.job_id == 2)
        assert job2.start_time is None

    def test_accepted_jobs_meet_deadlines_under_honest_estimates(self):
        jobs = [
            make_job(runtime=50.0, deadline=200.0, numproc=1, submit=float(i), job_id=i + 1)
            for i in range(6)
        ]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2)
        assert all(j.deadline_met for j in rms.completed)
        assert len(rms.completed) + len(rms.rejected) == 6

    def test_overrun_slippage_rejects_queued_job(self):
        jobs = [
            # Claims 10 s but runs 100 s on both nodes.
            make_job(runtime=100.0, estimate=10.0, deadline=10000.0, numproc=2,
                     submit=0.0, job_id=1),
            # Admitted believing start=10, completion 60 < deadline 70;
            # reality slips past it.
            make_job(runtime=50.0, estimate=50.0, deadline=70.0, numproc=2,
                     submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2)
        job2 = next(j for j in rms.jobs if j.job_id == 2)
        assert job2.state is JobState.REJECTED

    def test_impossible_numproc_rejected(self):
        jobs = [make_job(runtime=10.0, deadline=1e6, numproc=9)]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2)
        assert len(rms.rejected) == 1

    def test_admission_check_off_runs_everything_possible(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=2, submit=0.0, job_id=1),
            make_job(runtime=50.0, deadline=80.0, numproc=2, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=2, admission_check=False)
        assert len(rms.completed) == 2
