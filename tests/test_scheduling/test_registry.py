"""Tests for the policy registry."""

import pytest

from repro.scheduling.base import SchedulingPolicy
from repro.scheduling.registry import (
    available_policies,
    make_policy,
    policy_discipline,
    register_policy,
)


class TestRegistry:
    def test_paper_policies_present(self):
        names = available_policies()
        for expected in ("edf", "libra", "librarisk"):
            assert expected in names

    def test_make_policy_builds_named_policy(self):
        assert make_policy("edf").name == "edf"
        assert make_policy("librarisk").name == "librarisk"

    def test_kwargs_forwarded(self):
        policy = make_policy("librarisk", node_order="index")
        assert policy.node_order == "index"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available:"):
            make_policy("quantum-annealer")

    def test_disciplines(self):
        assert policy_discipline("edf") == "space_shared"
        assert policy_discipline("fcfs") == "space_shared"
        assert policy_discipline("edf-easy") == "space_shared"
        assert policy_discipline("libra") == "time_shared"
        assert policy_discipline("librarisk") == "time_shared"

    def test_discipline_unknown_name(self):
        with pytest.raises(ValueError):
            policy_discipline("nope")


class TestRegisterPolicy:
    def test_custom_policy_registration(self):
        class Custom(SchedulingPolicy):
            name = "custom-test-policy"
            discipline = "time_shared"

            def on_job_submitted(self, job, now):  # pragma: no cover
                pass

        register_policy(Custom)
        try:
            assert "custom-test-policy" in available_policies()
            assert isinstance(make_policy("custom-test-policy"), Custom)
        finally:
            # Clean up the global registry for other tests.
            from repro.scheduling import registry

            registry._REGISTRY.pop("custom-test-policy")

    def test_duplicate_name_rejected(self):
        class Dup(SchedulingPolicy):
            name = "edf"

            def on_job_submitted(self, job, now):  # pragma: no cover
                pass

        with pytest.raises(ValueError, match="already registered"):
            register_policy(Dup)

    def test_nameless_factory_rejected(self):
        class NoName(SchedulingPolicy):
            name = ""

            def on_job_submitted(self, job, now):  # pragma: no cover
                pass

        with pytest.raises(ValueError, match="name"):
            register_policy(NoName)
