"""Tests for LibraRisk (Algorithm 1) — the paper's contribution."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.share import ShareParams
from repro.scheduling.librarisk import LibraRiskPolicy
from repro.sim.kernel import Simulator
from tests.conftest import make_job, run_jobs


class TestBasicAdmission:
    def test_behaves_like_libra_on_feasible_jobs(self):
        jobs = [make_job(runtime=50.0, deadline=100.0)]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=2)
        job = rms.completed[0]
        assert job.start_time == 0.0
        assert job.finish_time == pytest.approx(100.0)
        assert job.deadline_met

    def test_capacity_respected_for_on_time_jobs(self):
        # Adding a 0.6 job to a node already carrying 0.6 would delay
        # someone -> sigma > 0 -> rejected (one-node cluster).
        jobs = [
            make_job(runtime=60.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=60.0, deadline=100.0, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=1)
        assert [j.job_id for j in rms.accepted] == [1]
        assert [j.job_id for j in rms.rejected] == [2]

    def test_parallel_job_needs_numproc_zero_risk_nodes(self):
        jobs = [make_job(runtime=50.0, deadline=100.0, numproc=3)]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=2)
        assert len(rms.rejected) == 1


class TestEmptyNodeGamble:
    def test_estimate_infeasible_job_accepted_on_empty_node(self):
        """Libra rejects share > 1 outright; LibraRisk gambles on an
        empty node (single deadline-delay value -> sigma = 0)."""
        jobs = [make_job(runtime=50.0, estimate=300.0, deadline=100.0)]
        risk_rms, _, _ = run_jobs("librarisk", jobs, num_nodes=2)
        assert len(risk_rms.accepted) == 1
        # The gamble pays off: at full speed the actual 50 s beats the
        # 100 s deadline despite the 300 s estimate.
        assert risk_rms.completed[0].deadline_met

        libra_rms, _, _ = run_jobs(
            "libra", [make_job(runtime=50.0, estimate=300.0, deadline=100.0)], num_nodes=2
        )
        assert len(libra_rms.rejected) == 1

    def test_gamble_denied_on_node_with_resident_job(self):
        # With one node occupied by an on-time job, placing the
        # infeasible-estimate job there yields unequal deadline delays.
        jobs = [
            make_job(runtime=60.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=50.0, estimate=300.0, deadline=100.0, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=1)
        assert [j.job_id for j in rms.rejected] == [2]

    def test_gamble_can_lose_when_estimate_was_honest(self):
        # estimate == runtime == 300 > deadline 100: the gamble is
        # accepted (empty node) but genuinely cannot be won.
        jobs = [make_job(runtime=300.0, estimate=300.0, deadline=100.0)]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=1)
        assert len(rms.accepted) == 1
        assert not rms.completed[0].deadline_met


class TestRiskProtection:
    def test_overrun_node_excluded(self):
        """A node carrying a delayed overrunning job is never suitable —
        the protection Libra lacks (contrast with
        test_libra.TestEstimateBlindness)."""
        params = ShareParams(overrun_floor_share=0.25)
        jobs = [
            make_job(runtime=1000.0, estimate=10.0, deadline=20.0, submit=0.0, job_id=1),
            make_job(runtime=90.0, estimate=90.0, deadline=100.0, submit=30.0, job_id=2),
        ]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=1, share_params=params)
        assert [j.job_id for j in rms.rejected] == [2]

    def test_victim_spared_on_second_node(self):
        params = ShareParams(overrun_floor_share=0.25)
        jobs = [
            make_job(runtime=1000.0, estimate=10.0, deadline=20.0, submit=0.0, job_id=1),
            make_job(runtime=90.0, estimate=90.0, deadline=100.0, submit=30.0, job_id=2),
        ]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=2, share_params=params)
        victim = next(j for j in rms.completed if j.job_id == 2)
        assert victim.deadline_met  # placed on the clean node

    def test_node_with_expired_deadline_job_excluded(self):
        jobs = [
            # Runs at full speed (clamped share) but can never meet its
            # 100 s deadline: delayed from t > 100 onwards.
            make_job(runtime=500.0, estimate=500.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=10.0, estimate=10.0, deadline=100.0, submit=200.0, job_id=2),
        ]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=1)
        assert [j.job_id for j in rms.rejected] == [2]


class TestNodeOrdering:
    def _two_small_jobs(self):
        return [
            make_job(runtime=20.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=20.0, deadline=100.0, submit=1.0, job_id=2),
        ]

    def test_best_fit_packs(self):
        rms, _, _ = run_jobs("librarisk", self._two_small_jobs(), num_nodes=3,
                             node_order="best_fit")
        a, b = rms.accepted
        assert a.assigned_nodes == b.assigned_nodes

    def test_worst_fit_spreads(self):
        rms, _, _ = run_jobs("librarisk", self._two_small_jobs(), num_nodes=3,
                             node_order="worst_fit")
        a, b = rms.accepted
        assert a.assigned_nodes != b.assigned_nodes

    def test_index_order_uses_lowest_ids(self):
        rms, _, _ = run_jobs("librarisk", [make_job(runtime=20.0, deadline=100.0, numproc=2)],
                             num_nodes=4, node_order="index")
        assert rms.accepted[0].assigned_nodes == [0, 1]


class TestSuitabilityModes:
    def test_strict_mode_refuses_gambles(self):
        jobs = [make_job(runtime=50.0, estimate=300.0, deadline=100.0)]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=2, suitability="no-delay")
        assert len(rms.rejected) == 1

    def test_strict_mode_still_accepts_feasible(self):
        jobs = [make_job(runtime=50.0, deadline=100.0)]
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=2, suitability="no-delay")
        assert len(rms.completed) == 1


class TestValidation:
    def test_bad_node_order(self):
        with pytest.raises(ValueError, match="node_order"):
            LibraRiskPolicy(node_order="random")

    def test_bad_suitability(self):
        with pytest.raises(ValueError, match="suitability"):
            LibraRiskPolicy(suitability="vibes")

    def test_requires_time_shared_nodes(self):
        from repro.cluster.rms import ResourceManagementSystem

        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 1, discipline="space_shared")
        with pytest.raises(TypeError, match="requires time-shared"):
            ResourceManagementSystem(sim, cluster, LibraRiskPolicy())


class TestAssessNode:
    def test_assess_reports_sigma_for_mixed_node(self, sim):
        cluster = Cluster.homogeneous(sim, 1, rating=1.0, discipline="time_shared")
        policy = LibraRiskPolicy()
        # bind via a throwaway RMS
        from repro.cluster.rms import ResourceManagementSystem

        ResourceManagementSystem(sim, cluster, policy)
        node = cluster.node(0)
        resident = make_job(runtime=60.0, deadline=100.0, job_id=1)
        node.add_task(resident, work=60.0, est_work=60.0, now=0.0)
        new = make_job(runtime=50.0, deadline=80.0, job_id=2)
        assessment = policy.assess_node(node, new, 0.0)
        assert assessment.sigma > 0.0
        assert not assessment.zero_risk
        assert assessment.n_jobs == 2

    def test_identical_twin_jobs_are_a_sigma_blind_spot(self, sim):
        """Documented corner of the literal σ = 0 criterion: two jobs
        with *exactly* identical parameters project perfectly symmetric
        delays, so their deadline-delay values tie and σ = 0 even on an
        over-committed node.  Real workloads never tie exactly (any
        arrival-time difference staggers the projection — see
        TestBasicAdmission.test_capacity_respected_for_on_time_jobs)."""
        cluster = Cluster.homogeneous(sim, 1, rating=1.0, discipline="time_shared")
        policy = LibraRiskPolicy()
        from repro.cluster.rms import ResourceManagementSystem

        ResourceManagementSystem(sim, cluster, policy)
        node = cluster.node(0)
        resident = make_job(runtime=60.0, deadline=100.0, job_id=1)
        node.add_task(resident, work=60.0, est_work=60.0, now=0.0)
        twin = make_job(runtime=60.0, deadline=100.0, job_id=2)
        assessment = policy.assess_node(node, twin, 0.0)
        assert assessment.sigma == 0.0
        assert assessment.max_delay > 0.0
        assert not assessment.strictly_safe
