"""Tests for the EDF policy (space-shared, relaxed admission)."""

import pytest

from repro.cluster.job import JobState
from tests.conftest import make_job, run_jobs


class TestBasicExecution:
    def test_single_job_runs_immediately(self):
        jobs = [make_job(runtime=10.0, deadline=100.0)]
        rms, sim, _ = run_jobs("edf", jobs, num_nodes=2)
        job = rms.completed[0]
        assert job.start_time == 0.0
        assert job.finish_time == pytest.approx(10.0)
        assert job.deadline_met

    def test_space_shared_full_speed(self):
        # Unlike Libra, EDF runs the job at full node speed: a 10 s job
        # with a 100 s deadline finishes at t=10, not t=100.
        jobs = [make_job(runtime=10.0, deadline=100.0)]
        rms, sim, _ = run_jobs("edf", jobs)
        assert rms.completed[0].slowdown == pytest.approx(1.0)

    def test_parallel_job_takes_numproc_nodes(self):
        jobs = [make_job(runtime=10.0, deadline=100.0, numproc=3)]
        rms, _, cluster = run_jobs("edf", jobs, num_nodes=4)
        assert len(rms.completed) == 1
        assert len(rms.completed[0].assigned_nodes) == 3

    def test_jobs_queue_when_nodes_busy(self):
        jobs = [
            make_job(runtime=10.0, deadline=100.0, numproc=2, submit=0.0, job_id=1),
            make_job(runtime=5.0, deadline=100.0, numproc=2, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("edf", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[2].start_time == pytest.approx(10.0)
        assert by_id[2].finish_time == pytest.approx(15.0)


class TestDeadlineOrdering:
    def test_earliest_deadline_dispatched_first(self):
        jobs = [
            make_job(runtime=10.0, deadline=1000.0, numproc=2, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=500.0, numproc=2, submit=1.0, job_id=2),
            make_job(runtime=10.0, deadline=200.0, numproc=2, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        # Job 1 runs first (it was alone); then 3 (earlier absolute
        # deadline than 2), then 2.
        assert by_id[3].start_time < by_id[2].start_time

    def test_reselection_during_wait(self):
        # While job 2 waits for the busy node, the later-arriving but
        # more urgent job 3 takes its place — the paper's "better
        # selection choice".
        jobs = [
            make_job(runtime=50.0, deadline=1000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=900.0, numproc=1, submit=1.0, job_id=2),
            make_job(runtime=10.0, deadline=100.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf", jobs, num_nodes=1)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[3].start_time == pytest.approx(50.0)
        assert by_id[2].start_time == pytest.approx(60.0)

    def test_tie_broken_by_submit_time(self):
        jobs = [
            make_job(runtime=10.0, deadline=99.0, numproc=1, submit=1.0, job_id=2),
            make_job(runtime=10.0, deadline=100.0, numproc=1, submit=0.0, job_id=1),
        ]
        # Both absolute deadlines equal 100.
        rms, _, _ = run_jobs("edf", jobs, num_nodes=1)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[1].start_time < by_id[2].start_time


class TestAdmissionControl:
    def test_infeasible_estimate_rejected_at_dispatch(self):
        jobs = [make_job(runtime=10.0, estimate=200.0, deadline=100.0)]
        rms, _, _ = run_jobs("edf", jobs)
        assert len(rms.rejected) == 1
        assert rms.rejected[0].state is JobState.REJECTED

    def test_feasible_but_overestimated_accepted(self):
        jobs = [make_job(runtime=10.0, estimate=90.0, deadline=100.0)]
        rms, _, _ = run_jobs("edf", jobs)
        assert len(rms.completed) == 1

    def test_job_rejected_when_wait_made_it_infeasible(self):
        jobs = [
            make_job(runtime=60.0, deadline=1000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=50.0, deadline=55.0, numproc=1, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("edf", jobs, num_nodes=1)
        # Job 2 must wait until t=60; 60 + 50 > 1 + 55 -> rejected.
        assert [j.job_id for j in rms.rejected] == [2]

    def test_doomed_wide_job_does_not_block_queue(self):
        jobs = [
            make_job(runtime=100.0, deadline=1000.0, numproc=1, submit=0.0, job_id=1),
            # Needs both nodes and is already infeasible once queued.
            make_job(runtime=100.0, estimate=100.0, deadline=50.0, numproc=2,
                     submit=1.0, job_id=2),
            make_job(runtime=10.0, deadline=500.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.jobs}
        assert by_id[2].state is JobState.REJECTED
        # Job 3 starts on the free node at its arrival, not after job 1.
        assert by_id[3].start_time == pytest.approx(2.0)

    def test_admission_check_disabled_runs_everything(self):
        jobs = [make_job(runtime=10.0, estimate=500.0, deadline=100.0)]
        rms, _, _ = run_jobs("edf", jobs, admission_check=False)
        assert len(rms.completed) == 1
        assert rms.completed[0].deadline_met  # actual runtime was fine

    def test_non_preemptive_head_of_line_blocking(self):
        # EDF does NOT backfill: an urgent wide job blocks a later
        # narrow job even though a node is idle.
        jobs = [
            make_job(runtime=50.0, deadline=1000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=200.0, numproc=2, submit=1.0, job_id=2),
            make_job(runtime=1.0, deadline=2000.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        # Job 2 (deadline 201) is selected over job 3 (deadline 2002)
        # and waits for both nodes; job 3 waits behind it.
        assert by_id[2].start_time == pytest.approx(50.0)
        assert by_id[3].start_time >= by_id[2].start_time


class TestMetricsIntegration:
    def test_queue_drains_completely_under_light_load(self):
        jobs = [
            make_job(runtime=5.0, deadline=500.0, submit=float(i * 20), job_id=i + 1)
            for i in range(10)
        ]
        rms, _, _ = run_jobs("edf", jobs, num_nodes=2)
        assert len(rms.completed) == 10
        assert all(j.deadline_met for j in rms.completed)
