"""Tests for the deadline-delay metric and risk assessment (Eq. 4–6)."""

import math

import pytest

from repro.scheduling.risk import RiskAssessment, assess_delays, deadline_delay


class TestDeadlineDelay:
    def test_zero_delay_gives_one(self):
        assert deadline_delay(0.0, 100.0) == 1.0

    def test_paper_example_values(self):
        # Paper §3.2: same delay, shorter remaining deadline -> higher
        # impact.  delay=200, rem=50 -> 5; delay=200, rem=100 -> 3.
        assert deadline_delay(200.0, 50.0) == pytest.approx(5.0)
        assert deadline_delay(200.0, 100.0) == pytest.approx(3.0)

    def test_longer_delay_higher_impact(self):
        assert deadline_delay(50.0, 100.0) < deadline_delay(80.0, 100.0)

    def test_shorter_remaining_deadline_higher_impact(self):
        assert deadline_delay(50.0, 200.0) < deadline_delay(50.0, 100.0)

    def test_expired_deadline_is_infinite(self):
        assert math.isinf(deadline_delay(10.0, 0.0))
        assert math.isinf(deadline_delay(10.0, -5.0))

    def test_infinite_delay_is_infinite(self):
        assert math.isinf(deadline_delay(math.inf, 100.0))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            deadline_delay(-1.0, 100.0)

    def test_minimum_value_is_one(self):
        for delay, rem in [(0.0, 1.0), (0.0, 1e9), (1.0, 1e9)]:
            assert deadline_delay(delay, rem) >= 1.0


class TestAssessDelays:
    def test_empty_node_is_zero_risk(self):
        a = assess_delays([])
        assert a.zero_risk and a.strictly_safe
        assert a.mu == 1.0 and a.sigma == 0.0 and a.n_jobs == 0

    def test_all_on_time_is_zero_risk(self):
        a = assess_delays([(0.0, 100.0), (0.0, 50.0), (0.0, 10.0)])
        assert a.zero_risk and a.strictly_safe
        assert a.mu == pytest.approx(1.0)
        assert a.sigma == pytest.approx(0.0)
        assert a.max_delay == 0.0

    def test_single_delayed_job_has_sigma_zero(self):
        # The literal criterion: one value -> no spread -> "zero risk".
        # This is the empty-node gamble at the heart of LibraRisk.
        a = assess_delays([(500.0, 100.0)])
        assert a.sigma == 0.0
        assert a.zero_risk
        assert not a.strictly_safe
        assert a.max_delay == 500.0

    def test_unequal_delays_nonzero_sigma(self):
        a = assess_delays([(0.0, 100.0), (50.0, 100.0)])
        assert a.sigma > 0.0
        assert not a.zero_risk

    def test_equal_deadline_delays_sigma_zero(self):
        # Two jobs with proportionally identical Eq. 4 values.
        a = assess_delays([(100.0, 100.0), (50.0, 50.0)])  # both dd = 2
        assert a.sigma == pytest.approx(0.0)
        assert a.zero_risk
        assert not a.strictly_safe

    def test_expired_deadline_never_zero_risk(self):
        a = assess_delays([(10.0, -5.0)])
        assert math.isinf(a.sigma)
        assert not a.zero_risk

    def test_infinite_delay_never_zero_risk(self):
        a = assess_delays([(math.inf, 100.0), (0.0, 100.0)])
        assert math.isinf(a.sigma)
        assert not a.zero_risk

    def test_mu_sigma_match_eq5_eq6(self):
        pairs = [(10.0, 100.0), (40.0, 200.0), (0.0, 50.0)]
        values = [(d + r) / r for d, r in pairs]
        n = len(values)
        mu = sum(values) / n
        sigma = math.sqrt(sum(v * v for v in values) / n - mu * mu)
        a = assess_delays(pairs)
        assert a.mu == pytest.approx(mu)
        assert a.sigma == pytest.approx(sigma)

    def test_sigma_never_negative_under_float_noise(self):
        # Many identical values: E[X^2]-mu^2 can go slightly negative.
        a = assess_delays([(1/3, 100.0)] * 97)
        assert a.sigma >= 0.0

    def test_n_jobs_counted(self):
        assert assess_delays([(0.0, 1.0)] * 5).n_jobs == 5


class TestDegenerateSigmaAlgebra:
    """Documents why the risk projection must stagger completions.

    Under a single-phase proportional rescale, every job's predicted
    finish is ``rem_deadline × Σ`` and therefore every Eq. 4 value is
    exactly Σ — σ = 0 no matter how over-committed the node is.
    """

    def test_single_phase_rescale_is_sigma_blind(self):
        sigma_total = 1.4
        rems = [100.0, 250.0, 30.0]
        pairs = [(r * sigma_total - r, r) for r in rems]  # delay = r(Σ-1)
        a = assess_delays(pairs)
        # σ is zero up to float rounding of the Eq. 4 divisions — far
        # too small for the σ-criterion to catch the over-commitment.
        assert a.sigma == pytest.approx(0.0, abs=1e-6)
        assert a.mu == pytest.approx(sigma_total)

    def test_riskassessment_is_frozen(self):
        a = RiskAssessment(mu=1.0, sigma=0.0, max_delay=0.0, n_jobs=0)
        with pytest.raises(AttributeError):
            a.mu = 2.0  # type: ignore[misc]


class TestZeroRiskExactness:
    """Regression: zero_risk adopted the exact_zero helper; the paper's
    literal σ = 0 criterion must stay bitwise, not become a tolerance."""

    def test_tiny_sigma_is_not_zero_risk(self):
        a = RiskAssessment(mu=1.0, sigma=5e-324, max_delay=0.0, n_jobs=2)
        assert not a.zero_risk
        assert not a.strictly_safe

    def test_negative_zero_sigma_is_zero_risk(self):
        a = RiskAssessment(mu=1.0, sigma=-0.0, max_delay=-0.0, n_jobs=2)
        assert a.zero_risk and a.strictly_safe

    def test_tiny_max_delay_defeats_strictly_safe_only(self):
        a = RiskAssessment(mu=1.0, sigma=0.0, max_delay=5e-324, n_jobs=1)
        assert a.zero_risk
        assert not a.strictly_safe
