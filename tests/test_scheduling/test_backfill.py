"""Tests for EASY backfilling with a deadline-ordered queue."""

import pytest

from tests.conftest import make_job, run_jobs


class TestBackfilling:
    def test_short_job_backfills_past_blocked_head(self):
        jobs = [
            # Occupies 1 of 2 nodes until t=100; estimate honest.
            make_job(runtime=100.0, deadline=10000.0, numproc=1, submit=0.0, job_id=1),
            # Head: needs both nodes, must wait until t=100.
            make_job(runtime=10.0, deadline=150.0, numproc=2, submit=1.0, job_id=2),
            # Fits in the hole before the head's reservation (5 < 100).
            make_job(runtime=5.0, deadline=10000.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf-easy", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[3].start_time == pytest.approx(2.0)   # backfilled
        assert by_id[2].start_time == pytest.approx(100.0)  # reservation kept

    def test_edf_would_not_backfill_same_workload(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=150.0, numproc=2, submit=1.0, job_id=2),
            make_job(runtime=5.0, deadline=10000.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[3].start_time >= by_id[2].start_time

    def test_backfill_never_delays_reservation(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=150.0, numproc=2, submit=1.0, job_id=2),
            # Too long to fit before the head's t=100 reservation and
            # needs the only free node -> must NOT start.
            make_job(runtime=500.0, deadline=10000.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf-easy", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.jobs}
        assert by_id[2].start_time == pytest.approx(100.0)
        assert by_id[3].start_time is None or by_id[3].start_time >= 100.0

    def test_backfill_on_extra_nodes_may_run_long(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=2, submit=0.0, job_id=1),
            # Head: needs 2 of 3 nodes, only 1 idle -> reservation at
            # t=100 with extra = (1 idle + 2 freed) - 2 = 1 node.
            make_job(runtime=10.0, deadline=200.0, numproc=2, submit=1.0, job_id=2),
            # Long, but fits in the extra node without touching the
            # head's two reserved nodes.
            make_job(runtime=500.0, deadline=10000.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf-easy", jobs, num_nodes=3)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[3].start_time == pytest.approx(2.0)
        assert by_id[2].start_time == pytest.approx(100.0)

    def test_urgent_backfill_candidates_go_first(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=150.0, numproc=2, submit=1.0, job_id=2),
            make_job(runtime=5.0, deadline=9000.0, numproc=1, submit=2.0, job_id=3),
            make_job(runtime=5.0, deadline=100.0, numproc=1, submit=2.5, job_id=4),
        ]
        rms, _, _ = run_jobs("edf-easy", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        # Job 4 is more urgent than 3; at t=2.5 it should backfill
        # before 3 gets another chance.
        assert by_id[4].deadline_met

    def test_infeasible_head_rejected_not_blocking(self):
        jobs = [
            make_job(runtime=100.0, deadline=10000.0, numproc=2, submit=0.0, job_id=1),
            make_job(runtime=100.0, estimate=100.0, deadline=50.0, numproc=2,
                     submit=1.0, job_id=2),
            make_job(runtime=5.0, deadline=10000.0, numproc=2, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf-easy", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.jobs}
        assert by_id[2].reject_reason is not None
        assert by_id[3].start_time == pytest.approx(100.0)

    def test_estimates_drive_reservation_not_actuals(self):
        jobs = [
            # Claims 200 s but actually runs 20 s.
            make_job(runtime=20.0, estimate=200.0, deadline=10000.0, numproc=1,
                     submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=500.0, numproc=2, submit=1.0, job_id=2),
            # Fits before the (pessimistic) t=200 reservation.
            make_job(runtime=50.0, estimate=50.0, deadline=10000.0, numproc=1,
                     submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("edf-easy", jobs, num_nodes=2)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[3].start_time == pytest.approx(2.0)
        # Head actually starts at t=20 (early completion), not 200.
        assert by_id[2].start_time == pytest.approx(52.0, abs=1.0) or \
            by_id[2].start_time == pytest.approx(20.0, abs=1.0)
