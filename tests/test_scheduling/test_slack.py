"""Tests for the QoPS-style soft-deadline admission policy."""

import pytest

from repro.scheduling.slack import SlackAdmissionPolicy
from tests.conftest import make_job, run_jobs


class TestSoftDeadlines:
    def test_soft_deadline_stretches_hard_one(self):
        policy = SlackAdmissionPolicy(slack_factor=1.5)
        job = make_job(submit=100.0, deadline=200.0)
        assert policy.soft_deadline(job) == pytest.approx(400.0)

    def test_slack_one_matches_hard_deadline(self):
        policy = SlackAdmissionPolicy(slack_factor=1.0)
        job = make_job(submit=0.0, deadline=200.0)
        assert policy.soft_deadline(job) == pytest.approx(200.0)

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            SlackAdmissionPolicy(slack_factor=0.9)


class TestAdmission:
    def test_accepts_job_that_fits_only_with_slack(self):
        # Job 2 must wait 100 s and needs 50 s against a 120 s hard
        # deadline: infeasible hard, feasible with slack 1.5 (180 s).
        def mk():
            return [
                make_job(runtime=100.0, deadline=10000.0, numproc=1, submit=0.0, job_id=1),
                make_job(runtime=50.0, deadline=120.0, numproc=1, submit=1.0, job_id=2),
            ]

        strict, _, _ = run_jobs("qops-slack", mk(), num_nodes=1, slack_factor=1.0)
        assert {j.job_id for j in strict.rejected} == {2}

        slack, _, _ = run_jobs("qops-slack", mk(), num_nodes=1, slack_factor=1.5)
        assert slack.rejected == []
        job2 = next(j for j in slack.completed if j.job_id == 2)
        assert not job2.deadline_met  # hard deadline still missed ...
        assert job2.finish_time <= 1.0 + 120.0 * 1.5  # ... but soft one kept

    def test_rejects_job_that_would_break_others_slack(self):
        jobs = [
            make_job(runtime=100.0, deadline=110.0, numproc=1, submit=0.0, job_id=1),
            # Earlier deadline -> would run first under EDF and push job
            # 1 past even its slacked deadline.
            make_job(runtime=100.0, deadline=105.0, numproc=1, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_jobs("qops-slack", jobs, num_nodes=1, slack_factor=1.05)
        assert {j.job_id for j in rms.rejected} == {2}

    def test_accepts_urgent_latecomer_that_fits_in_others_slack(self):
        """The QoPS idea verbatim: an earlier job may be delayed up to
        its slack to accommodate a later, more urgent job."""
        def mk():
            return [
                # Runs 0-100 and occupies the node.
                make_job(runtime=100.0, deadline=10000.0, numproc=1, submit=0.0, job_id=0),
                # Queued: tentative 100-160, hard deadline 1+165=166 OK.
                make_job(runtime=60.0, deadline=165.0, numproc=1, submit=1.0, job_id=1),
                # Urgent latecomer (abs deadline 122 < 166): EDF runs it
                # first, pushing job 1 to 110-170 — past its hard
                # deadline but within slack 1.2 (soft 199).
                make_job(runtime=10.0, deadline=120.0, numproc=1, submit=2.0, job_id=2),
            ]

        with_slack, _, _ = run_jobs("qops-slack", mk(), num_nodes=1, slack_factor=1.2)
        assert with_slack.rejected == []
        job1 = next(j for j in with_slack.completed if j.job_id == 1)
        assert job1.start_time == pytest.approx(110.0)

        without, _, _ = run_jobs("qops-slack", mk(), num_nodes=1, slack_factor=1.0)
        assert {j.job_id for j in without.rejected} == {2}

    def test_dispatch_is_edf_order(self):
        jobs = [
            make_job(runtime=50.0, deadline=10000.0, numproc=1, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=9000.0, numproc=1, submit=1.0, job_id=2),
            make_job(runtime=10.0, deadline=500.0, numproc=1, submit=2.0, job_id=3),
        ]
        rms, _, _ = run_jobs("qops-slack", jobs, num_nodes=1, slack_factor=2.0)
        by_id = {j.job_id: j for j in rms.completed}
        assert by_id[3].start_time < by_id[2].start_time

    def test_higher_slack_accepts_at_least_as_many(self):
        def mk():
            return [
                make_job(runtime=60.0, deadline=100.0, numproc=1,
                         submit=float(i * 5), job_id=i + 1)
                for i in range(8)
            ]

        tight, _, _ = run_jobs("qops-slack", mk(), num_nodes=2, slack_factor=1.0)
        loose, _, _ = run_jobs("qops-slack", mk(), num_nodes=2, slack_factor=2.0)
        assert len(loose.accepted) >= len(tight.accepted)
