"""Tests for the design-choice ablations."""

import pytest

from repro.experiments.ablations import (
    ablation_node_order,
    ablation_overrun_floor,
    ablation_redistribute_spare,
    ablation_suitability,
)
from repro.experiments.config import ScenarioConfig

SMALL = ScenarioConfig(num_jobs=120, num_nodes=32, seed=13)


class TestSuitabilityAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_suitability(SMALL)

    def test_variants_present(self, result):
        assert set(result.results) == {
            "sigma (paper)", "no-delay (strict)", "libra (reference)"
        }

    def test_sigma_beats_strict_under_trace_estimates(self, result):
        """The empty-node gamble is the advantage; removing it (strict
        mode) must not fulfil more jobs than the paper criterion."""
        s = result.series("pct_deadlines_fulfilled")
        assert s["sigma (paper)"] >= s["no-delay (strict)"]

    def test_sigma_beats_libra(self, result):
        s = result.series("pct_deadlines_fulfilled")
        assert s["sigma (paper)"] > s["libra (reference)"]

    def test_render_is_table(self, result):
        out = result.render()
        assert "Ablation" in out and "sigma (paper)" in out


class TestOtherAblations:
    def test_node_order_variants(self):
        result = ablation_node_order(SMALL)
        assert set(result.results) == {"worst_fit", "best_fit", "index"}

    def test_overrun_floor_grid(self):
        result = ablation_overrun_floor(SMALL, floors=(0.05, 0.25))
        assert len(result.results) == 4  # 2 policies x 2 floors
        assert "libra floor=0.05" in result.results

    def test_redistribute_spare_variants(self):
        result = ablation_redistribute_spare(SMALL)
        assert set(result.results) == {
            "libra spare=off", "libra spare=on",
            "librarisk spare=off", "librarisk spare=on",
        }

    def test_spare_redistribution_reduces_slowdown(self):
        # Giving idle capacity to running jobs finishes them earlier.
        result = ablation_redistribute_spare(SMALL)
        s = result.series("avg_slowdown")
        assert s["libra spare=on"] <= s["libra spare=off"]
