"""Unit tests for the tracked benchmark plumbing (``repro bench``)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench import (
    bench_engine,
    bench_label,
    bench_scenario,
    check_regression,
    compare,
    load_bench_file,
    run_bench,
    update_bench_file,
    _percentile,
)
from repro.experiments.config import ScenarioConfig


class TestPercentile:
    def test_empty_sample(self):
        assert _percentile([], 99.0) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 50.0) == 2.0
        assert _percentile(values, 75.0) == 3.0
        assert _percentile(values, 99.0) == 4.0

    def test_single_value(self):
        assert _percentile([7.0], 1.0) == 7.0
        assert _percentile([7.0], 100.0) == 7.0


class TestBenchLabel:
    def test_paper_scale(self):
        assert bench_label(3000, 128) == "paper"

    def test_derived_label(self):
        assert bench_label(400, 64) == "jobs400x64"


class TestBenchFile:
    def test_load_missing_returns_skeleton(self, tmp_path):
        doc = load_bench_file(str(tmp_path / "nope.json"))
        assert doc == {"schema": 1, "benchmarks": {}}

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_bench_file(str(path))

    def test_update_round_trip_preserves_baseline(self, tmp_path):
        path = str(tmp_path / "bench.json")
        baseline = {"policies": {"libra": {"engine": {"jobs_per_sec": 100.0}}}}
        current = {"policies": {"libra": {"engine": {"jobs_per_sec": 250.0}}}}
        update_bench_file(path, "smoke", baseline, record_baseline=True)
        doc = update_bench_file(path, "smoke", current)
        assert doc["benchmarks"]["smoke"]["baseline"] == baseline
        assert doc["benchmarks"]["smoke"]["current"] == current
        # File is valid JSON and survives reload.
        on_disk = load_bench_file(path)
        assert on_disk == doc
        with open(path, encoding="utf-8") as fp:
            assert json.load(fp)["schema"] == 1


def _section(jobs_per_sec: float) -> dict:
    return {
        "policies": {
            "librarisk": {
                "engine": {"jobs_per_sec": jobs_per_sec},
                "scenario": {"jobs_per_sec": jobs_per_sec * 2},
            }
        }
    }


class TestCompareAndRegression:
    def test_compare_ratios(self):
        rows = compare(_section(100.0), _section(250.0))
        assert ("librarisk", "engine.jobs_per_sec", 100.0, 250.0, 2.5) in rows
        assert ("librarisk", "scenario.jobs_per_sec", 200.0, 500.0, 2.5) in rows

    def test_compare_skips_unknown_policy(self):
        rows = compare({"policies": {}}, _section(250.0))
        assert rows == []

    def test_regression_pass_within_threshold(self):
        # 70 vs 100 sits inside the default 1.5x gate (floor: 66.7).
        doc = {"benchmarks": {"smoke": {"current": _section(100.0)}}}
        assert check_regression(doc, "smoke", _section(70.0)) == []

    def test_regression_default_gate_is_tightened(self):
        # 60 vs 100 passed the old 2x gate; the 1.5x default rejects it.
        doc = {"benchmarks": {"smoke": {"current": _section(100.0)}}}
        assert check_regression(doc, "smoke", _section(60.0)) != []
        assert check_regression(doc, "smoke", _section(60.0), max_regression=2.0) == []

    def test_regression_fails_beyond_threshold(self):
        doc = {"benchmarks": {"smoke": {"current": _section(100.0)}}}
        failures = check_regression(doc, "smoke", _section(40.0))
        assert len(failures) == 1
        assert "librarisk" in failures[0]

    def test_regression_missing_label(self):
        failures = check_regression({"benchmarks": {}}, "smoke", _section(40.0))
        assert failures == ["no committed 'current' entry for label 'smoke'"]

    def test_regression_missing_policy_in_fresh(self):
        doc = {"benchmarks": {"smoke": {"current": _section(100.0)}}}
        failures = check_regression(doc, "smoke", {"policies": {}})
        assert failures == ["librarisk: missing from fresh run"]


class TestBenchRunners:
    def test_bench_scenario_shape(self):
        config = ScenarioConfig(num_jobs=30, num_nodes=8, seed=1, policy="libra")
        record = bench_scenario(config)
        assert record["events"] > 0
        assert record["jobs_per_sec"] > 0

    def test_bench_engine_shape(self):
        config = ScenarioConfig(num_jobs=30, num_nodes=8, seed=1, policy="librarisk")
        record = bench_engine(config)
        assert record["jobs_per_sec"] > 0
        lat = record["latency_us"]
        assert lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]

    def test_run_bench_covers_policies(self):
        section = run_bench(jobs=20, nodes=8, seed=1, policies=("edf", "libra"))
        assert set(section["policies"]) == {"edf", "libra"}
        assert section["scale"] == {"jobs": 20, "nodes": 8, "seed": 1}
