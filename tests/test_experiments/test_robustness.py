"""Tests for the failure-robustness experiment."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.robustness import robustness_grid, run_with_failures

SMALL = ScenarioConfig(num_jobs=100, num_nodes=16, seed=23, estimate_mode="trace")


class TestRunWithFailures:
    def test_no_failures_baseline(self):
        cell = run_with_failures(SMALL.replace(policy="libra"), mtbf_hours=None)
        assert cell.failures_injected == 0
        assert cell.metrics.failed == 0

    def test_aggressive_failures_kill_jobs(self):
        cell = run_with_failures(SMALL.replace(policy="libra"), mtbf_hours=10.0)
        assert cell.failures_injected > 0
        assert cell.metrics.failed > 0

    def test_everything_terminal_despite_failures(self):
        cell = run_with_failures(SMALL.replace(policy="librarisk"), mtbf_hours=10.0)
        m = cell.metrics
        assert m.unfinished == 0
        assert m.accepted == m.completed + m.failed

    def test_deterministic(self):
        a = run_with_failures(SMALL.replace(policy="libra"), mtbf_hours=20.0)
        b = run_with_failures(SMALL.replace(policy="libra"), mtbf_hours=20.0)
        assert a.metrics == b.metrics
        assert a.failures_injected == b.failures_injected


class TestGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return robustness_grid(
            SMALL, policies=("libra", "librarisk"), mtbfs=(None, 50.0)
        )

    def test_full_grid(self, grid):
        assert len(grid.cells) == 4
        assert grid.cell("libra", None).failures_injected == 0

    def test_failures_reduce_fulfilment(self, grid):
        for policy in ("libra", "librarisk"):
            clean = grid.cell(policy, None).metrics.pct_deadlines_fulfilled
            faulty = grid.cell(policy, 50.0).metrics.pct_deadlines_fulfilled
            assert faulty <= clean

    def test_librarisk_still_ahead_under_failures(self, grid):
        assert (
            grid.cell("librarisk", 50.0).metrics.pct_deadlines_fulfilled
            > grid.cell("libra", 50.0).metrics.pct_deadlines_fulfilled
        )

    def test_render(self, grid):
        text = grid.render()
        assert "MTBF" in text and "jobs killed" in text
        assert "none" in text

    def test_missing_cell_raises(self, grid):
        with pytest.raises(KeyError):
            grid.cell("libra", 123.0)
