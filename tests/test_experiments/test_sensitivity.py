"""Tests for the sensitivity analysis."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.sensitivity import (
    KnobSensitivity,
    advantage_sensitivity,
    sensitivity,
)

SMALL = ScenarioConfig(num_jobs=120, num_nodes=32, seed=17)

KNOBS = (
    ("deadline_ratio", 2.0, 8.0),
    ("overrun_floor_share", 0.01, 0.25),
)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity(SMALL, policy="librarisk", knobs=KNOBS)

    def test_one_entry_per_knob_sorted_by_swing(self, result):
        assert len(result.knobs) == 2
        swings = [k.swing for k in result.knobs]
        assert swings == sorted(swings, reverse=True)

    def test_deadline_ratio_moves_the_metric(self, result):
        ratio = next(k for k in result.knobs if k.knob == "deadline_ratio")
        # Looser deadlines must not fulfil fewer jobs.
        assert ratio.high_metric >= ratio.low_metric

    def test_render(self, result):
        text = result.render()
        assert "Sensitivity of librarisk" in text
        assert "deadline_ratio" in text
        assert "swing" in text

    def test_most_sensitive(self, result):
        assert result.most_sensitive() in ("deadline_ratio", "overrun_floor_share")

    def test_swing_computation(self):
        k = KnobSensitivity("x", 0, 1, base_metric=50.0,
                            low_metric=40.0, high_metric=70.0)
        assert k.swing == pytest.approx(30.0)


class TestAdvantageSensitivity:
    def test_advantage_positive_across_nudges(self):
        gaps = advantage_sensitivity(SMALL, knobs=KNOBS)
        assert set(gaps) == {
            "base",
            "deadline_ratio=2.0", "deadline_ratio=8.0",
            "overrun_floor_share=0.01", "overrun_floor_share=0.25",
        }
        # The reproduction's conclusion is robust: LibraRisk never
        # falls behind Libra on any nudge.
        assert all(v >= 0.0 for v in gaps.values()), gaps
