"""Tests for the figure regenerators (small-scale).

These run each figure at reduced job/node counts and assert structure
plus a few robust qualitative shapes; the full paper-scale shape checks
live in tests/test_integration.py and EXPERIMENTS.md.
"""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import (
    FULFILLED,
    PAPER_POLICIES,
    SLOWDOWN,
    figure1,
    figure2,
    figure3,
    figure4,
)

SMALL = ScenarioConfig(num_jobs=120, num_nodes=32, seed=21)


@pytest.fixture(scope="module")
def fig1():
    return figure1(base=SMALL, x_values=(0.3, 1.0))


class TestStructure:
    def test_four_panels_with_labels(self, fig1):
        assert [p.label for p in fig1.panels] == ["a", "b", "c", "d"]

    def test_panel_metrics(self, fig1):
        assert fig1.panel("a").metric == FULFILLED
        assert fig1.panel("b").metric == FULFILLED
        assert fig1.panel("c").metric == SLOWDOWN
        assert fig1.panel("d").metric == SLOWDOWN

    def test_series_cover_paper_policies(self, fig1):
        for panel in fig1.panels:
            assert set(panel.series) == set(PAPER_POLICIES)
            for series in panel.series.values():
                assert len(series) == len(panel.x_values)

    def test_panel_lookup_error(self, fig1):
        with pytest.raises(KeyError):
            fig1.panel("z")

    def test_render_contains_all_panels(self, fig1):
        text = fig1.render()
        assert "Figure 1" in text
        for label in "abcd":
            assert f"({label})" in text

    def test_percentages_in_range(self, fig1):
        for label in ("a", "b"):
            for series in fig1.panel(label).series.values():
                assert all(0.0 <= v <= 100.0 for v in series)

    def test_slowdowns_at_least_zero(self, fig1):
        for label in ("c", "d"):
            for series in fig1.panel(label).series.values():
                assert all(v >= 0.0 for v in series)


class TestQualitativeShapes:
    def test_accurate_panel_libra_equals_librarisk(self, fig1):
        """Paper Fig. 1(a)/(c): under accurate estimates LibraRisk
        coincides with Libra."""
        a = fig1.panel("a").series
        assert a["libra"] == pytest.approx(a["librarisk"])
        c = fig1.panel("c").series
        assert c["libra"] == pytest.approx(c["librarisk"])

    def test_trace_panel_librarisk_beats_libra(self, fig1):
        b = fig1.panel("b").series
        assert all(r >= l for r, l in zip(b["librarisk"], b["libra"]))

    def test_edf_slowdown_lowest(self, fig1):
        for label in ("c", "d"):
            s = fig1.panel(label).series
            for policy in ("libra", "librarisk"):
                assert all(e <= o for e, o in zip(s["edf"], s[policy]))


class TestOtherFigures:
    def test_figure2_sweeps_ratio(self):
        fig = figure2(base=SMALL, x_values=(2.0, 8.0), policies=("libra",))
        assert fig.figure_id == "2"
        runs = fig.panel("a").series["libra"]
        assert len(runs) == 2

    def test_figure3_sweeps_urgency(self):
        fig = figure3(base=SMALL, x_values=(0.0, 100.0), policies=("libra",))
        assert fig.figure_id == "3"
        assert fig.panel("b").x_label == "% of high urgency jobs"

    def test_figure4_panels_split_by_urgency(self):
        fig = figure4(base=SMALL, x_values=(0.0, 100.0), policies=("librarisk",))
        assert "20% high urgency" in fig.panel("a").title
        assert "80% high urgency" in fig.panel("b").title

    def test_figure4_zero_inaccuracy_matches_accurate_endpoint(self):
        # At 0 % inaccuracy the estimate equals the runtime, so the
        # inaccuracy sweep's first point equals an accurate-mode run.
        from repro.experiments.runner import run_scenario

        fig = figure4(base=SMALL, x_values=(0.0,), policies=("libra",))
        direct = run_scenario(
            SMALL.replace(policy="libra", estimate_mode="accurate")
        ).metrics.pct_deadlines_fulfilled
        assert fig.panel("a").series["libra"][0] == pytest.approx(direct)
