"""Tests for experiment artefact serialisation."""


from repro.experiments.config import ScenarioConfig
from repro.experiments.serialize import (
    config_from_dict,
    config_to_dict,
    figure_from_dict,
    figure_to_dict,
    load_figure,
    load_figures,
    save_figure,
    save_figures,
)
from tests.test_experiments.test_validation import paper_like_figure


class TestConfigRoundTrip:
    def test_round_trip_preserves_all_fields(self):
        cfg = ScenarioConfig(policy="libra", num_jobs=77, seed=9,
                             estimate_mode="inaccuracy", inaccuracy_pct=30.0)
        back = config_from_dict(config_to_dict(cfg))
        assert back == cfg

    def test_dict_is_json_safe(self):
        import json

        json.dumps(config_to_dict(ScenarioConfig()))


class TestFigureRoundTrip:
    def test_dict_round_trip(self):
        fig = paper_like_figure("3")
        back = figure_from_dict(figure_to_dict(fig))
        assert back.figure_id == fig.figure_id
        assert back.panel("b").series == fig.panel("b").series
        assert back.panel("a").x_values == fig.panel("a").x_values

    def test_file_round_trip(self, tmp_path):
        fig = paper_like_figure("2")
        path = save_figure(fig, tmp_path / "fig2.json")
        assert path.exists()
        back = load_figure(path)
        assert back.panel("d").series == fig.panel("d").series

    def test_save_and_load_figure_set(self, tmp_path):
        figures = {"2": paper_like_figure("2"), "3": paper_like_figure("3")}
        paths = save_figures(figures, tmp_path / "out")
        assert len(paths) == 2
        back = load_figures(tmp_path / "out")
        assert set(back) == {"2", "3"}

    def test_validation_runs_on_deserialized_figure(self, tmp_path):
        from repro.experiments.validation import validate_figure

        fig = paper_like_figure("3")
        save_figure(fig, tmp_path / "f.json")
        report = validate_figure(load_figure(tmp_path / "f.json"))
        assert report.all_passed
