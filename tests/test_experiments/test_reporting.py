"""Tests for ASCII/CSV reporting."""


from repro.experiments.reporting import metrics_table, render_table, series_table, to_csv


class TestRenderTable:
    def test_aligned_columns(self):
        out = render_table(["name", "value"], [["a", 1.5], ["long-name", 22.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert len(set(len(l) for l in lines)) == 1  # equal widths

    def test_float_formatting(self):
        out = render_table(["v"], [[1.23456]])
        assert "1.23" in out
        out = render_table(["v"], [[1.23456]], float_fmt="{:.4f}")
        assert "1.2346" in out

    def test_non_float_values_passed_through(self):
        out = render_table(["a", "b"], [[True, "text"]])
        assert "True" in out and "text" in out


class TestSeriesTable:
    def test_one_row_per_x(self):
        out = series_table("x", [1, 2, 3], {"edf": [10.0, 20.0, 30.0]})
        assert len(out.splitlines()) == 5

    def test_policy_columns(self):
        out = series_table("x", [1], {"edf": [1.0], "libra": [2.0]})
        header = out.splitlines()[0]
        assert "edf" in header and "libra" in header


class TestCsv:
    def test_round_trippable(self):
        csv = to_csv("x", [0.1, 0.2], {"edf": [50.0, 60.0], "libra": [55.0, 65.0]})
        lines = csv.strip().splitlines()
        assert lines[0] == "x,edf,libra"
        assert lines[1].split(",")[0] == "0.1"
        assert float(lines[2].split(",")[2]) == 65.0


class TestMetricsTable:
    def test_uses_scenario_results(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scenario

        cfg = ScenarioConfig(num_jobs=40, num_nodes=8, policy="libra")
        out = metrics_table({"libra": run_scenario(cfg)}, ("pct_deadlines_fulfilled",))
        assert "libra" in out
        assert "pct_deadlines_fulfilled" in out
