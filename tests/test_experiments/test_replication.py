"""Tests for multi-seed replication."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.replication import (
    compare_replicated,
    replicate,
    replicate_policies,
)

SMALL = ScenarioConfig(num_jobs=100, num_nodes=32)
SEEDS = (1, 2, 3)


class TestReplicate:
    def test_one_result_per_seed(self):
        rep = replicate(SMALL, SEEDS)
        assert rep.seeds == SEEDS
        assert len(rep.results) == 3
        assert [r.config.seed for r in rep.results] == list(SEEDS)

    def test_metric_extraction(self):
        rep = replicate(SMALL, SEEDS)
        vals = rep.metric("pct_deadlines_fulfilled")
        assert len(vals) == 3
        assert all(0.0 <= v <= 100.0 for v in vals)

    def test_summary(self):
        rep = replicate(SMALL, SEEDS)
        s = rep.summary("pct_deadlines_fulfilled")
        assert s.n == 3
        assert s.low <= s.mean <= s.high

    def test_seeds_vary_outcomes(self):
        rep = replicate(SMALL, SEEDS)
        vals = rep.metric("pct_deadlines_fulfilled")
        assert len(set(vals)) > 1

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(SMALL, [])


class TestReplicatePolicies:
    @pytest.fixture(scope="class")
    def reps(self):
        return replicate_policies(SMALL, ["libra", "librarisk"], SEEDS)

    def test_matched_seeds(self, reps):
        assert reps["libra"].seeds == reps["librarisk"].seeds

    def test_paired_comparison(self, reps):
        diff = compare_replicated(reps["librarisk"], reps["libra"])
        assert diff.n == 3
        # Under trace estimates LibraRisk wins on every seed.
        assert diff.low > 0.0

    def test_mismatched_seeds_rejected(self, reps):
        other = replicate(SMALL.replace(policy="libra"), (7, 8, 9))
        with pytest.raises(ValueError, match="seed lists differ"):
            compare_replicated(reps["librarisk"], other)
