"""Tests for ScenarioConfig."""

import pytest

from repro.cluster.share import ShareParams
from repro.experiments.config import ScenarioConfig


class TestValidation:
    def test_defaults_are_paper_defaults(self):
        cfg = ScenarioConfig()
        assert cfg.num_jobs == 3000
        assert cfg.num_nodes == 128
        assert cfg.rating == 168.0
        assert cfg.high_urgency_fraction == 0.20
        assert cfg.deadline_ratio == 4.0
        assert cfg.arrival_delay_factor == 1.0
        assert cfg.estimate_mode == "trace"

    @pytest.mark.parametrize("kwargs", [
        {"policy": "unknown"},
        {"num_nodes": 0},
        {"num_jobs": 0},
        {"estimate_mode": "psychic"},
        {"arrival_delay_factor": 0.0},
        {"high_urgency_fraction": 1.5},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)


class TestBuilders:
    def test_share_params(self):
        cfg = ScenarioConfig(overrun_floor_share=0.1, redistribute_spare=True)
        assert cfg.share_params() == ShareParams(
            overrun_floor_share=0.1, redistribute_spare=True
        )

    def test_deadline_model(self):
        cfg = ScenarioConfig(high_urgency_fraction=0.5, deadline_ratio=6.0)
        model = cfg.deadline_model()
        assert model.high_urgency_fraction == 0.5
        assert model.ratio == 6.0

    def test_workload_spec(self):
        cfg = ScenarioConfig(estimate_mode="inaccuracy", inaccuracy_pct=40.0,
                             arrival_delay_factor=0.5)
        spec = cfg.workload_spec()
        assert spec.estimate_mode == "inaccuracy"
        assert spec.inaccuracy_pct == 40.0
        assert spec.arrival_delay_factor == 0.5

    def test_synthetic_model_caps_procs_to_cluster(self):
        cfg = ScenarioConfig(num_nodes=16)
        model = cfg.synthetic_model()
        assert all(c <= 16 for c in model.proc_choices)
        assert model.max_procs == 16

    def test_replace(self):
        cfg = ScenarioConfig()
        other = cfg.replace(policy="edf", seed=7)
        assert other.policy == "edf"
        assert other.seed == 7
        assert cfg.policy == "librarisk"  # original untouched

    def test_label_mentions_policy_and_mode(self):
        cfg = ScenarioConfig(policy="libra", estimate_mode="accurate")
        label = cfg.label()
        assert "libra" in label and "accurate" in label

    def test_label_includes_kwargs_and_inaccuracy(self):
        cfg = ScenarioConfig(
            policy="librarisk", policy_kwargs={"node_order": "index"},
            estimate_mode="inaccuracy", inaccuracy_pct=60.0,
        )
        label = cfg.label()
        assert "node_order=index" in label
        assert "60" in label
