"""Tests for the EXPERIMENTS.md generator."""


from repro.experiments.report import experiments_markdown, figure_section
from tests.test_experiments.test_validation import paper_like_figure


class TestFigureSection:
    def test_contains_claims_table_and_panels(self):
        text = figure_section(paper_like_figure("3"))
        assert "## Figure 3" in text
        assert "| Claim | Paper source | Holds? |" in text
        assert "### Panel (a)" in text
        assert "### Panel (d)" in text
        assert "claims hold." in text

    def test_passing_claims_marked(self):
        text = figure_section(paper_like_figure("3"))
        assert "✅" in text


class TestExperimentsMarkdown:
    def test_full_document(self):
        figures = {"3": paper_like_figure("3")}
        stats = {"num_jobs": 3000.0, "mean_runtime_h": 2.7}
        text = experiments_markdown(figures, trace_stats=stats)
        assert text.startswith("# EXPERIMENTS")
        assert "Workload statistics" in text
        assert "| mean_runtime_h | 2.700 |" in text
        assert "## Figure 3" in text
        assert "3000 jobs on 128 nodes" in text

    def test_custom_preamble(self):
        text = experiments_markdown({}, preamble="CUSTOM TEXT")
        assert "CUSTOM TEXT" in text

    def test_no_stats_section_when_absent(self):
        text = experiments_markdown({"3": paper_like_figure("3")})
        assert "Workload statistics" not in text
