"""Tests for the paper-claims validator.

Runs the validator against (a) synthetic figure data crafted to match
or violate the paper shapes, and (b) small regenerated figures.
"""


from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import FULFILLED, SLOWDOWN, FigureResult, Panel, figure3
from repro.experiments.validation import (
    ClaimResult,
    ValidationReport,
    figure3_claims,
    overview_claims,
    validate_figure,
)


def make_figure(fid, a, b, c, d, x=(0.0, 50.0, 100.0)):
    """Craft a FigureResult from explicit per-policy series."""
    panels = (
        Panel("a", "fulfilled accurate", "x", FULFILLED, tuple(x), a),
        Panel("b", "fulfilled trace", "x", FULFILLED, tuple(x), b),
        Panel("c", "slowdown accurate", "x", SLOWDOWN, tuple(x), c),
        Panel("d", "slowdown trace", "x", SLOWDOWN, tuple(x), d),
    )
    return FigureResult(figure_id=fid, title="synthetic", panels=panels,
                        base=ScenarioConfig())


def paper_like_figure(fid="3"):
    """Series exhibiting exactly the paper's §5 shapes."""
    a = {"edf": [60, 55, 50], "libra": [95, 92, 88], "librarisk": [95, 92, 88]}
    b = {"edf": [50, 40, 30], "libra": [55, 45, 35], "librarisk": [80, 82, 84]}
    c = {"edf": [1.5, 1.4, 1.3], "libra": [7.0, 6.0, 5.0], "librarisk": [7.0, 6.0, 5.0]}
    d = {"edf": [1.3, 1.2, 1.1], "libra": [3.3, 3.0, 2.8], "librarisk": [2.7, 2.4, 2.2]}
    return make_figure(fid, a, b, c, d)


class TestOverviewClaims:
    def test_all_pass_on_paper_shapes(self):
        claims = overview_claims(paper_like_figure())
        assert all(c.passed for c in claims), [c.render() for c in claims if not c.passed]

    def test_detects_librarisk_regression(self):
        fig = paper_like_figure()
        # Sabotage: LibraRisk no better than Libra under trace estimates.
        broken = {**fig.panel("b").series, "librarisk": [55, 45, 35]}
        bad = make_figure("3", fig.panel("a").series, broken,
                          fig.panel("c").series, fig.panel("d").series)
        claims = {c.claim_id: c for c in overview_claims(bad)}
        assert not claims["F3.librarisk-beats-libra-trace"].passed

    def test_detects_slowdown_divergence_accurate(self):
        fig = paper_like_figure()
        broken_c = {**fig.panel("c").series, "librarisk": [9.0, 8.0, 7.0]}
        bad = make_figure("3", fig.panel("a").series, fig.panel("b").series,
                          broken_c, fig.panel("d").series)
        claims = {c.claim_id: c for c in overview_claims(bad)}
        assert not claims["F3.same-slowdown-accurate"].passed

    def test_detects_edf_slowdown_violation(self):
        fig = paper_like_figure()
        broken_c = {**fig.panel("c").series, "edf": [10.0, 10.0, 10.0]}
        bad = make_figure("3", fig.panel("a").series, fig.panel("b").series,
                          broken_c, fig.panel("d").series)
        claims = {c.claim_id: c for c in overview_claims(bad)}
        assert not claims["F3.edf-lowest-slowdown"].passed


class TestFigure3Claims:
    def test_pass_on_paper_shapes(self):
        claims = figure3_claims(paper_like_figure())
        assert all(c.passed for c in claims)

    def test_detects_librarisk_collapse_with_urgency(self):
        fig = paper_like_figure()
        broken_b = {**fig.panel("b").series, "librarisk": [80, 60, 40]}
        bad = make_figure("3", fig.panel("a").series, broken_b,
                          fig.panel("c").series, fig.panel("d").series)
        claims = {c.claim_id: c for c in figure3_claims(bad)}
        assert not claims["F3.librarisk-holds-up-under-urgency"].passed


class TestValidationReport:
    def test_counts_and_render(self):
        claims = (
            ClaimResult("a", "§5", "x", True, "ok"),
            ClaimResult("b", "§5", "y", False, "bad"),
        )
        report = ValidationReport(claims=claims)
        assert report.passed == 1
        assert report.failed == 1
        assert not report.all_passed
        text = report.render()
        assert "[PASS] a" in text and "[FAIL] b" in text
        assert "1/2" in text


class TestEndToEndValidation:
    def test_figure3_claims_hold_at_moderate_scale(self):
        base = ScenarioConfig(num_jobs=600, num_nodes=128, seed=42)
        fig = figure3(base=base, x_values=(20.0, 80.0))
        report = validate_figure(fig)
        failed = [c.render() for c in report.claims if not c.passed]
        assert report.all_passed, failed
