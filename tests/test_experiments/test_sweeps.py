"""Tests for the generic sweep machinery."""


from repro.experiments.config import ScenarioConfig
from repro.experiments.sweeps import sweep

SMALL = ScenarioConfig(num_jobs=80, num_nodes=16, seed=3)


class TestSweep:
    def test_sweeps_config_field(self):
        result = sweep(SMALL, "arrival_delay_factor", [0.5, 1.0], ["libra"])
        assert result.parameter == "arrival_delay_factor"
        assert result.x_values == [0.5, 1.0]
        assert len(result.results["libra"]) == 2
        assert result.results["libra"][0].config.arrival_delay_factor == 0.5

    def test_multiple_policies(self):
        result = sweep(SMALL, "arrival_delay_factor", [1.0], ["edf", "libra"])
        assert set(result.results) == {"edf", "libra"}

    def test_custom_transform(self):
        def set_urgency(cfg, pct):
            return cfg.replace(high_urgency_fraction=pct / 100.0)

        result = sweep(SMALL, "urgency_pct", [0.0, 50.0], ["libra"], transform=set_urgency)
        assert result.results["libra"][1].config.high_urgency_fraction == 0.5

    def test_series_extraction(self):
        result = sweep(SMALL, "arrival_delay_factor", [0.5, 1.0], ["edf", "libra"])
        series = result.series("pct_deadlines_fulfilled")
        assert set(series) == {"edf", "libra"}
        assert len(series["edf"]) == 2
        assert all(0.0 <= v <= 100.0 for v in series["edf"])

    def test_policy_kwargs_label(self):
        result = sweep(
            SMALL, "arrival_delay_factor", [1.0],
            [("librarisk", {"node_order": "index"})],
        )
        assert list(result.results) == ["librarisk:node_order=index"]

    def test_best_policy_at(self):
        result = sweep(SMALL, "arrival_delay_factor", [1.0], ["edf", "librarisk"])
        best = result.best_policy_at("pct_deadlines_fulfilled", 0)
        assert best in ("edf", "librarisk")
        worst = result.best_policy_at("avg_slowdown", 0, higher_is_better=False)
        assert worst in ("edf", "librarisk")

    def test_progress_callback_called(self):
        seen = []
        sweep(SMALL, "arrival_delay_factor", [0.5, 1.0], ["libra"],
              progress=seen.append)
        assert len(seen) == 2
        assert "arrival_delay_factor=0.5" in seen[0]
