"""Tests for parallel scenario execution."""


from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import default_processes, run_matrix, run_scenarios
from repro.experiments.sweeps import sweep

SMALL = ScenarioConfig(num_jobs=80, num_nodes=16, seed=3)


class TestRunScenarios:
    def test_parallel_equals_sequential(self):
        configs = [SMALL.replace(seed=s) for s in (1, 2, 3)]
        seq = run_scenarios(configs, processes=1)
        par = run_scenarios(configs, processes=3)
        assert [r.metrics for r in seq] == [r.metrics for r in par]

    def test_order_preserved(self):
        configs = [SMALL.replace(seed=s) for s in (5, 1, 9)]
        results = run_scenarios(configs, processes=2)
        assert [r.config.seed for r in results] == [5, 1, 9]

    def test_single_config_runs_inline(self):
        results = run_scenarios([SMALL], processes=8)
        assert len(results) == 1

    def test_zero_configs(self):
        assert run_scenarios([], processes=4) == []

    def test_default_processes_positive(self):
        assert default_processes() >= 1


class TestRunMatrix:
    def test_policy_keys(self):
        results = run_matrix(SMALL, ["edf", "libra"], processes=2)
        assert set(results) == {"edf", "libra"}
        assert results["edf"].config.policy == "edf"


class TestParallelSweep:
    def test_sweep_results_identical_across_process_counts(self):
        kwargs = dict(
            base=SMALL,
            parameter="arrival_delay_factor",
            x_values=[0.5, 1.0],
            policies=["libra", "librarisk"],
        )
        seq = sweep(**kwargs, processes=1)
        par = sweep(**kwargs, processes=4)
        for metric in ("pct_deadlines_fulfilled", "avg_slowdown"):
            assert seq.series(metric) == par.series(metric)
