"""Tests for the scenario runner."""


from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import (
    build_scenario_jobs,
    load_base_records,
    run_policies,
    run_scenario,
)

SMALL = ScenarioConfig(num_jobs=150, num_nodes=32, seed=11)


class TestDeterminism:
    def test_same_config_same_metrics(self):
        a = run_scenario(SMALL)
        b = run_scenario(SMALL)
        assert a.metrics == b.metrics
        assert a.events == b.events
        assert a.horizon == b.horizon

    def test_different_seed_different_outcome(self):
        a = run_scenario(SMALL)
        b = run_scenario(SMALL.replace(seed=12))
        assert a.metrics != b.metrics

    def test_policies_see_identical_workloads(self):
        jobs_a = build_scenario_jobs(SMALL.replace(policy="edf"))
        jobs_b = build_scenario_jobs(SMALL.replace(policy="librarisk"))
        assert [(j.runtime, j.submit_time, j.deadline, j.numproc) for j in jobs_a] == \
               [(j.runtime, j.submit_time, j.deadline, j.numproc) for j in jobs_b]


class TestRunScenario:
    def test_result_fields(self):
        result = run_scenario(SMALL)
        assert result.config is SMALL
        assert result.events > 0
        assert result.horizon > 0
        assert result.elapsed >= 0
        assert 0.0 <= result.metrics.pct_deadlines_fulfilled <= 100.0

    def test_all_jobs_accounted_for(self):
        result = run_scenario(SMALL)
        m = result.metrics
        assert m.total_submitted == 150
        assert m.accepted + m.rejected == m.total_submitted
        assert m.completed + m.unfinished == m.accepted

    def test_prebuilt_jobs_accepted(self):
        jobs = build_scenario_jobs(SMALL)
        result = run_scenario(SMALL, jobs=jobs)
        assert result.metrics.total_submitted == 150

    def test_str_is_informative(self):
        out = str(run_scenario(SMALL))
        assert "fulfilled=" in out and "librarisk" in out


class TestRunPolicies:
    def test_runs_each_policy(self):
        results = run_policies(SMALL, ["edf", "libra", "librarisk"])
        assert set(results) == {"edf", "libra", "librarisk"}

    def test_kwargs_variant(self):
        results = run_policies(SMALL, [("librarisk", {"node_order": "index"})])
        assert results["librarisk"].config.policy_kwargs == {"node_order": "index"}

    def test_duplicate_names_suffixed(self):
        results = run_policies(
            SMALL,
            [("librarisk", {}), ("librarisk", {"suitability": "no-delay"})],
        )
        assert set(results) == {"librarisk", "librarisk#2"}


class TestLoadBaseRecords:
    def test_synthetic_by_default(self):
        records = load_base_records(SMALL)
        assert len(records) == 150

    def test_real_trace_when_path_given(self, tmp_path):
        from repro.workload.swf import write_swf_file
        from repro.workload.synthetic import SDSCSP2Model, generate_sdsc_like_records
        from repro.sim.rng import RngStreams

        trace = tmp_path / "trace.swf"
        records = generate_sdsc_like_records(SDSCSP2Model(num_jobs=300), RngStreams(seed=5))
        write_swf_file(trace, records)

        cfg = SMALL.replace(trace_path=str(trace), num_jobs=100)
        loaded = load_base_records(cfg)
        assert len(loaded) == 100  # tail subset
        assert loaded[0].submit_time == 0.0

    def test_trace_scenario_runs_end_to_end(self, tmp_path):
        from repro.workload.swf import write_swf_file
        from repro.workload.synthetic import SDSCSP2Model, generate_sdsc_like_records
        from repro.sim.rng import RngStreams

        trace = tmp_path / "trace.swf"
        write_swf_file(
            trace,
            generate_sdsc_like_records(SDSCSP2Model(num_jobs=200), RngStreams(seed=5)),
        )
        cfg = SMALL.replace(trace_path=str(trace), num_jobs=120)
        result = run_scenario(cfg)
        assert result.metrics.total_submitted == 120
