"""Tests for the extended all-policy comparison."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.extended import ALL_POLICIES, extended_comparison

SMALL = ScenarioConfig(num_jobs=150, num_nodes=32, seed=5)


@pytest.fixture(scope="module")
def comparison():
    return extended_comparison(SMALL)


class TestExtendedComparison:
    def test_all_policies_present_in_both_modes(self, comparison):
        expected = {p if isinstance(p, str) else p[0] for p in ALL_POLICIES}
        assert set(comparison.accurate) == expected
        assert set(comparison.trace) == expected

    def test_librarisk_wins_trace_mode(self, comparison):
        assert comparison.winner("trace") == "librarisk"

    def test_render_contains_both_tables(self, comparison):
        text = comparison.render()
        assert "accurate estimates" in text
        assert "trace estimates" in text
        assert "conservative" in text

    def test_winner_by_other_metric(self, comparison):
        # Space-shared policies run jobs at full speed: one of them has
        # the best slowdown.
        best_slowdown = min(
            comparison.trace,
            key=lambda k: comparison.trace[k].metrics.avg_slowdown or 1e9,
        )
        assert best_slowdown not in ("libra", "librarisk")

    def test_paired_workloads_across_policies(self, comparison):
        totals = {r.metrics.total_submitted for r in comparison.trace.values()}
        assert totals == {150}
