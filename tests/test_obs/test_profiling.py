"""Tests for the profiling layer and the shared logging configuration."""

import io
import logging

from repro.obs.log import configure_logging, get_logger, parse_level
from repro.obs.profiling import Profiler


class TestProfiler:
    def test_phase_accumulates_wall_time(self):
        prof = Profiler()
        with prof.phase("run"):
            pass
        with prof.phase("run"):
            pass
        assert prof.phase_wall["run"] >= 0.0
        assert set(prof.phase_wall) == {"run"}

    def test_heap_depth_stats(self):
        prof = Profiler()
        for depth in (3, 1, 5):
            prof.sample_heap_depth(depth)
        d = prof.heap_depth.as_dict()
        assert d == {"count": 3, "min": 1.0, "mean": 3.0, "max": 5.0}

    def test_events_per_sec_from_run_bounds(self):
        prof = Profiler()
        prof.phase_wall["run"] = 2.0
        prof.note_run_bounds(10, 110)
        assert prof.run_events == 100
        assert prof.events_per_sec == 50.0

    def test_wrap_admission_times_instance_only(self):
        class FakePolicy:
            name = "fake"

            def __init__(self):
                self.calls = 0

            def on_job_submitted(self, job, now):
                self.calls += 1

        policy = FakePolicy()
        other = FakePolicy()
        prof = Profiler()
        prof.wrap_admission(policy)
        policy.on_job_submitted(None, 0.0)
        policy.on_job_submitted(None, 1.0)
        assert policy.calls == 2
        assert prof.admission_calls["fake"] == 2
        assert prof.admission_wall["fake"] >= 0.0
        # The class and other instances are untouched.
        other.on_job_submitted(None, 0.0)
        assert prof.admission_calls["fake"] == 2

    def test_render_mentions_all_sections(self):
        prof = Profiler()
        with prof.phase("run"):
            prof.sample_heap_depth(4)
        prof.note_run_bounds(0, 7)
        text = prof.render()
        assert "events/s" in text
        assert "heap depth" in text


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("obs.session").name == "repro.obs.session"
        assert get_logger("repro.sim").name == "repro.sim"
        assert get_logger().name == "repro"

    def test_parse_level(self):
        assert parse_level("debug") == logging.DEBUG
        assert parse_level(logging.INFO) == logging.INFO

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        root = configure_logging("info", stream=stream)
        configure_logging("info", stream=stream)
        assert len(root.handlers) == 1
        get_logger("obs.test").info("hello world")
        out = stream.getvalue()
        assert out.count("hello world") == 1
        assert "repro.obs.test INFO" in out

    def test_level_threshold_applies(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        get_logger("obs.test").info("quiet")
        assert stream.getvalue() == ""
        # Leave the logger quiet for other tests.
        configure_logging("warning")
