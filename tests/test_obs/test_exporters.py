"""Tests for the JSON-lines, Prometheus and report exporters."""

import io

import pytest

from repro.obs.exporters import (
    jsonl_line,
    prometheus_text,
    read_jsonl,
    run_report,
    write_jsonl,
)
from repro.obs.inspect import render_inspection, summarize
from repro.obs.metrics import MetricsRegistry


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "r.jsonl"
        records = [{"type": "meta", "seed": 1}, {"type": "decision", "job": 2}]
        assert write_jsonl(str(path), records) == 2
        assert read_jsonl(str(path)) == records

    def test_canonical_line_is_sorted_and_compact(self):
        assert jsonl_line({"b": 1, "a": [1.5, "x"]}) == '{"a":[1.5,"x"],"b":1}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            jsonl_line({"v": float("nan")})

    def test_read_skips_blank_lines(self):
        fp = io.StringIO('{"a":1}\n\n{"b":2}\n')
        assert read_jsonl(fp) == [{"a": 1}, {"b": 2}]

    def test_read_reports_bad_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok":1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(str(path))


class TestPrometheus:
    def test_counter_gauge_rendering(self):
        reg = MetricsRegistry()
        reg.counter("hits", "Hits", policy="libra").inc(3)
        reg.gauge("depth").set(7)
        text = prometheus_text(reg)
        assert "# TYPE hits counter" in text
        assert 'hits{policy="libra"} 3' in text
        assert "depth 7" in text
        assert text.endswith("\n")

    def test_histogram_rendering(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(20.0)
        text = prometheus_text(reg)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 20.5" in text
        assert "lat_count 2" in text

    def test_type_header_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("d", outcome="a").inc()
        reg.counter("d", outcome="b").inc()
        text = prometheus_text(reg)
        assert text.count("# TYPE d counter") == 1


def _fake_run(policy="libra", with_profile=False):
    records = [
        {"type": "meta", "schema": 1, "scenario": f"{policy} est=trace",
         "policy": policy, "seed": 42, "num_jobs": 3, "num_nodes": 2},
        {"type": "span", "name": "run", "t0": 0.0, "t1": 100.0, "events": 9},
        {"type": "transition", "t": 0.0, "job": 1, "to": "submitted"},
        {"type": "decision", "t": 0.0, "job": 1, "policy": policy,
         "outcome": "accepted", "reason": "started on 1 node(s)"},
        {"type": "decision", "t": 1.0, "job": 2, "policy": policy,
         "outcome": "rejected", "reason": "no capacity"},
        {"type": "metrics", "values": {"pct_deadlines_fulfilled": 50.0,
                                       "acceptance_pct": 50.0}},
        {"type": "registry", "metrics": [
            {"name": "sim_events_total", "kind": "counter", "labels": {},
             "value": 9},
        ]},
    ]
    if with_profile:
        records.append({"type": "profile", "events": 9, "events_per_sec": 900.0})
    return records


class TestRunReport:
    def test_single_run_summary(self):
        text = run_report(_fake_run())
        assert "run 1/1" in text
        assert "1 accepted, 1 rejected" in text
        assert "no capacity" in text
        assert "pct_deadlines_fulfilled=50" in text

    def test_multi_run_split_on_meta(self):
        text = run_report(_fake_run("libra") + _fake_run("edf"))
        assert "run 1/2" in text and "run 2/2" in text

    def test_empty_stream(self):
        assert "empty" in run_report([])


class TestInspect:
    def test_summarize(self):
        s = summarize(_fake_run(with_profile=True))
        assert s.runs == 1
        assert s.decisions == 2 and s.accepted == 1 and s.rejected == 1
        assert s.reject_reasons == {"no capacity": 1}
        assert s.has_profile

    def test_render_prom_mode_uses_last_registry(self):
        text = render_inspection(_fake_run(), mode="prom")
        assert "sim_events_total 9" in text

    def test_render_decisions_mode(self):
        text = render_inspection(_fake_run(), mode="decisions")
        assert "accepted" in text and "rejected" in text
        filtered = render_inspection(_fake_run(), mode="decisions", policy="nope")
        assert filtered == ""

    def test_render_transitions_mode(self):
        text = render_inspection(_fake_run(), mode="transitions")
        assert "job=1" in text and "submitted" in text

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            render_inspection(_fake_run(), mode="nope")
