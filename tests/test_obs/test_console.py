"""Tests for the `repro top` console: parsing, views, rendering."""

import io
import json

from repro.obs import console
from repro.obs.console import (
    deterministic_view,
    metric_value,
    parse_prometheus,
    render_dashboard,
    run_top,
)

PROM_TEXT = """\
# HELP service_requests_total Requests handled
# TYPE service_requests_total counter
service_requests_total 42
service_request_seconds_count 42
service_request_seconds_sum 0.84
service_requests_shed_total 3
service_wal_fsyncs 17
engine_trace_events_dropped 0
engine_window_loss_ratio{policy="librarisk"} 0.25
engine_window_submitted{policy="librarisk"} 8
engine_cache_stat{stat="suitability_hits"} 10
engine_cache_stat{stat="suitability_misses"} 2
escaped{label="a\\"b"} 1
malformed-line
"""


def sample_snapshot() -> dict:
    return {
        "health": {
            "ok": True,
            "status": "ok",
            "t": 120.0,
            "slo": {
                "deadline_miss_objective": 0.05,
                "deadline_miss_ratio": 0.01,
                "burn_rate": 0.2,
            },
            "wal": {"enabled": True, "appended_lsn": 9, "applied_lsn": 9,
                    "lag": 0},
            "backpressure": {"inflight": 1, "max_inflight": 64,
                             "shed_total": 3, "draining": False},
        },
        "stats": {
            "t": 120.0,
            "policy": "librarisk",
            "submitted": 8,
            "accepted": 6,
            "rejected": 2,
            "completed": 4,
            "failed": 0,
            "running": 1,
            "queued": 1,
            "acceptance_ratio": 0.75,
            "window": {
                "t": 120.0,
                "window_s": 3600.0,
                "policies": {
                    "librarisk": {
                        "window_s": 3600.0,
                        "submitted": 8.0,
                        "rejected": 2.0,
                        "loss_ratio": 0.25,
                        "reject_reasons": {"risk_too_high": 2.0},
                    }
                },
            },
            "cache": {"suitability_hits": 10, "suitability_misses": 2},
        },
        "metrics": parse_prometheus(PROM_TEXT),
    }


class TestParsePrometheus:
    def test_parses_plain_and_labelled_samples(self):
        metrics = parse_prometheus(PROM_TEXT)
        assert metrics["service_requests_total"][()] == 42.0
        labels = (("policy", "librarisk"),)
        assert metrics["engine_window_loss_ratio"][labels] == 0.25

    def test_skips_comments_and_malformed_lines(self):
        metrics = parse_prometheus(PROM_TEXT)
        assert "malformed-line" not in metrics
        assert not any(name.startswith("#") for name in metrics)

    def test_unescapes_label_values(self):
        metrics = parse_prometheus(PROM_TEXT)
        assert (("label", 'a"b'),) in metrics["escaped"]

    def test_metric_value_sums_label_subsets(self):
        metrics = parse_prometheus(PROM_TEXT)
        assert metric_value(metrics, "engine_cache_stat") == 12.0
        assert metric_value(
            metrics, "engine_cache_stat", stat="suitability_hits"
        ) == 10.0
        assert metric_value(metrics, "absent", default=-1.0) == -1.0


class TestDeterministicView:
    def test_keeps_engine_state_drops_wall_clock_series(self):
        view = deterministic_view(sample_snapshot())
        assert view["t"] == 120.0
        assert view["counts"]["submitted"] == 8
        assert view["window"]["policies"]["librarisk"]["loss_ratio"] == 0.25
        assert view["slo"]["burn_rate"] == 0.2
        assert view["wal"]["appended_lsn"] == 9
        blob = json.dumps(view)
        assert "latency" not in blob
        assert "requests_total" not in blob

    def test_is_json_stable(self):
        dump = lambda: json.dumps(  # noqa: E731
            deterministic_view(sample_snapshot()), sort_keys=True
        )
        assert dump() == dump()


class TestRenderDashboard:
    def test_plain_render_mentions_every_section(self):
        text = render_dashboard(sample_snapshot(), color=False)
        assert "policy=librarisk" in text
        assert "status=ok" in text
        assert "loss_ratio=0.250" in text
        assert "risk_too_high=2" in text
        assert "hit_rate=0.833" in text
        assert "appended_lsn=9" in text
        assert "burn_rate=0.200" in text
        assert "shed=3" in text
        assert "\x1b[" not in text

    def test_color_render_adds_ansi_and_clear(self):
        text = render_dashboard(sample_snapshot(), color=True, clear=True)
        assert text.startswith("\x1b[2J\x1b[H")
        assert "\x1b[32m" in text  # green status

    def test_degraded_status_is_not_green(self):
        snapshot = sample_snapshot()
        snapshot["health"]["status"] = "degraded"
        text = render_dashboard(snapshot, color=True, clear=False)
        assert "\x1b[33mdegraded\x1b[0m" in text


class TestRunTop:
    def test_once_json_prints_one_deterministic_line(self, monkeypatch):
        monkeypatch.setattr(
            console, "console_snapshot", lambda url, timeout=5.0: sample_snapshot()
        )
        out = io.StringIO()
        rc = run_top("http://x", once=True, json_out=True, stream=out)
        assert rc == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["policy"] == "librarisk"

    def test_iterations_bound_the_loop(self, monkeypatch):
        monkeypatch.setattr(
            console, "console_snapshot", lambda url, timeout=5.0: sample_snapshot()
        )
        out = io.StringIO()
        rc = run_top("http://x", interval=0.0, json_out=True,
                     stream=out, iterations=3)
        assert rc == 0
        assert len(out.getvalue().strip().splitlines()) == 3

    def test_unreachable_service_fails_cleanly(self, monkeypatch):
        def boom(url, timeout=5.0):
            raise OSError("connection refused")

        monkeypatch.setattr(console, "console_snapshot", boom)
        out = io.StringIO()
        rc = run_top("http://nowhere", once=True, stream=out)
        assert rc == 1
        assert "cannot poll" in out.getvalue()
