"""Tests for the constant-memory windowed telemetry primitives."""

import threading

import pytest

from repro.obs.windows import (
    MAX_REASONS,
    OVERFLOW_REASON,
    PolicyWindow,
    RingHistogram,
    WindowAggregator,
    WindowedCounter,
    window_percentile,
)


class TestWindowPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            window_percentile([], 50.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="0, 100"):
            window_percentile([1.0], 150.0)

    def test_single_value(self):
        assert window_percentile([7.0], 0.0) == 7.0
        assert window_percentile([7.0], 100.0) == 7.0

    def test_linear_interpolation(self):
        data = [0.0, 10.0]
        assert window_percentile(data, 50.0) == pytest.approx(5.0)
        assert window_percentile(data, 99.9) == pytest.approx(9.99)

    def test_monotone_in_q(self):
        data = sorted(float(i) for i in range(37))
        qs = [0.0, 50.0, 90.0, 99.0, 99.9, 100.0]
        values = [window_percentile(data, q) for q in qs]
        assert values == sorted(values)


class TestWindowedCounter:
    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            WindowedCounter(window=0.0)
        with pytest.raises(ValueError, match="buckets"):
            WindowedCounter(buckets=0)

    def test_counts_within_window(self):
        counter = WindowedCounter(window=60.0, buckets=6)
        for t in (0.0, 10.0, 20.0):
            counter.note(t)
        assert counter.total(20.0) == 3.0
        assert counter.rate(20.0) == pytest.approx(3.0 / 60.0)

    def test_old_events_slide_out(self):
        counter = WindowedCounter(window=60.0, buckets=6)
        counter.note(0.0)
        counter.note(5.0)
        # Reading far past the window must decay the count to zero.
        assert counter.total(0.0) == 2.0
        assert counter.total(500.0) == 0.0

    def test_huge_time_jump_zeroes_everything(self):
        counter = WindowedCounter(window=60.0, buckets=6)
        counter.note(1.0)
        counter.note(1e9)
        assert counter.total(1e9) == 1.0

    def test_stale_read_behind_cursor_is_harmless(self):
        counter = WindowedCounter(window=60.0, buckets=6)
        counter.note(100.0)
        # A reader with an older timestamp must not rewind the ring.
        assert counter.total(40.0) == 1.0
        assert counter.total(100.0) == 1.0

    def test_memory_is_constant(self):
        counter = WindowedCounter(window=10.0, buckets=5)
        for i in range(10_000):
            counter.note(float(i))
        assert len(counter._counts) == 5


class TestRingHistogram:
    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            RingHistogram(capacity=0)

    def test_empty_quantiles_are_zero(self):
        assert RingHistogram().quantiles() == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0,
        }

    def test_quantiles_ordering(self):
        hist = RingHistogram(capacity=100)
        for i in range(100):
            hist.observe(float(i))
        q = hist.quantiles()
        assert q["p50"] <= q["p90"] <= q["p99"] <= q["p999"] <= 99.0
        assert q["p50"] == pytest.approx(49.5)

    def test_eviction_bounds_memory(self):
        hist = RingHistogram(capacity=8)
        for i in range(100):
            hist.observe(float(i))
        assert len(hist) == 8
        assert hist.total_observed == 100
        assert hist.evicted == 92
        # Quantiles describe the retained suffix only.
        assert hist.quantiles()["p50"] >= 92.0


class TestPolicyWindow:
    def test_loss_ratio(self):
        win = PolicyWindow(window=100.0, buckets=10)
        win.note_decision(1.0, "accepted")
        win.note_decision(2.0, "rejected", "deadline_infeasible")
        win.note_decision(3.0, "rejected", "deadline_infeasible")
        assert win.loss_ratio(3.0) == pytest.approx(2.0 / 3.0)
        snap = win.snapshot(3.0)
        assert snap["submitted"] == 3.0
        assert snap["rejected"] == 2.0
        assert snap["reject_reasons"] == {"deadline_infeasible": 2.0}

    def test_idle_window_has_zero_loss(self):
        assert PolicyWindow().loss_ratio(0.0) == 0.0

    def test_unspecified_reason_gets_a_name(self):
        win = PolicyWindow(window=100.0, buckets=10)
        win.note_decision(1.0, "rejected", "")
        assert win.snapshot(1.0)["reject_reasons"] == {"<unspecified>": 1.0}

    def test_reason_cardinality_is_capped(self):
        win = PolicyWindow(window=1000.0, buckets=10)
        for i in range(MAX_REASONS + 20):
            win.note_decision(1.0, "rejected", f"reason-{i:03d}")
        snap = win.snapshot(1.0)
        assert len(snap["reject_reasons"]) == MAX_REASONS + 1
        assert snap["reject_reasons"][OVERFLOW_REASON] == 20.0

    def test_expired_reasons_drop_from_snapshot(self):
        win = PolicyWindow(window=10.0, buckets=5)
        win.note_decision(0.0, "rejected", "stale")
        assert win.snapshot(500.0)["reject_reasons"] == {}


class TestWindowAggregator:
    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            WindowAggregator(window=-1.0)
        with pytest.raises(ValueError, match="buckets"):
            WindowAggregator(buckets=0)

    def test_snapshot_shape(self):
        agg = WindowAggregator(window=100.0, buckets=10)
        agg.note_decision(1.0, "librarisk", "accepted")
        agg.note_decision(2.0, "librarisk", "rejected", "risk_too_high")
        snap = agg.snapshot(2.0)
        assert snap["t"] == 2.0
        assert snap["window_s"] == 100.0
        assert list(snap["policies"]) == ["librarisk"]
        assert snap["policies"]["librarisk"]["loss_ratio"] == pytest.approx(0.5)

    def test_replay_reproduces_live_state(self):
        class FakeDecision:
            def __init__(self, t, outcome, reason=""):
                self.t = t
                self.policy = "edf"
                self.outcome = outcome
                self.reason = reason

        decisions = [
            FakeDecision(1.0, "accepted"),
            FakeDecision(2.0, "rejected", "no_capacity"),
            FakeDecision(3.0, "accepted"),
        ]
        live = WindowAggregator(window=50.0, buckets=10)
        for d in decisions:
            live.note_decision(d.t, d.policy, d.outcome, d.reason)
        restored = WindowAggregator(window=50.0, buckets=10)
        restored.replay(decisions)
        assert restored.snapshot(3.0) == live.snapshot(3.0)

    def test_concurrent_notes_do_not_lose_counts(self):
        agg = WindowAggregator(window=1000.0, buckets=10)
        n_threads, per_thread = 8, 500

        def hammer():
            for i in range(per_thread):
                agg.note_decision(float(i % 100), "edf", "rejected", "race")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = agg.snapshot(100.0)["policies"]["edf"]
        assert snap["submitted"] == float(n_threads * per_thread)
        assert snap["rejected"] == float(n_threads * per_thread)

    def test_soak_memory_is_o_window_not_o_jobs(self):
        """100k decisions must not grow state beyond the window rings."""
        agg = WindowAggregator(window=3600.0, buckets=60)
        probes = []
        for i in range(100_000):
            outcome = "rejected" if i % 3 == 0 else "accepted"
            agg.note_decision(float(i), "librarisk", outcome,
                              f"reason-{i % 5}" if outcome == "rejected" else "")
            if i in (1_000, 50_000, 99_999):
                probes.append(agg.memory_items())
        # One policy, <= 5 distinct reasons: (2 + 5) * 60 cells max.
        assert max(probes) <= (2 + 5) * 60
        # Memory stopped growing long before the soak ended.
        assert probes[-1] == probes[-2]
