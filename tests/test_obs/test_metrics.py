"""Unit tests for the deterministic metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_cannot_decrease(self):
        c = MetricsRegistry().counter("hits")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")
        assert len(reg) == 1

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs", transition="accepted")
        b = reg.counter("jobs", transition="rejected")
        assert a is not b
        a.inc()
        assert reg.counter("jobs", transition="accepted").value == 1
        assert reg.counter("jobs", transition="rejected").value == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("d", policy="libra", outcome="ok")
        b = reg.counter("d", outcome="ok", policy="libra")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_max_keeps_running_maximum(self):
        g = MetricsRegistry().gauge("peak")
        g.max(3)
        g.max(1)
        g.max(7)
        assert g.value == 7


class TestHistogram:
    def test_observe_routes_to_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        # Cumulative prometheus-style counts, +Inf last.
        assert h.bucket_counts() == [
            (1.0, 1), (10.0, 2), (100.0, 3), (float("inf"), 4),
        ]

    def test_mean(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_bounds_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("bad", buckets=(5.0, 1.0))
        with pytest.raises(MetricError):
            reg.histogram("empty", buckets=())

    def test_reregistration_with_different_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            reg.histogram("lat", buckets=(1.0, 3.0))


class TestRegistry:
    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")
        with pytest.raises(MetricError):
            reg.histogram("x")

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        reg.counter("present")
        assert isinstance(reg.get("present"), Counter)
        assert len(reg) == 1

    def test_collect_is_sorted_and_registration_order_independent(self):
        reg1 = MetricsRegistry()
        reg1.counter("b").inc()
        reg1.gauge("a").set(2)
        reg2 = MetricsRegistry()
        reg2.gauge("a").set(2)
        reg2.counter("b").inc()
        assert reg1.collect() == reg2.collect()
        assert [m["name"] for m in reg1.collect()] == ["a", "b"]

    def test_collect_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c", "help", k="v").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        c, h = reg.collect()
        assert c == {"name": "c", "kind": "counter", "labels": {"k": "v"}, "value": 2}
        assert h["buckets"] == [[1.0, 1], ["+Inf", 1]]
        assert h["count"] == 1 and h["sum"] == 0.5
