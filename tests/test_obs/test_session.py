"""Integration tests for ObsSession: decision tracing, determinism,
zero overhead, and multi-run capture via RunSink."""


from repro.cluster.cluster import Cluster
from repro.cluster.rms import ResourceManagementSystem
from repro.cluster.share import ShareParams
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.obs.exporters import jsonl_line
from repro.obs.session import ObsSession, RunSink, active_sink
from repro.scheduling.registry import make_policy, policy_discipline
from repro.sim.kernel import Simulator
from repro.sim.trace import EventTrace
from tests.conftest import make_job


def run_observed(policy_name, jobs, num_nodes=4, profile=False, trace=None):
    """Tiny end-to-end observed simulation; returns (session, rms)."""
    sim = Simulator(trace=trace)
    cluster = Cluster.homogeneous(
        sim, num_nodes, rating=1.0,
        discipline=policy_discipline(policy_name),
        share_params=ShareParams(),
    )
    rms = ResourceManagementSystem(sim, cluster, make_policy(policy_name))
    session = ObsSession(profile=profile).attach(sim, rms, rms.policy)
    rms.submit_all(jobs)
    with session.span("run"):
        sim.run()
    session.finalize(sim=sim)
    return session, rms


def decisions(session, outcome=None):
    out = [r for r in session.records if r["type"] == "decision"]
    if outcome is not None:
        out = [r for r in out if r["outcome"] == outcome]
    return out


class TestAdmissionReasonRecording:
    """Every paper policy records accept/reject decisions with reasons."""

    def test_libra_rejection_reason(self):
        jobs = [
            make_job(runtime=50.0, deadline=100.0, job_id=1),
            make_job(runtime=50.0, estimate=300.0, deadline=100.0,
                     submit=1.0, job_id=2),
        ]
        session, rms = run_observed("libra", jobs, num_nodes=2)
        rejected = decisions(session, "rejected")
        assert len(rejected) == 1
        rec = rejected[0]
        assert rec["job"] == 2 and rec["policy"] == "libra"
        assert "Σ share > 1" in rec["reason"]
        assert rec["details"]["required"] == 1
        assert rec["details"]["online"] == 2
        accepted = decisions(session, "accepted")
        assert [r["job"] for r in accepted] == [1]
        assert accepted[0]["details"]["nodes"] == [0]

    def test_librarisk_rejection_reason_counts_nodes(self):
        # numproc 8 on a 4-node cluster: even all-empty nodes cannot
        # supply enough zero-risk hosts.
        jobs = [make_job(runtime=10.0, deadline=100.0, numproc=8, job_id=1)]
        session, _ = run_observed("librarisk", jobs, num_nodes=4)
        rec = decisions(session, "rejected")[0]
        assert rec["policy"] == "librarisk"
        assert "zero-risk" in rec["reason"]
        assert rec["details"] == {
            "suitable": 4, "required": 8, "online": 4, "suitability": "sigma",
        }

    def test_edf_dispatch_rejection_reason(self):
        jobs = [make_job(runtime=50.0, estimate=300.0, deadline=100.0, job_id=1)]
        session, rms = run_observed("edf", jobs, num_nodes=2)
        rec = decisions(session, "rejected")[0]
        assert rec["policy"] == "edf"
        assert "infeasible at dispatch" in rec["reason"]
        assert rec["details"]["estimated_runtime"] == 300.0

    def test_edf_accept_recorded_at_start(self):
        jobs = [make_job(runtime=50.0, deadline=200.0, job_id=1)]
        session, _ = run_observed("edf", jobs, num_nodes=2)
        accepted = decisions(session, "accepted")
        assert len(accepted) == 1
        assert accepted[0]["reason"].startswith("started on 1 node")

    def test_decision_counters_aggregate(self):
        jobs = [
            make_job(runtime=50.0, deadline=100.0, job_id=1),
            make_job(runtime=50.0, estimate=300.0, deadline=100.0,
                     submit=1.0, job_id=2),
        ]
        session, _ = run_observed("libra", jobs, num_nodes=2)
        reg = session.registry
        assert reg.get(
            "admission_decisions_total", policy="libra", outcome="accepted"
        ).value == 1
        assert reg.get(
            "admission_decisions_total", policy="libra", outcome="rejected"
        ).value == 1


class TestLifecycleRecording:
    def test_transitions_recorded_in_order(self):
        jobs = [make_job(runtime=50.0, deadline=200.0, job_id=1)]
        session, _ = run_observed("libra", jobs, num_nodes=1)
        transitions = [
            (r["job"], r["to"]) for r in session.records
            if r["type"] == "transition"
        ]
        assert transitions == [(1, "submitted"), (1, "accepted"), (1, "completed")]

    def test_slowdown_histogram_observed_on_completion(self):
        jobs = [make_job(runtime=50.0, deadline=200.0, job_id=1)]
        session, _ = run_observed("libra", jobs, num_nodes=1)
        hist = session.registry.get("job_slowdown")
        assert hist.count == 1

    def test_running_gauge_returns_to_zero(self):
        jobs = [make_job(runtime=50.0, deadline=200.0, job_id=i) for i in (1, 2)]
        session, _ = run_observed("libra", jobs, num_nodes=2)
        assert session.registry.get("jobs_running").value == 0
        assert session.registry.get("jobs_running_peak").value == 2


class TestDeterminism:
    def test_same_seed_same_scenario_byte_identical_export(self):
        config = ScenarioConfig(policy="librarisk", num_jobs=60, num_nodes=16)

        def export():
            session = ObsSession(scenario=config)
            run_scenario(config, obs=session)
            return "\n".join(jsonl_line(r) for r in session.records).encode()

        assert export() == export()

    def test_different_seed_differs(self):
        def export(seed):
            config = ScenarioConfig(policy="librarisk", num_jobs=60,
                                    num_nodes=16, seed=seed)
            session = ObsSession(scenario=config)
            run_scenario(config, obs=session)
            return "\n".join(jsonl_line(r) for r in session.records).encode()

        assert export(1) != export(2)


class TestZeroOverhead:
    """Observation must not perturb the simulation."""

    def _jobs(self):
        return [
            make_job(runtime=50.0, deadline=100.0, submit=float(i), job_id=i + 1)
            for i in range(8)
        ]

    def test_observed_run_fires_same_event_sequence(self):
        bare_trace = EventTrace()
        sim = Simulator(trace=bare_trace)
        cluster = Cluster.homogeneous(
            sim, 2, rating=1.0, discipline=policy_discipline("libra"),
            share_params=ShareParams(),
        )
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        rms.submit_all(self._jobs())
        sim.run()

        obs_trace = EventTrace()
        session, _ = run_observed("libra", self._jobs(), num_nodes=2,
                                  trace=obs_trace)
        assert [(r.time, r.priority, r.name) for r in obs_trace] == \
               [(r.time, r.priority, r.name) for r in bare_trace]

    def test_disabled_obs_attaches_nothing(self):
        config = ScenarioConfig(policy="libra", num_jobs=30, num_nodes=8)
        result = run_scenario(config)
        assert result.obs is None


class TestSpansAndProfile:
    def test_span_records_event_counts(self):
        jobs = [make_job(runtime=50.0, deadline=200.0, job_id=1)]
        session, _ = run_observed("libra", jobs, num_nodes=1)
        spans = [r for r in session.records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["run"]
        assert spans[0]["events"] > 0

    def test_profile_record_present_only_when_enabled(self):
        jobs = [make_job(runtime=50.0, deadline=200.0, job_id=1)]
        plain, _ = run_observed("libra", jobs, num_nodes=1)
        assert not any(r["type"] == "profile" for r in plain.records)
        profiled, _ = run_observed("libra", jobs.__class__(
            [make_job(runtime=50.0, deadline=200.0, job_id=1)]
        ), num_nodes=1, profile=True)
        profile = [r for r in profiled.records if r["type"] == "profile"]
        assert len(profile) == 1
        assert profile[0]["admission"]["libra"]["calls"] == 1
        assert profile[0]["heap_depth"]["count"] > 0

    def test_finalize_is_idempotent(self):
        jobs = [make_job(runtime=50.0, deadline=200.0, job_id=1)]
        session, _ = run_observed("libra", jobs, num_nodes=1)
        n = len(session.records)
        session.finalize()
        assert len(session.records) == n


class TestRunSink:
    def test_sink_captures_runs_and_writes_jsonl(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        config = ScenarioConfig(policy="libra", num_jobs=20, num_nodes=8)
        with RunSink(path=str(path)) as sink:
            run_scenario(config)
            run_scenario(config.replace(policy="librarisk"))
        assert sink.runs == 2
        from repro.obs.exporters import read_jsonl

        metas = [r for r in read_jsonl(str(path)) if r["type"] == "meta"]
        assert [m["policy"] for m in metas] == ["libra", "librarisk"]

    def test_sink_is_uninstalled_on_exit(self):
        assert active_sink() is None
        with RunSink() as sink:
            assert active_sink() is sink
        assert active_sink() is None

    def test_explicit_session_bypasses_sink(self):
        config = ScenarioConfig(policy="libra", num_jobs=20, num_nodes=8)
        with RunSink() as sink:
            session = ObsSession(scenario=config)
            run_scenario(config, obs=session)
        assert sink.runs == 0
        assert session.finalized
