"""Tests for deterministic trace-id minting and trace reconstruction."""

import pytest

from repro.obs.tracing import (
    SPAN_ID_WIDTH,
    TRACE_ID_WIDTH,
    build_trace,
    canonical_json,
    mint_span_id,
    mint_trace_id,
    render_trace,
    seed_from_config,
)
from repro.service.engine import AdmissionEngine, EngineConfig
from tests.conftest import make_job


def small_engine(**kwargs) -> AdmissionEngine:
    defaults = dict(policy="librarisk", num_nodes=4, rating=1.0)
    defaults.update(kwargs)
    return AdmissionEngine(EngineConfig(**defaults))


class TestMinting:
    def test_trace_id_is_deterministic(self):
        assert mint_trace_id(1, 2, 3) == mint_trace_id(1, 2, 3)
        assert len(mint_trace_id(1, 2, 3)) == TRACE_ID_WIDTH

    def test_trace_id_varies_with_every_input(self):
        base = mint_trace_id(1, 2, 3)
        assert mint_trace_id(9, 2, 3) != base
        assert mint_trace_id(1, 9, 3) != base
        assert mint_trace_id(1, 2, 9) != base

    def test_span_id_is_deterministic(self):
        sid = mint_span_id("abc", "admission")
        assert sid == mint_span_id("abc", "admission")
        assert len(sid) == SPAN_ID_WIDTH
        assert sid != mint_span_id("abc", "execute")

    def test_seed_ignores_key_order(self):
        assert seed_from_config({"a": 1, "b": 2}) == seed_from_config(
            {"b": 2, "a": 1}
        )

    def test_seed_varies_with_config(self):
        assert seed_from_config({"policy": "edf"}) != seed_from_config(
            {"policy": "libra"}
        )

    def test_engines_with_same_config_share_a_seed(self):
        assert small_engine().trace_seed == small_engine().trace_seed
        assert small_engine().trace_seed != small_engine(policy="edf").trace_seed


class TestBuildTrace:
    def test_unknown_job_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_trace(small_engine(), 42)

    def test_completed_job_has_full_span_tree(self):
        engine = small_engine()
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        engine.drain()
        trace = engine.trace(1)
        assert trace["trace_id"] == engine.trace_ids[1]
        assert trace["job_id"] == 1
        names = [span["name"] for span in trace["spans"]]
        assert names == ["submit", "admission", "queue.wait", "execute",
                         "completion"]
        # LibraRisk stretches execution toward the deadline (proportional
        # share), so the span covers [start, finish] in simulated time.
        execute = next(s for s in trace["spans"] if s["name"] == "execute")
        assert 10.0 <= execute["duration"] <= 100.0
        root = trace["root"]
        assert root["attrs"]["outcome"] == "accepted"
        assert root["duration"] == pytest.approx(execute["end"] - root["start"])

    def test_rejected_job_has_no_execution_spans(self):
        engine = small_engine()
        decision = engine.submit(
            make_job(numproc=9, deadline=50.0, job_id=1)
        )
        assert decision.outcome == "rejected"
        trace = engine.trace(1)
        names = [span["name"] for span in trace["spans"]]
        assert "execute" not in names
        assert "queue.wait" not in names
        admission = next(s for s in trace["spans"] if s["name"] == "admission")
        assert admission["attrs"]["outcome"] == "rejected"
        assert admission["attrs"]["reason"]

    def test_trace_ids_differ_across_jobs(self):
        engine = small_engine()
        engine.submit(make_job(runtime=5.0, deadline=100.0, job_id=1))
        engine.submit(make_job(runtime=5.0, deadline=100.0, job_id=2))
        assert engine.trace_ids[1] != engine.trace_ids[2]

    def test_identical_runs_mint_identical_traces(self):
        def run():
            engine = small_engine()
            for i in (1, 2, 3):
                engine.submit(make_job(runtime=10.0, deadline=200.0, job_id=i))
            engine.drain()
            return [render_trace(engine.trace(i), json_out=True)
                    for i in (1, 2, 3)]

        assert run() == run()

    def test_peek_matches_minted_id(self):
        engine = small_engine()
        peeked = engine.peek_trace_id(7)
        engine.submit(make_job(runtime=5.0, deadline=100.0, job_id=7))
        assert engine.trace_ids[7] == peeked

    def test_explicit_trace_id_wins_over_minting(self):
        engine = small_engine()
        engine.submit(
            make_job(runtime=5.0, deadline=100.0, job_id=1), trace="cafe" * 4
        )
        assert engine.trace_ids[1] == "cafe" * 4
        assert engine.trace(1)["trace_id"] == "cafe" * 4

    def test_telemetry_off_mints_nothing(self):
        engine = AdmissionEngine(
            EngineConfig(policy="librarisk", num_nodes=4, rating=1.0),
            telemetry=False,
        )
        engine.submit(make_job(runtime=5.0, deadline=100.0, job_id=1))
        assert engine.trace_ids == {}
        # The trace is still renderable via the seq-0 fallback mint.
        trace = engine.trace(1)
        assert trace["trace_id"] == mint_trace_id(engine.trace_seed, 0, 1)


class TestRender:
    def test_json_render_is_canonical(self):
        engine = small_engine()
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        engine.drain()
        text = render_trace(engine.trace(1), json_out=True)
        assert text == canonical_json(engine.trace(1))
        assert "\n" not in text

    def test_ascii_tree_lists_every_span(self):
        engine = small_engine()
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        engine.drain()
        trace = engine.trace(1)
        text = render_trace(trace)
        assert text.splitlines()[0].startswith(f"trace {trace['trace_id']}")
        for span in trace["spans"]:
            assert span["name"] in text
            assert span["span_id"] in text
        assert text.count("|--") == len(trace["spans"]) - 1
        assert text.count("`--") == 1
