"""Regression tests: the metrics registry is shared across service
handler threads and must tolerate concurrent updates and collection.

Before the registry grew its locks, this workload lost counter
increments (unsynchronized ``+=``) and could raise ``RuntimeError:
dictionary changed size during iteration`` when ``GET /metrics``
collected while a handler lazily created a labelled metric.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry


def _hammer(threads, target):
    workers = [threading.Thread(target=target, args=(i,)) for i in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()


def test_concurrent_counter_increments_are_not_lost():
    registry = MetricsRegistry()
    threads, per_thread = 8, 2000

    def work(_i):
        counter = registry.counter("requests_total", "reqs")
        for _ in range(per_thread):
            counter.inc()

    _hammer(threads, work)
    assert registry.counter("requests_total").value == threads * per_thread


def test_concurrent_histogram_observations_are_consistent():
    registry = MetricsRegistry()
    threads, per_thread = 8, 1000

    def work(_i):
        hist = registry.histogram("latency", "s", buckets=(0.5, 1.0))
        for _ in range(per_thread):
            hist.observe(0.25)

    _hammer(threads, work)
    hist = registry.histogram("latency", "s", buckets=(0.5, 1.0))
    assert hist.count == threads * per_thread
    assert hist.sum == 0.25 * threads * per_thread
    # Cumulative buckets must agree with the total count.
    assert hist.bucket_counts()[-1][1] == hist.count


def test_collect_during_concurrent_registration():
    registry = MetricsRegistry()
    stop = threading.Event()
    errors = []

    def create(i):
        for n in range(500):
            registry.counter("lazy_total", "lazy", worker=str(i), n=str(n)).inc()

    def scrape(_i):
        try:
            while not stop.is_set():
                registry.collect()
                for _metric in registry:
                    pass
        except RuntimeError as exc:  # pragma: no cover - the old failure mode
            errors.append(exc)

    scraper = threading.Thread(target=scrape, args=(0,))
    scraper.start()
    _hammer(4, create)
    stop.set()
    scraper.join()
    assert errors == []
    assert len(registry) == 4 * 500


def test_gauge_max_is_atomic_enough():
    registry = MetricsRegistry()

    def work(i):
        gauge = registry.gauge("peak", "peak")
        for v in range(1000):
            gauge.max(v + i * 1000)

    _hammer(4, work)
    assert registry.gauge("peak").value == 3999
