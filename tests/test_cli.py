"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestBasicCommands:
    def test_policies(self, capsys):
        code, out = run_cli(capsys, "policies")
        assert code == 0
        for name in ("edf", "libra", "librarisk"):
            assert name in out

    def test_trace_stats(self, capsys):
        code, out = run_cli(capsys, "trace-stats", "--jobs", "100")
        assert code == 0
        assert "mean_runtime_h" in out
        assert "synthetic" in out

    def test_run_single_scenario(self, capsys):
        code, out = run_cli(
            capsys, "run", "--policy", "libra", "--jobs", "60", "--nodes", "16"
        )
        assert code == 0
        assert "pct_deadlines_fulfilled" in out
        assert "simulated horizon" in out

    def test_compare(self, capsys):
        code, out = run_cli(capsys, "compare", "--jobs", "50", "--nodes", "16")
        assert code == 0
        assert "librarisk" in out and "edf" in out


class TestFigureCommands:
    def test_figure1_table(self, capsys):
        code, out = run_cli(
            capsys, "figure1", "--jobs", "60", "--nodes", "16",
            "--policies", "libra", "librarisk",
        )
        assert code == 0
        assert "Figure 1" in out
        assert "(a)" in out and "(d)" in out

    def test_figure_chart_mode(self, capsys):
        code, out = run_cli(
            capsys, "figure3", "--jobs", "60", "--nodes", "16",
            "--policies", "libra", "librarisk", "--chart",
        )
        assert code == 0
        assert "*=libra" in out and "o=librarisk" in out
        assert "+-" in out  # an axis was drawn

    def test_figure4_csv(self, capsys):
        code, out = run_cli(
            capsys, "figure4", "--jobs", "50", "--nodes", "16",
            "--policies", "libra", "--csv",
        )
        assert code == 0
        assert "# panel (a)" in out
        assert "% of inaccuracy,libra" in out

    def test_unknown_policy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure1", "--policies", "quantum"])

    def test_run_with_inaccuracy_mode(self, capsys):
        code, out = run_cli(
            capsys, "run", "--policy", "librarisk", "--jobs", "50", "--nodes", "16",
            "--estimate-mode", "inaccuracy", "--inaccuracy", "40",
        )
        assert code == 0

    def test_trace_stats_from_file(self, capsys, tmp_path):
        from repro.sim.rng import RngStreams
        from repro.workload.swf import write_swf_file
        from repro.workload.synthetic import SDSCSP2Model, generate_sdsc_like_records

        path = tmp_path / "t.swf"
        write_swf_file(
            path, generate_sdsc_like_records(SDSCSP2Model(num_jobs=80), RngStreams(seed=1))
        )
        code, out = run_cli(capsys, "trace-stats", "--trace", str(path), "--jobs", "50")
        assert code == 0
        assert str(path) in out


class TestValidateCommand:
    def test_validate_prints_claim_report(self, capsys):
        code, out = run_cli(
            capsys, "validate", "--jobs", "150", "--nodes", "64", "--figures", "4"
        )
        assert "paper claims hold" in out
        assert "F4." in out
        assert code in (0, 1)  # tiny scale may legitimately fail a claim


class TestReplicateCommand:
    def test_replicate_reports_ci_and_pairing(self, capsys):
        code, out = run_cli(
            capsys, "replicate", "--jobs", "80", "--nodes", "16",
            "--seeds", "1", "2", "--policies", "libra", "librarisk",
        )
        assert code == 0
        assert "±" in out
        assert "paired librarisk − libra" in out

    def test_replicate_without_pair_skips_comparison(self, capsys):
        code, out = run_cli(
            capsys, "replicate", "--jobs", "60", "--nodes", "16",
            "--seeds", "1", "--policies", "edf",
        )
        assert code == 0
        assert "paired" not in out


class TestSensitivityCommand:
    def test_sensitivity_table(self, capsys):
        code, out = run_cli(
            capsys, "sensitivity", "--jobs", "60", "--nodes", "16",
            "--policy", "libra",
        )
        assert code == 0
        assert "Sensitivity of libra" in out
        assert "most sensitive knob:" in out


class TestRobustnessCommand:
    def test_robustness_grid(self, capsys):
        code, out = run_cli(capsys, "robustness", "--jobs", "60", "--nodes", "16")
        assert code == 0
        assert "MTBF" in out
        assert "librarisk" in out


class TestParser:
    def test_missing_command_prints_usage(self, capsys):
        code, out = run_cli(capsys)
        assert code == 2
        assert "usage: repro" in out

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()


class TestObservabilityFlags:
    def test_run_metrics_out_and_profile(self, capsys, tmp_path):
        path = tmp_path / "m.jsonl"
        code, out = run_cli(
            capsys, "run", "--policy", "librarisk", "--jobs", "60", "--nodes", "16",
            "--metrics-out", str(path), "--profile",
        )
        assert code == 0
        assert f"wrote" in out and str(path) in out
        assert "-- profile" in out
        assert "events/s" in out

        from repro.obs.exporters import read_jsonl

        records = read_jsonl(str(path))
        kinds = {r["type"] for r in records}
        assert {"meta", "decision", "transition", "span",
                "metrics", "registry", "profile"} <= kinds
        rejected = [r for r in records if r["type"] == "decision"
                    and r["outcome"] == "rejected"]
        assert rejected and all(r.get("reason") for r in rejected)

    def test_run_prom_out(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        code, _ = run_cli(
            capsys, "run", "--policy", "libra", "--jobs", "40", "--nodes", "8",
            "--prom-out", str(path),
        )
        assert code == 0
        text = path.read_text()
        assert "# TYPE admission_decisions_total counter" in text
        assert 'policy="libra"' in text

    def test_figure_metrics_out_captures_every_run(self, capsys, tmp_path):
        path = tmp_path / "fig.jsonl"
        code, out = run_cli(
            capsys, "figure1", "--jobs", "40", "--nodes", "8",
            "--policies", "libra", "--metrics-out", str(path),
        )
        assert code == 0
        from repro.obs.exporters import read_jsonl

        metas = [r for r in read_jsonl(str(path)) if r["type"] == "meta"]
        # Two estimate modes × 10 arrival delay factors × 1 policy.
        assert len(metas) == 20
        assert "wrote metrics for 20 runs" in out

    def test_inspect_report(self, capsys, tmp_path):
        path = tmp_path / "m.jsonl"
        run_cli(
            capsys, "run", "--policy", "edf", "--jobs", "50", "--nodes", "8",
            "--metrics-out", str(path),
        )
        code, out = run_cli(capsys, "inspect", str(path))
        assert code == 0
        assert "admission:" in out
        assert "final metrics:" in out

    def test_inspect_prom_mode(self, capsys, tmp_path):
        path = tmp_path / "m.jsonl"
        run_cli(
            capsys, "run", "--policy", "libra", "--jobs", "40", "--nodes", "8",
            "--metrics-out", str(path),
        )
        code, out = run_cli(capsys, "inspect", str(path), "--mode", "prom")
        assert code == 0
        assert "sim_events_total" in out

    def test_inspect_decisions_mode_filters_policy(self, capsys, tmp_path):
        path = tmp_path / "m.jsonl"
        run_cli(
            capsys, "run", "--policy", "librarisk", "--jobs", "50", "--nodes", "8",
            "--metrics-out", str(path),
        )
        code, out = run_cli(
            capsys, "inspect", str(path), "--mode", "decisions",
            "--policy", "librarisk",
        )
        assert code == 0
        assert "librarisk" in out
        code, out = run_cli(
            capsys, "inspect", str(path), "--mode", "decisions", "--policy", "edf"
        )
        assert code == 0
        assert out.strip() == ""


class TestServiceCommands:
    def test_replay_in_process_prints_metrics(self, capsys, tmp_path):
        path = tmp_path / "replay.jsonl"
        code, out = run_cli(
            capsys, "replay", "--policy", "librarisk", "--jobs", "40",
            "--nodes", "8", "--metrics-out", str(path),
        )
        assert code == 0
        assert "replayed 40 jobs" in out
        assert "pct_deadlines_fulfilled" in out
        assert path.exists()

    def test_replay_matches_batch_run_metrics(self, capsys):
        code, replay_out = run_cli(
            capsys, "replay", "--policy", "libra", "--jobs", "50", "--nodes", "8",
        )
        assert code == 0
        code, run_out = run_cli(
            capsys, "run", "--policy", "libra", "--jobs", "50", "--nodes", "8",
        )
        assert code == 0
        # Both render the same metrics table rows.
        pick = [l for l in replay_out.splitlines() if "pct_deadlines_fulfilled" in l]
        assert pick and pick[0] in run_out

    def test_replay_against_dead_server_fails(self, capsys):
        code = main(["replay", "--url", "http://127.0.0.1:9", "--jobs", "10"])
        assert code == 1

    def test_inspect_decisions_json_lines(self, capsys, tmp_path):
        path = tmp_path / "m.jsonl"
        run_cli(
            capsys, "run", "--policy", "librarisk", "--jobs", "40", "--nodes", "8",
            "--metrics-out", str(path),
        )
        code, out = run_cli(
            capsys, "inspect", str(path), "--mode", "decisions", "--json",
        )
        assert code == 0
        import json

        lines = [json.loads(line) for line in out.strip().splitlines()]
        assert lines and all(r["type"] == "decision" for r in lines)

    def test_serve_and_replay_over_http(self, capsys, tmp_path):
        # Boot the real server off the CLI plumbing (ephemeral port, in a
        # thread via ServiceServer) and drive it with `repro replay --url`.
        from repro.service import AdmissionEngine, AdmissionService, EngineConfig
        from repro.service.server import ServiceServer

        engine = AdmissionEngine(EngineConfig(policy="librarisk", num_nodes=8))
        server = ServiceServer(AdmissionService(engine), port=0).start()
        try:
            code, out = run_cli(
                capsys, "replay", "--url", server.url, "--jobs", "15",
                "--nodes", "8", "--drain",
            )
            assert code == 0
            assert "15 requests" in out
            assert "server stats:" in out
            assert "pct_deadlines_fulfilled" in out
        finally:
            server.stop()
