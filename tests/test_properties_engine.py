"""Property-based tests on the execution engine and whole simulations.

These go beyond unit invariants: hypothesis generates random small
workloads and checks conservation laws and policy guarantees that must
hold for *any* input.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.job import Job, JobState, UrgencyClass
from tests.conftest import run_jobs

# Small but adversarial job parameters (seconds).
job_strategy = st.builds(
    dict,
    runtime=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    est_factor=st.floats(min_value=0.3, max_value=10.0, allow_nan=False),
    deadline_factor=st.floats(min_value=1.05, max_value=12.0, allow_nan=False),
    numproc=st.integers(min_value=1, max_value=3),
    gap=st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
)


def build_jobs(specs) -> list[Job]:
    jobs = []
    t = 0.0
    for i, spec in enumerate(specs):
        t += spec["gap"]
        jobs.append(Job(
            runtime=spec["runtime"],
            estimated_runtime=spec["runtime"] * spec["est_factor"],
            numproc=spec["numproc"],
            deadline=spec["runtime"] * spec["deadline_factor"],
            submit_time=t,
            urgency=UrgencyClass.LOW,
            job_id=i + 1,
        ))
    return jobs


POLICIES = ("edf", "fcfs", "edf-easy", "conservative", "libra", "librarisk")


class TestSimulationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=12),
           st.sampled_from(POLICIES))
    def test_every_job_reaches_a_terminal_state(self, specs, policy):
        jobs = build_jobs(specs)
        rms, sim, _ = run_jobs(policy, jobs, num_nodes=3)
        for job in rms.jobs:
            assert job.state in (JobState.COMPLETED, JobState.REJECTED), job
        assert len(rms.jobs) == len(jobs)
        assert len(rms.completed) + len(rms.rejected) == len(jobs)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=12),
           st.sampled_from(POLICIES))
    def test_completed_jobs_processed_their_exact_work(self, specs, policy):
        """Work conservation: cluster busy_time equals the sum of the
        completed jobs' work across their tasks."""
        jobs = build_jobs(specs)
        rms, sim, cluster = run_jobs(policy, jobs, num_nodes=3)
        expected = sum(j.runtime * j.numproc for j in rms.completed)
        measured = sum(n.busy_time for n in cluster)
        assert measured == pytest.approx(expected, rel=1e-6, abs=1e-3)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=12),
           st.sampled_from(POLICIES))
    def test_no_job_finishes_before_its_runtime(self, specs, policy):
        jobs = build_jobs(specs)
        rms, _, _ = run_jobs(policy, jobs, num_nodes=3)
        for job in rms.completed:
            assert job.response_time >= job.runtime - 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=12),
           st.sampled_from(POLICIES))
    def test_start_never_precedes_submission(self, specs, policy):
        jobs = build_jobs(specs)
        rms, _, _ = run_jobs(policy, jobs, num_nodes=3)
        for job in rms.completed:
            assert job.start_time >= job.submit_time - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=10),
           st.sampled_from(POLICIES))
    def test_determinism_across_reruns(self, specs, policy):
        def outcome():
            jobs = build_jobs(specs)
            rms, sim, _ = run_jobs(policy, jobs, num_nodes=3)
            return [
                (j.job_id, j.state.value, j.start_time, j.finish_time)
                for j in rms.jobs
            ], sim.now

        assert outcome() == outcome()


class TestPolicyGuarantees:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=10))
    def test_libra_accurate_estimates_meet_every_deadline(self, specs):
        """With estimate == runtime, every job Libra accepts finishes
        within its deadline — the Eq. 1-2 guarantee."""
        jobs = build_jobs(specs)
        for job in jobs:
            job.estimated_runtime = job.runtime  # force accuracy
        rms, _, _ = run_jobs("libra", jobs, num_nodes=3)
        for job in rms.completed:
            assert job.deadline_met, job

    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=10))
    def test_librarisk_no_delay_accurate_estimates_meet_every_deadline(self, specs):
        """Under the strict ``no-delay`` suitability ablation, accurate
        estimates imply every accepted job finishes in time: a node is
        suitable only when the projection predicts zero delay for every
        resident plus the newcomer, and accurate estimates make that
        projection exact."""
        jobs = build_jobs(specs)
        for job in jobs:
            job.estimated_runtime = job.runtime
        rms, _, _ = run_jobs(
            "librarisk", jobs, num_nodes=3, suitability="no-delay"
        )
        for job in rms.completed:
            assert job.deadline_met, job

    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=10))
    def test_librarisk_sigma_never_misses_alone(self, specs):
        """The default σ_j = 0 criterion measures the *spread* of the
        predicted deadline-delays, not their size (Algorithm 1,
        literally): a node where every resident plus the newcomer would
        be delayed by the same proportion still counts as zero-risk.
        So even accurate estimates allow a miss — e.g. two identical
        simultaneous jobs packed best-fit onto one node — but never a
        *solitary* one: a missed job always shared a node, while
        running, with another job that missed too."""
        jobs = build_jobs(specs)
        for job in jobs:
            job.estimated_runtime = job.runtime
        rms, _, _ = run_jobs("librarisk", jobs, num_nodes=3)
        missed = [j for j in rms.completed if not j.deadline_met]
        for job in missed:
            partners = [
                other for other in missed
                if other is not job
                and set(other.assigned_nodes) & set(job.assigned_nodes)
                and other.start_time < job.finish_time
                and job.start_time < other.finish_time
            ]
            assert partners, (job, job.assigned_nodes)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=10))
    def test_edf_never_starts_estimate_infeasible_job(self, specs):
        jobs = build_jobs(specs)
        rms, _, _ = run_jobs("edf", jobs, num_nodes=3)
        for job in rms.completed:
            # At dispatch, start + estimate had to fit the deadline.
            assert job.start_time + job.estimated_runtime \
                <= job.absolute_deadline + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(st.lists(job_strategy, min_size=1, max_size=10))
    def test_conservative_honest_estimates_meet_deadlines(self, specs):
        """With honest estimates, reservation-based admission implies
        every accepted job meets its deadline."""
        jobs = build_jobs(specs)
        for job in jobs:
            job.estimated_runtime = job.runtime
        rms, _, _ = run_jobs("conservative", jobs, num_nodes=3)
        for job in rms.completed:
            assert job.deadline_met, job
