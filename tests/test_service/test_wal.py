"""Write-ahead log tests: on-disk format, durability modes, recovery.

The hard guarantee under test: any prefix of acked mutations can be
replayed from disk into an engine whose state — metrics, decisions,
clock — is byte-identical to the one that wrote the log.
"""

import json
import os
import zlib

import pytest

from repro.service import protocol
from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.faults import tear_wal_tail
from repro.service.server import AdmissionService
from repro.service.wal import (
    WalCorruptionError,
    WalError,
    WriteAheadLog,
    apply_record,
    read_wal,
    recover,
)

CONFIG = {"policy": "edf", "num_nodes": 4, "rating": 1.0}


def submit_req(job_id: int, t: float, runtime: float = 10.0) -> dict:
    return {
        "v": protocol.PROTOCOL_VERSION, "type": "submit",
        "job": {
            "id": job_id, "submit_time": t, "runtime": runtime,
            "estimated_runtime": runtime, "numproc": 1, "deadline": 500.0,
        },
    }


def write_log(path, n: int = 3) -> WriteAheadLog:
    wal = WriteAheadLog.open(str(path), config=CONFIG)
    for i in range(1, n + 1):
        wal.append(float(i), submit_req(i, float(i)))
    wal.close()
    return wal


class TestFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.open(str(path), config=CONFIG)
        lsn1 = wal.append(1.0, submit_req(1, 1.0))
        lsn2 = wal.append(2.5, submit_req(2, 2.5), clamp=True)
        wal.close()
        assert (lsn1, lsn2) == (1, 2)

        result = read_wal(str(path))
        assert result.header["config"] == CONFIG
        assert result.torn is None
        assert [r.lsn for r in result.records] == [1, 2]
        assert result.records[0].t == 1.0
        assert result.records[0].clamp is False
        assert result.records[1].clamp is True
        assert result.records[1].req["job"]["id"] == 2

    def test_every_record_is_individually_checksummed(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, n=2)
        for line in path.read_bytes().splitlines():
            stored = int(line[:8], 16)
            assert stored == zlib.crc32(line[9:]) & 0xFFFFFFFF

    def test_append_is_byte_deterministic(self, tmp_path):
        a, b = tmp_path / "a.log", tmp_path / "b.log"
        write_log(a, n=4)
        write_log(b, n=4)
        assert a.read_bytes() == b.read_bytes()

    def test_closed_wal_refuses_appends(self, tmp_path):
        wal = write_log(tmp_path / "wal.log")
        with pytest.raises(WalError, match="closed"):
            wal.append(9.0, submit_req(9, 9.0))
        wal.close()  # idempotent

    def test_rejects_non_wal_file(self, tmp_path):
        path = tmp_path / "not.log"
        path.write_text('{"what": "ever"}\n')
        with pytest.raises(WalError, match="unreadable WAL header"):
            read_wal(str(path))

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_bytes(b"")
        with pytest.raises(WalError, match="empty"):
            read_wal(str(path))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(WalError, match="cannot read"):
            read_wal(str(tmp_path / "nope.log"))


class TestCorruption:
    def test_torn_final_record_yields_valid_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, n=3)
        tear_wal_tail(str(path), 7)
        result = read_wal(str(path))
        assert [r.lsn for r in result.records] == [1, 2]
        assert result.torn is not None and "record 3" in result.torn

    def test_flipped_byte_in_final_record_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, n=2)
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0xFF
        path.write_bytes(bytes(raw))
        result = read_wal(str(path))
        assert [r.lsn for r in result.records] == [1]
        assert "checksum mismatch" in result.torn

    def test_flipped_byte_mid_log_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, n=3)
        lines = path.read_bytes().splitlines(keepends=True)
        corrupt = bytearray(lines[1])  # first record, not the last
        corrupt[20] ^= 0xFF
        path.write_bytes(b"".join([lines[0], bytes(corrupt)] + lines[2:]))
        with pytest.raises(WalCorruptionError, match="refusing to replay"):
            read_wal(str(path))

    def test_lsn_sequence_break_is_fatal_even_at_tail(self, tmp_path):
        # A record with a valid checksum but the wrong LSN cannot be a
        # torn write; silently dropping it would reorder history.
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.open(str(path), config=CONFIG)
        wal.append(1.0, submit_req(1, 1.0))
        wal.next_lsn = 7  # skip ahead, simulating a buggy writer
        wal.append(2.0, submit_req(2, 2.0))
        wal.close()
        with pytest.raises(WalError, match="LSN sequence broken"):
            read_wal(str(path))

    def test_open_truncates_torn_tail_and_continues(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, n=3)
        tear_wal_tail(str(path), 5)
        wal = WriteAheadLog.open(str(path), config=CONFIG)
        assert wal.next_lsn == 3  # records 1-2 survived, 3 was torn away
        wal.append(9.0, submit_req(9, 9.0))
        wal.close()
        result = read_wal(str(path))
        assert result.torn is None
        assert [r.lsn for r in result.records] == [1, 2, 3]
        assert result.records[-1].req["job"]["id"] == 9


class TestWriteFailures:
    class _FlakyFile:
        """Delegating file wrapper whose next write tears partway."""

        def __init__(self, fp, tear_after: int):
            self.fp = fp
            self.tear_after: int | None = tear_after

        def write(self, data):
            if self.tear_after is not None:
                self.fp.write(bytes(data[: self.tear_after]))
                self.tear_after = None
                raise OSError(28, "No space left on device")
            return self.fp.write(data)

        def fileno(self):
            return self.fp.fileno()

        def close(self):
            self.fp.close()

    def test_failed_append_truncates_torn_bytes_and_continues(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.open(str(path), config=CONFIG)
        wal.append(1.0, submit_req(1, 1.0))
        wal._fp = self._FlakyFile(wal._fp, tear_after=8)
        with pytest.raises(OSError, match="No space left"):
            wal.append(2.0, submit_req(2, 2.0))
        # The torn frame was cut off: the file is a clean one-record log.
        result = read_wal(str(path))
        assert [r.lsn for r in result.records] == [1]
        assert result.torn is None
        # The log is still usable; the failed record's LSN is reused.
        assert not wal.failed
        assert wal.append(2.0, submit_req(2, 2.0)) == 2
        wal.close()
        assert [r.lsn for r in read_wal(str(path)).records] == [1, 2]

    def test_failed_rollback_fails_the_log_permanently(self, tmp_path, monkeypatch):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.open(str(path), config=CONFIG)
        wal.append(1.0, submit_req(1, 1.0))
        wal._fp = self._FlakyFile(wal._fp, tear_after=8)
        monkeypatch.setattr(
            "repro.service.wal.os.ftruncate",
            lambda fd, size: (_ for _ in ()).throw(OSError(5, "I/O error")),
        )
        with pytest.raises(OSError, match="No space left"):
            wal.append(2.0, submit_req(2, 2.0))
        assert wal.failed and wal.closed
        with pytest.raises(WalError, match="failed permanently"):
            wal.append(3.0, submit_req(3, 3.0))

    def test_fsync_failure_fails_the_log(self, tmp_path, monkeypatch):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.open(str(path), config=CONFIG)
        monkeypatch.setattr(
            "repro.service.wal.os.fsync",
            lambda fd: (_ for _ in ()).throw(OSError(5, "I/O error")),
        )
        with pytest.raises(OSError, match="I/O error"):
            wal.append(1.0, submit_req(1, 1.0))
        assert wal.failed
        with pytest.raises(WalError, match="failed permanently"):
            wal.append(2.0, submit_req(2, 2.0))


class TestOpen:
    def test_open_resets_torn_header_only_file(self, tmp_path):
        # A crash during the very first header write leaves a single
        # unterminated line; nothing was ever acked, so open() must
        # start over instead of failing until an operator intervenes.
        path = tmp_path / "wal.log"
        path.write_bytes(b'xxxxxxxx {"format": "repro-adm')
        wal = WriteAheadLog.open(str(path), config=CONFIG)
        wal.append(1.0, submit_req(1, 1.0))
        wal.close()
        result = read_wal(str(path))
        assert result.header["config"] == CONFIG
        assert [r.lsn for r in result.records] == [1]
        assert result.torn is None

    def test_torn_header_with_records_after_it_still_fails(self, tmp_path):
        # Once any newline exists, records may have been acked after the
        # first line — a bad header is then real corruption, not a torn
        # first write.
        path = tmp_path / "wal.log"
        write_log(path, n=1)
        raw = path.read_bytes()
        first_newline = raw.index(b"\n")
        path.write_bytes(b"garbage-header" + raw[first_newline:])
        with pytest.raises(WalError, match="unreadable WAL header"):
            WriteAheadLog.open(str(path), config=CONFIG)

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, n=2)
        wal = WriteAheadLog.open(str(path), config=CONFIG)
        assert wal.next_lsn == 3
        wal.close()

    def test_reopen_with_different_config_is_refused(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, n=1)
        other = dict(CONFIG, num_nodes=128)
        with pytest.raises(WalError, match="different engine config"):
            WriteAheadLog.open(str(path), config=other)

    def test_unknown_fsync_policy_is_refused(self, tmp_path):
        with pytest.raises(WalError, match="fsync policy"):
            WriteAheadLog.open(str(tmp_path / "w.log"), fsync="sometimes")


class TestFsyncPolicies:
    def test_always_syncs_every_append(self, tmp_path):
        wal = WriteAheadLog.open(str(tmp_path / "w.log"), config=CONFIG)
        for i in range(1, 4):
            wal.append(float(i), submit_req(i, float(i)))
        assert wal.syncs == 4  # header + one per append
        wal.close()

    def test_batch_syncs_every_batch(self, tmp_path):
        wal = WriteAheadLog.open(
            str(tmp_path / "w.log"), config=CONFIG, fsync="batch", batch_size=3
        )
        after_header = wal.syncs
        for i in range(1, 7):
            wal.append(float(i), submit_req(i, float(i)))
        assert wal.syncs == after_header + 2  # at appends 3 and 6
        wal.close()

    def test_none_syncs_only_on_close(self, tmp_path):
        wal = WriteAheadLog.open(
            str(tmp_path / "w.log"), config=CONFIG, fsync="none"
        )
        after_header = wal.syncs
        for i in range(1, 5):
            wal.append(float(i), submit_req(i, float(i)))
        assert wal.syncs == after_header
        wal.close()
        assert wal.syncs == after_header + 1
        # Whatever the policy, the bytes are flushed and readable.
        assert len(read_wal(str(tmp_path / "w.log")).records) == 4


class TestRecovery:
    def service(self, path, **kwargs) -> AdmissionService:
        engine = AdmissionEngine(EngineConfig(**CONFIG))
        wal = WriteAheadLog.open(str(path), config=engine.config.as_dict())
        return AdmissionService(engine, wal=wal, **kwargs)

    def test_recovered_engine_matches_original_exactly(self, tmp_path):
        path = tmp_path / "wal.log"
        svc = self.service(path)
        for i in range(1, 9):
            status, _ = svc.handle(json.dumps(submit_req(i, float(i))).encode())
            assert status == 200
        status, _ = svc.handle(b'{"v": 1, "type": "drain"}')
        assert status == 200
        svc.close_wal()

        engine, report = recover(str(path))
        assert report.replayed == 9 and report.failed == 0
        assert engine.metrics().as_dict() == svc.engine.metrics().as_dict()
        assert [d.as_dict() for d in engine.decisions] == [
            d.as_dict() for d in svc.engine.decisions
        ]
        assert engine.wal_lsn == 9

    def test_failed_applications_fail_identically_on_replay(self, tmp_path):
        # An out-of-order submit is appended (append-before-apply) but
        # the apply raises; replay must hit the identical refusal and
        # end in the identical state, not diverge.
        path = tmp_path / "wal.log"
        svc = self.service(path)
        svc.handle(json.dumps(submit_req(1, 100.0)).encode())
        status, response = svc.handle(json.dumps(submit_req(2, 5.0)).encode())
        assert status == 409 and response["error"]["code"] == "out_of_order"
        svc.close_wal()

        engine, report = recover(str(path))
        assert report.replayed == 1 and report.failed == 1
        assert engine.wal_lsn == 2
        assert engine.metrics().as_dict() == svc.engine.metrics().as_dict()

    def test_checkpoint_skips_already_applied_prefix(self, tmp_path):
        from repro.service import checkpoint

        path = tmp_path / "wal.log"
        ckpt = tmp_path / "mid.ckpt.json"
        svc = self.service(path)
        for i in range(1, 4):
            svc.handle(json.dumps(submit_req(i, float(i))).encode())
        checkpoint.save(svc.engine, str(ckpt))
        for i in range(4, 6):
            svc.handle(json.dumps(submit_req(i, float(i))).encode())
        svc.close_wal()

        engine, report = recover(str(path), checkpoint_path=str(ckpt))
        assert report.skipped == 3 and report.replayed == 2
        assert engine.metrics().as_dict() == svc.engine.metrics().as_dict()

    def test_recover_without_config_or_checkpoint_fails(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.open(str(path))  # header carries no config
        wal.append(1.0, submit_req(1, 1.0))
        wal.close()
        with pytest.raises(WalError, match="no engine config"):
            recover(str(path))

    def test_recovered_service_assigns_fresh_auto_ids(self, tmp_path):
        # Recovery rebuilds jobs under their original explicit ids; a
        # later submit *without* an id must draw a fresh one, not
        # collide with a recovered job (which would 409 — or worse,
        # silently answer with the old job's decision).
        path = tmp_path / "wal.log"
        svc = self.service(path)
        big = 54_321
        for i in range(3):
            status, _ = svc.handle(
                json.dumps(submit_req(big + i, float(i))).encode()
            )
            assert status == 200
        svc.close_wal()

        engine, _ = recover(str(path))
        svc2 = AdmissionService(engine)
        req = {
            "v": protocol.PROTOCOL_VERSION, "type": "submit",
            "job": {
                "submit_time": 10.0, "runtime": 5.0, "estimated_runtime": 5.0,
                "numproc": 1, "deadline": 500.0,
            },
        }
        status, response = svc2.handle(json.dumps(req).encode())
        assert status == 200
        assert "duplicate" not in response
        assert response["decision"]["job"] > big + 2

    def test_apply_record_rejects_non_mutating_request(self):
        from repro.service.wal import WalRecord

        engine = AdmissionEngine(EngineConfig(**CONFIG))
        record = WalRecord(lsn=1, t=0.0, req={"v": 1, "type": "stats"})
        with pytest.raises(WalError, match="non-mutating"):
            apply_record(engine, record)

    def test_wal_metrics_are_exported(self, tmp_path):
        svc = self.service(tmp_path / "wal.log")
        svc.handle(json.dumps(submit_req(1, 1.0)).encode())
        appends = svc.registry.get("service_wal_appends_total")
        last_lsn = svc.registry.get("service_wal_last_lsn")
        assert appends is not None and appends.value == 1
        assert last_lsn is not None and last_lsn.value == 1
        svc.close_wal()
        assert os.path.getsize(svc.wal.path) > 0
