"""Router semantics: deterministic fan-out over in-process shard servers.

The backends here are real ``ServiceServer`` instances (HTTP and all) —
only the worker *processes* of ``repro serve --shards`` are replaced by
in-process servers, so every routing/merging behaviour is exercised over
the actual wire format.
"""

import json

import pytest

from repro.service import protocol
from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.loadgen import ServiceClient
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import AdmissionService, ServiceServer
from repro.service.sharding import (
    RouterServer,
    ShardRouter,
    plan_shards,
    shard_for_job,
)

BASE = EngineConfig(policy="librarisk", num_nodes=8, rating=1.0)


class Fleet:
    """N in-process shard servers behind one router."""

    def __init__(self, num_shards: int, base: EngineConfig = BASE):
        self.configs = plan_shards(base, num_shards)
        self.services = [
            AdmissionService(AdmissionEngine(cfg)) for cfg in self.configs
        ]
        self.servers = [
            ServiceServer(svc, port=0).start() for svc in self.services
        ]
        self.router = ShardRouter(base, [srv.url for srv in self.servers])

    def stop(self):
        for server in self.servers:
            server.stop()

    def handle(self, request: dict):
        return self.router.handle(json.dumps(request).encode())


@pytest.fixture
def fleet():
    f = Fleet(4)
    yield f
    f.stop()


def submit_payload(job_id: int, submit_time: float = 0.0, **overrides) -> dict:
    payload = {
        "id": job_id, "submit_time": submit_time, "runtime": 10.0,
        "estimated_runtime": 10.0, "numproc": 1, "deadline": 100.0,
    }
    payload.update(overrides)
    return payload


def submit_frame(payload: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "submit", "job": payload}


class TestRouting:
    def test_submits_land_on_the_hash_owner(self, fleet):
        for job_id in range(1, 9):
            status, response = fleet.handle(submit_frame(
                submit_payload(job_id, submit_time=float(job_id))
            ))
            assert status == 200, response
        for job_id in range(1, 9):
            owner = shard_for_job(job_id, 4)
            for shard, service in enumerate(fleet.services):
                known = service.engine._known_ids
                assert (job_id in known) == (shard == owner)

    def test_queries_follow_the_submit_hash(self, fleet):
        fleet.handle(submit_frame(submit_payload(5)))
        status, response = fleet.handle(
            {"v": PROTOCOL_VERSION, "type": "query", "job": 5}
        )
        assert status == 200
        assert response["job"]["id"] == 5

    def test_duplicate_resubmit_is_idempotent_across_the_fleet(self, fleet):
        frame = submit_frame(submit_payload(12))
        _, first = fleet.handle(frame)
        _, second = fleet.handle(frame)
        assert second["duplicate"] is True
        assert second["decision"] == first["decision"]

    def test_conflicting_resubmit_is_a_conflict(self, fleet):
        fleet.handle(submit_frame(submit_payload(12)))
        status, response = fleet.handle(submit_frame(
            submit_payload(12, runtime=99.0)
        ))
        assert status == 409
        assert response["error"]["code"] == "conflict"

    def test_batch_items_return_to_their_original_positions(self, fleet):
        payloads = [submit_payload(i, submit_time=float(i))
                    for i in range(1, 9)]
        status, response = fleet.handle(
            {"v": PROTOCOL_VERSION, "type": "batch", "jobs": payloads}
        )
        assert status == 200
        decisions = [item["decision"]["job"] for item in response["results"]]
        assert decisions == list(range(1, 9))

    def test_advance_merges_to_the_fleet_horizon(self, fleet):
        fleet.handle(submit_frame(submit_payload(1, submit_time=5.0)))
        status, response = fleet.handle(
            {"v": PROTOCOL_VERSION, "type": "advance", "to": 50.0}
        )
        assert status == 200
        assert response["t"] == 50.0

    def test_stats_sum_and_expose_per_shard_detail(self, fleet):
        for job_id in range(1, 9):
            fleet.handle(submit_frame(
                submit_payload(job_id, submit_time=float(job_id))
            ))
        status, response = fleet.handle(
            {"v": PROTOCOL_VERSION, "type": "stats"}
        )
        stats = response["stats"]
        assert stats["submitted"] == 8
        assert stats["shard_count"] == 4
        assert stats["shards_reachable"] == 4
        assert sum(
            s["submitted"] for s in stats["shards"].values()
        ) == 8

    def test_drain_merges_scenario_metrics(self, fleet):
        for job_id in range(1, 9):
            fleet.handle(submit_frame(
                submit_payload(job_id, submit_time=float(job_id))
            ))
        status, response = fleet.handle({"v": PROTOCOL_VERSION, "type": "drain"})
        assert status == 200
        merged = response["metrics"]
        assert merged["total_submitted"] == 8
        assert set(response["shards"]) == {"0", "1", "2", "3"}
        assert sum(
            m["total_submitted"] for m in response["shards"].values()
        ) == 8

    def test_checkpoint_fans_out_to_shard_namespaced_paths(self, fleet, tmp_path):
        fleet.handle(submit_frame(submit_payload(1)))
        target = str(tmp_path / "fleet.json")
        status, response = fleet.handle(
            {"v": PROTOCOL_VERSION, "type": "checkpoint", "path": target}
        )
        assert status == 200
        paths = response["paths"]
        assert paths["0"].endswith("fleet.shard0of4.json")
        for path in paths.values():
            assert (tmp_path / path.split("/")[-1]).exists()

    def test_inline_checkpoint_is_refused(self, fleet):
        status, response = fleet.handle(
            {"v": PROTOCOL_VERSION, "type": "checkpoint"}
        )
        assert status == 400
        assert response["error"]["code"] == "invalid_field"


class TestDegradation:
    def test_one_draining_shard_degrades_the_merged_health(self, fleet):
        fleet.services[2].draining = True
        health = fleet.router.health_response()
        assert health["status"] == "degraded"
        assert health["ok"] is True
        entries = health["shards"]
        assert entries["2"]["status"] == "draining"
        draining = [s for s, e in entries.items() if e["status"] != "ok"]
        assert draining == ["2"]

    def test_all_shards_down_is_down(self):
        f = Fleet(2)
        f.stop()
        health = f.router.health_response()
        assert health["status"] == "down"
        assert health["ok"] is False
        assert health["shards_down"] == 2

    def test_dead_shard_submits_are_typed_unavailable(self):
        f = Fleet(2)
        try:
            victim = shard_for_job(1, 2)
            f.servers[victim].stop()
            status, response = f.handle(submit_frame(submit_payload(1)))
            assert status == 503
            assert response["error"]["code"] == "unavailable"
        finally:
            f.stop()

    def test_batch_items_on_a_dead_shard_inherit_the_frame_error(self):
        f = Fleet(2)
        try:
            victim = shard_for_job(1, 2)
            f.servers[victim].stop()
            payloads = [submit_payload(i, submit_time=float(i))
                        for i in range(1, 7)]
            status, response = f.handle(
                {"v": PROTOCOL_VERSION, "type": "batch", "jobs": payloads}
            )
            assert status == 200
            for payload, item in zip(payloads, response["results"]):
                if shard_for_job(payload["id"], 2) == victim:
                    assert item["error"]["code"] == "unavailable"
                else:
                    assert item["ok"], item
        finally:
            f.stop()

    def test_draining_router_refuses_requests(self, fleet):
        fleet.router.draining = True
        status, response = fleet.handle(submit_frame(submit_payload(1)))
        assert status == 503
        assert response["error"]["code"] == "shutting_down"


class TestSingleShardByteIdentity:
    """A 1-shard router must be invisible on the wire."""

    def run_stream(self, handle):
        out = []
        for job_id in range(1, 7):
            out.append(handle(submit_frame(
                submit_payload(job_id, submit_time=float(job_id))
            )))
        out.append(handle({"v": PROTOCOL_VERSION, "type": "query", "job": 3}))
        out.append(handle({"v": PROTOCOL_VERSION, "type": "trace", "job": 3}))
        out.append(handle({"v": PROTOCOL_VERSION, "type": "stats"}))
        out.append(handle({"v": PROTOCOL_VERSION, "type": "drain"}))
        return [
            (status, protocol.encode(response)) for status, response in out
        ]

    def test_every_response_matches_the_unsharded_server(self):
        unsharded = AdmissionService(AdmissionEngine(BASE))
        direct = self.run_stream(
            lambda req: unsharded.handle(json.dumps(req).encode())
        )
        f = Fleet(1)
        try:
            routed = self.run_stream(f.handle)
        finally:
            f.stop()
        assert routed == direct

    def test_trace_span_tree_matches_the_unsharded_engine(self):
        unsharded = AdmissionService(AdmissionEngine(BASE))
        f = Fleet(1)
        try:
            frame = submit_frame(submit_payload(3, submit_time=1.0))
            unsharded.handle(json.dumps(frame).encode())
            f.handle(frame)
            trace_req = {"v": PROTOCOL_VERSION, "type": "trace", "job": 3}
            _, direct = unsharded.handle(json.dumps(trace_req).encode())
            _, routed = f.handle(trace_req)
            assert protocol.encode(routed) == protocol.encode(direct)
        finally:
            f.stop()


class TestMultiShardDeterminism:
    def run_fleet(self):
        f = Fleet(4)
        try:
            payloads = [submit_payload(i, submit_time=float(i))
                        for i in range(1, 21)]
            outputs = []
            for start in range(0, len(payloads), 5):
                status, response = f.handle({
                    "v": PROTOCOL_VERSION, "type": "batch",
                    "jobs": payloads[start:start + 5],
                })
                assert status == 200
                outputs.append(protocol.encode(response))
            _, drained = f.handle({"v": PROTOCOL_VERSION, "type": "drain"})
            outputs.append(protocol.encode(drained))
            return outputs
        finally:
            f.stop()

    def test_identical_streams_produce_identical_bytes(self):
        assert self.run_fleet() == self.run_fleet()

    def test_shards_mint_disjoint_trace_ids(self, fleet):
        for job_id in range(1, 9):
            fleet.handle(submit_frame(
                submit_payload(job_id, submit_time=float(job_id))
            ))
        traces = set()
        for job_id in range(1, 9):
            _, response = fleet.handle(
                {"v": PROTOCOL_VERSION, "type": "trace", "job": job_id}
            )
            traces.add(response["trace"]["trace_id"])
        assert len(traces) == 8


class TestRouterServer:
    def test_http_surface_matches_a_single_server(self):
        f = Fleet(2)
        server = RouterServer(f.router, port=0).start()
        try:
            client = ServiceClient(server.url, timeout=5.0)
            assert client.healthy()
            status, response = client.rpc(submit_frame(submit_payload(1)))
            assert status == 200
            assert response["decision"]["outcome"] == "accepted"
            status, stats = client.stats()
            assert stats["stats"]["submitted"] == 1
        finally:
            server.stop()
            f.stop()

    def test_merged_metrics_carry_shard_labels(self):
        f = Fleet(2)
        server = RouterServer(f.router, port=0).start()
        try:
            client = ServiceClient(server.url, timeout=5.0)
            # Jobs 1 and 4 hash to different shards of two, so both
            # backends have samples to contribute.
            client.rpc(submit_frame(submit_payload(1, submit_time=1.0)))
            client.rpc(submit_frame(submit_payload(4, submit_time=4.0)))
            import urllib.request

            with urllib.request.urlopen(f"{server.url}/metrics") as resp:
                text = resp.read().decode()
            assert 'shard="0"' in text
            assert 'shard="1"' in text
            assert "router_requests_total" in text
        finally:
            server.stop()
            f.stop()

    def test_stop_marks_the_router_draining(self):
        f = Fleet(2)
        server = RouterServer(f.router, port=0).start()
        assert server.stop() is True
        assert f.router.draining is True
        f.stop()
