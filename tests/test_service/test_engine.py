"""Tests for the online admission engine."""

import pytest

from repro.cluster.job import JobState
from repro.experiments.config import ScenarioConfig
from repro.service.clock import VirtualClock, WallClock
from repro.service.engine import (
    AdmissionEngine,
    DuplicateJob,
    EngineConfig,
    EngineError,
    OutOfOrderSubmit,
    engine_for_scenario,
)
from tests.conftest import make_job


def small_engine(policy: str = "librarisk", **kwargs) -> AdmissionEngine:
    defaults = dict(policy=policy, num_nodes=4, rating=1.0)
    defaults.update(kwargs)
    return AdmissionEngine(EngineConfig(**defaults))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="num_nodes"):
            EngineConfig(num_nodes=0)
        with pytest.raises(ValueError, match="rating"):
            EngineConfig(rating=0.0)

    def test_round_trips_through_dict(self):
        config = EngineConfig(policy="edf", num_nodes=7, rating=2.5)
        assert EngineConfig.from_dict(config.as_dict()) == config

    def test_from_scenario_projects_cluster_knobs(self):
        scenario = ScenarioConfig(policy="libra", num_nodes=32, rating=10.0)
        config = EngineConfig.from_scenario(scenario)
        assert config.policy == "libra"
        assert config.num_nodes == 32
        assert config.rating == 10.0


class TestSubmit:
    def test_accept_starts_job(self):
        engine = small_engine()
        decision = engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        assert decision.outcome == "accepted"
        assert decision.accepted
        assert decision.policy == "librarisk"
        assert engine.query(1).state is JobState.RUNNING

    def test_reject_carries_reason(self):
        engine = small_engine()
        decision = engine.submit(make_job(numproc=9, deadline=50.0, job_id=1))
        assert decision.outcome == "rejected"
        assert not decision.accepted
        assert decision.reason
        assert engine.query(1).state is JobState.REJECTED

    def test_edf_defers_to_queue(self):
        engine = small_engine("edf", num_nodes=1)
        engine.submit(make_job(runtime=100.0, deadline=1000.0, job_id=1))
        decision = engine.submit(make_job(runtime=10.0, deadline=1000.0, job_id=2))
        assert decision.outcome == "queued"
        assert engine.query(2).state is JobState.QUEUED

    def test_completions_fire_before_later_arrival(self):
        engine = small_engine(num_nodes=1)
        engine.submit(make_job(runtime=10.0, deadline=50.0, submit=0.0, job_id=1))
        # By t=60 the first job has completed, freeing the single node.
        decision = engine.submit(
            make_job(runtime=10.0, deadline=100.0, submit=60.0, job_id=2)
        )
        assert engine.query(1).state is JobState.COMPLETED
        assert decision.outcome == "accepted"

    def test_out_of_order_submit_raises(self):
        engine = small_engine()
        engine.submit(make_job(submit=100.0, deadline=300.0, job_id=1))
        with pytest.raises(OutOfOrderSubmit, match="out of order"):
            engine.submit(make_job(submit=50.0, deadline=300.0, job_id=2))

    def test_duplicate_job_id_is_refused(self):
        # A distinct Job object under an already-known id must be
        # refused before it reaches the policy — a colliding arrival
        # would corrupt the node task tables.
        engine = small_engine()
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        with pytest.raises(DuplicateJob, match="id 1"):
            engine.submit(make_job(runtime=5.0, deadline=200.0, job_id=1))
        assert engine.stats()["submitted"] == 1

    def test_clamp_past_moves_submit_time_forward(self):
        engine = small_engine()
        engine.submit(make_job(submit=100.0, deadline=300.0, job_id=1))
        stale = make_job(submit=50.0, deadline=300.0, job_id=2)
        decision = engine.submit(stale, clamp_past=True)
        assert stale.submit_time == 100.0
        assert decision.t == 100.0

    def test_resubmission_raises(self):
        engine = small_engine()
        job = make_job(deadline=300.0, job_id=1)
        engine.submit(job)
        with pytest.raises(EngineError, match="cannot submit"):
            engine.submit(job)

    def test_decisions_are_logged_in_order(self):
        engine = small_engine()
        engine.submit(make_job(submit=0.0, deadline=200.0, job_id=1))
        engine.submit(make_job(submit=5.0, deadline=200.0, job_id=2))
        assert [d.job_id for d in engine.decisions] == [1, 2]


class TestClockDriving:
    def test_advance_fires_events_and_sets_clock(self):
        engine = small_engine(num_nodes=1)
        engine.submit(make_job(runtime=10.0, deadline=50.0, job_id=1))
        # Libra-family shares finish the job exactly at its deadline (t=50).
        fired = engine.advance(60.0)
        assert fired >= 1  # at least the completion
        assert engine.now == 60.0
        assert engine.query(1).state is JobState.COMPLETED

    def test_advance_backwards_raises(self):
        engine = small_engine()
        engine.advance(10.0)
        with pytest.raises(EngineError, match="cannot advance"):
            engine.advance(5.0)

    def test_drain_completes_everything(self):
        engine = small_engine(num_nodes=2)
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        engine.submit(make_job(runtime=20.0, deadline=100.0, submit=1.0, job_id=2))
        horizon = engine.drain()
        assert horizon >= 21.0
        assert engine.sim.pending == 0
        assert len(engine.rms.completed) == 2

    def test_poll_is_noop_under_virtual_clock(self):
        engine = small_engine()
        assert engine.poll() == 0

    def test_poll_chases_wall_clock(self):
        clock = WallClock(speedup=1e6)
        engine = AdmissionEngine(
            EngineConfig(policy="librarisk", num_nodes=2, rating=1.0), clock=clock
        )
        engine.submit(make_job(runtime=5.0, deadline=100.0, job_id=1),
                      clamp_past=True)
        import time

        time.sleep(0.001)  # ≥ 1000 simulated seconds at this speedup
        engine.poll()
        assert engine.query(1).state is JobState.COMPLETED


class TestInterrogation:
    def test_query_unknown_job_returns_none(self):
        assert small_engine().query(404) is None

    def test_stats_counts(self):
        engine = small_engine(num_nodes=2)
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        engine.submit(make_job(numproc=5, deadline=100.0, submit=1.0, job_id=2))
        stats = engine.stats()
        assert stats["submitted"] == 2
        assert stats["accepted"] == 1
        assert stats["rejected"] == 1
        assert stats["running"] == 1
        assert stats["policy"] == "librarisk"
        assert stats["acceptance_ratio"] == 0.5

    def test_metrics_over_submitted_jobs(self):
        engine = small_engine(num_nodes=2)
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        engine.drain()
        metrics = engine.metrics()
        assert metrics.total_submitted == 1
        assert metrics.pct_deadlines_fulfilled == 100.0


class TestClocks:
    def test_virtual_clock_tracks_max(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0
        assert clock.live is False

    def test_wall_clock_advances_on_its_own(self):
        import time

        clock = WallClock(speedup=100.0, start_time=50.0)
        t0 = clock.now()
        assert t0 >= 50.0
        time.sleep(0.002)
        assert clock.now() > t0
        assert clock.live is True

    def test_wall_clock_rejects_bad_speedup(self):
        with pytest.raises(ValueError, match="speedup"):
            WallClock(speedup=0.0)

    def test_engine_for_scenario_matches_config(self):
        scenario = ScenarioConfig(policy="edf", num_nodes=8)
        engine = engine_for_scenario(scenario)
        assert engine.policy.name == "edf"
        assert len(engine.cluster) == 8
