"""Tests for the versioned JSON protocol."""

import json

import pytest

from repro.cluster.job import UrgencyClass
from repro.service import protocol
from repro.service.protocol import (
    AdvanceRequest,
    CheckpointRequest,
    DrainRequest,
    ErrorCode,
    PROTOCOL_VERSION,
    ProtocolError,
    QueryRequest,
    StatsRequest,
    SubmitRequest,
)
from tests.conftest import make_job


def req(**fields):
    return {"v": PROTOCOL_VERSION, **fields}


class TestParseRequest:
    def test_parses_every_type(self):
        assert isinstance(
            protocol.parse_request(req(type="submit", job={
                "estimated_runtime": 10.0, "deadline": 50.0, "submit_time": 0.0,
            })),
            SubmitRequest,
        )
        assert protocol.parse_request(req(type="query", job=3)) == QueryRequest(3)
        assert isinstance(protocol.parse_request(req(type="stats")), StatsRequest)
        assert protocol.parse_request(req(type="advance", to=5.0)) == AdvanceRequest(5.0)
        assert isinstance(protocol.parse_request(req(type="drain")), DrainRequest)
        assert protocol.parse_request(
            req(type="checkpoint", path="/tmp/x.json")
        ) == CheckpointRequest("/tmp/x.json")

    def test_accepts_bytes_and_str(self):
        body = json.dumps(req(type="stats"))
        assert isinstance(protocol.parse_request(body), StatsRequest)
        assert isinstance(protocol.parse_request(body.encode()), StatsRequest)

    def _code(self, data) -> str:
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_request(data)
        return excinfo.value.code

    def test_rejects_non_json(self):
        assert self._code(b"not json {") == ErrorCode.BAD_JSON

    def test_rejects_non_utf8(self):
        assert self._code(b"\xff\xfe") == ErrorCode.BAD_JSON

    def test_rejects_non_object(self):
        assert self._code("[1, 2]") == ErrorCode.BAD_JSON

    def test_rejects_missing_version(self):
        assert self._code({"type": "stats"}) == ErrorCode.BAD_VERSION

    def test_rejects_wrong_version(self):
        assert self._code({"v": 2, "type": "stats"}) == ErrorCode.BAD_VERSION

    def test_rejects_unknown_type(self):
        assert self._code(req(type="frobnicate")) == ErrorCode.UNKNOWN_TYPE

    def test_rejects_unknown_top_level_field(self):
        assert self._code(req(type="stats", extra=1)) == ErrorCode.INVALID_FIELD

    def test_rejects_non_numeric_advance_target(self):
        assert self._code(req(type="advance", to="soon")) == ErrorCode.INVALID_FIELD

    def test_rejects_boolean_masquerading_as_number(self):
        assert self._code(req(type="advance", to=True)) == ErrorCode.INVALID_FIELD

    def test_rejects_non_string_checkpoint_path(self):
        assert self._code(req(type="checkpoint", path=7)) == ErrorCode.INVALID_FIELD


class TestJobPayload:
    def base(self, **overrides):
        payload = {
            "submit_time": 5.0, "runtime": 100.0, "estimated_runtime": 120.0,
            "numproc": 2, "deadline": 400.0,
        }
        payload.update(overrides)
        return payload

    def test_builds_job(self):
        job = protocol.job_from_payload(self.base(id=9, urgency="high", user="u1"))
        assert job.job_id == 9
        assert job.runtime == 100.0
        assert job.numproc == 2
        assert job.urgency is UrgencyClass.HIGH
        assert job.user == "u1"

    def test_runtime_defaults_to_estimate(self):
        payload = self.base()
        del payload["runtime"]
        job = protocol.job_from_payload(payload)
        assert job.runtime == 120.0

    def test_numproc_defaults_to_one(self):
        payload = self.base()
        del payload["numproc"]
        assert protocol.job_from_payload(payload).numproc == 1

    def test_submit_time_falls_back_to_default(self):
        payload = self.base()
        del payload["submit_time"]
        job = protocol.job_from_payload(payload, default_submit_time=33.0)
        assert job.submit_time == 33.0

    def test_submit_time_required_without_default(self):
        payload = self.base()
        del payload["submit_time"]
        with pytest.raises(ProtocolError, match="submit_time"):
            protocol.job_from_payload(payload)

    @pytest.mark.parametrize("field,value", [
        ("estimated_runtime", 0.0),
        ("estimated_runtime", "fast"),
        ("deadline", -1.0),
        ("deadline", float("nan")),
        ("numproc", 0),
        ("numproc", 1.5),
        ("urgency", "panic"),
        ("user", 42),
        ("bogus_field", 1),
    ])
    def test_rejects_invalid_fields(self, field, value):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.job_from_payload(self.base(**{field: value}))
        assert excinfo.value.code == ErrorCode.INVALID_FIELD

    def test_query_view_of_finished_job(self):
        job = make_job(runtime=10.0, deadline=50.0, job_id=4)
        job.mark_submitted()
        job.mark_running(0.0, [0])
        job.mark_completed(10.0)
        view = protocol.job_payload(job)
        assert view["state"] == "completed"
        assert view["finish_time"] == 10.0
        assert view["deadline_met"] is True


class TestResponses:
    def test_ok_envelope(self):
        response = protocol.ok_response("stats", stats={"t": 0.0})
        assert response["v"] == PROTOCOL_VERSION
        assert response["ok"] is True
        assert response["type"] == "stats"

    def test_error_envelope_and_status(self):
        response = protocol.error_response(ErrorCode.OVERLOADED, "busy")
        assert response["ok"] is False
        assert response["error"]["code"] == "overloaded"
        assert ProtocolError(ErrorCode.OVERLOADED, "busy").http_status == 503

    def test_every_code_has_a_status(self):
        codes = {
            v for k, v in vars(ErrorCode).items() if not k.startswith("_")
        }
        # `unavailable` is synthesized client-side for transport
        # failures (status 0); a server never sends it over HTTP.
        assert codes - {ErrorCode.UNAVAILABLE} == set(protocol.HTTP_STATUS)

    def test_retryable_codes_are_known(self):
        codes = {
            v for k, v in vars(ErrorCode).items() if not k.startswith("_")
        }
        assert protocol.RETRYABLE_CODES <= codes
        # Deliberate refusals must never be retried verbatim.
        for code in (ErrorCode.CONFLICT, ErrorCode.OUT_OF_ORDER,
                     ErrorCode.BAD_JSON, ErrorCode.NOT_FOUND):
            assert code not in protocol.RETRYABLE_CODES

    def test_error_response_carries_retry_after(self):
        response = protocol.error_response(
            ErrorCode.OVERLOADED, "busy", retry_after=2.5
        )
        assert response["error"]["retry_after"] == 2.5
        plain = protocol.error_response(ErrorCode.OVERLOADED, "busy")
        assert "retry_after" not in plain["error"]

    def test_encode_is_canonical(self):
        a = protocol.encode({"b": 1, "a": 2})
        b = protocol.encode({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}'
