"""Checkpoint/restore round-trip tests.

The load-bearing guarantee: interrupting a trace mid-stream, restoring
from the snapshot, and feeding the remainder must end in **exactly**
the final metrics of the uninterrupted run — for every paper policy.
"""

import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs
from repro.service import checkpoint
from repro.service.checkpoint import CheckpointError
from repro.service.engine import (
    AdmissionEngine,
    DuplicateJob,
    EngineConfig,
    engine_for_scenario,
)
from repro.sim.rng import RngStreams
from tests.conftest import make_job

POLICIES = ("edf", "libra", "librarisk")


def scenario(policy: str) -> ScenarioConfig:
    return ScenarioConfig(policy=policy, num_jobs=120, num_nodes=16, seed=97)


class TestRoundTrip:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_final_metrics_identical_after_mid_trace_restore(self, policy):
        config = scenario(policy)
        cut = 60

        # Uninterrupted reference run through the engine.
        reference = engine_for_scenario(config)
        for job in build_scenario_jobs(config):
            reference.submit(job)
        reference.drain()

        # Interrupted run: snapshot at the cut, restore, feed the rest.
        first = engine_for_scenario(config)
        jobs = build_scenario_jobs(config)
        for job in jobs[:cut]:
            first.submit(job)
        snap = json.loads(checkpoint.dumps(checkpoint.snapshot(first)))
        resumed = checkpoint.restore(snap)
        assert resumed.now == first.now
        for job in jobs[cut:]:
            resumed.submit(job)
        resumed.drain()

        assert resumed.metrics().as_dict() == reference.metrics().as_dict()
        assert len(resumed.decisions) == len(reference.decisions)
        assert [d.as_dict() for d in resumed.decisions] == [
            d.as_dict() for d in reference.decisions
        ]

    def test_snapshot_is_byte_deterministic(self):
        config = scenario("librarisk")
        engine = engine_for_scenario(config)
        for job in build_scenario_jobs(config)[:40]:
            engine.submit(job)
        first = checkpoint.dumps(checkpoint.snapshot(engine))
        second = checkpoint.dumps(checkpoint.snapshot(engine))
        assert first == second

    def test_save_and_load_file(self, tmp_path):
        engine = AdmissionEngine(EngineConfig(num_nodes=4, rating=1.0))
        engine.submit(make_job(runtime=50.0, deadline=200.0, job_id=1))
        path = tmp_path / "engine.json"
        checkpoint.save(engine, str(path))
        resumed = checkpoint.load(str(path))
        resumed.drain()
        assert resumed.query(1).state.value == "completed"

    def test_restore_reserves_recovered_job_ids(self, tmp_path):
        # Restored jobs keep their explicit ids without touching the
        # auto-id counter; a job created without an id afterwards must
        # not collide with any of them.
        engine = AdmissionEngine(EngineConfig(num_nodes=4, rating=1.0))
        big = 61_000
        engine.submit(make_job(runtime=50.0, deadline=200.0, job_id=big))
        path = tmp_path / "engine.json"
        checkpoint.save(engine, str(path))
        resumed = checkpoint.load(str(path))
        fresh = make_job(runtime=5.0, deadline=100.0, submit=resumed.now)
        assert fresh.job_id > big
        decision = resumed.submit(fresh)
        assert decision.job_id == fresh.job_id

    def test_restore_preserves_queue(self):
        engine = AdmissionEngine(EngineConfig(policy="edf", num_nodes=1, rating=1.0))
        engine.submit(make_job(runtime=100.0, deadline=1000.0, job_id=1))
        engine.submit(make_job(runtime=10.0, deadline=1000.0, submit=1.0, job_id=2))
        assert len(engine.policy.queue) == 1
        resumed = checkpoint.restore(checkpoint.snapshot(engine))
        assert [j.job_id for j in resumed.policy.queue] == [2]
        resumed.drain()
        assert resumed.query(2).state.value == "completed"

    def test_restore_remembers_submitted_ids(self):
        engine = AdmissionEngine(EngineConfig(num_nodes=2, rating=1.0))
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        resumed = checkpoint.restore(checkpoint.snapshot(engine))
        with pytest.raises(DuplicateJob):
            resumed.submit(make_job(runtime=5.0, deadline=200.0, job_id=1))

    def test_rng_streams_resume_identically(self):
        streams = RngStreams(seed=5)
        streams.get("arrivals").random(4)  # advance the stream mid-run
        engine = AdmissionEngine(
            EngineConfig(num_nodes=2, rating=1.0), streams=streams
        )
        resumed = checkpoint.restore(checkpoint.snapshot(engine))
        expect = streams.get("arrivals").random(3)
        got = resumed.streams.get("arrivals").random(3)
        assert list(expect) == list(got)


class TestValidation:
    def test_rejects_foreign_format(self):
        with pytest.raises(CheckpointError, match="not an engine checkpoint"):
            checkpoint.restore({"format": "something-else", "version": 1})

    def test_rejects_future_version(self):
        with pytest.raises(CheckpointError, match="version"):
            checkpoint.restore(
                {"format": checkpoint.CHECKPOINT_FORMAT, "version": 99}
            )

    def test_rejects_unknown_job_reference(self):
        engine = AdmissionEngine(EngineConfig(num_nodes=2, rating=1.0))
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        snap = checkpoint.snapshot(engine)
        snap["rms"]["accepted"] = [404]
        with pytest.raises(CheckpointError, match="unknown job 404"):
            checkpoint.restore(snap)

    def test_rejects_unreconstructible_pending_event(self):
        engine = AdmissionEngine(EngineConfig(num_nodes=2, rating=1.0))
        engine.sim.schedule_at(10.0, lambda e: None, name="custom:tick")
        with pytest.raises(CheckpointError, match="custom:tick"):
            checkpoint.snapshot(engine)

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(CheckpointError, match="invalid checkpoint JSON"):
            checkpoint.load(str(path))


class TestDurability:
    """Atomic writes and content checksums on the checkpoint file."""

    def saved(self, tmp_path):
        engine = AdmissionEngine(EngineConfig(num_nodes=4, rating=1.0))
        engine.submit(make_job(runtime=50.0, deadline=300.0, job_id=1))
        engine.submit(make_job(runtime=10.0, deadline=300.0, submit=1.0,
                               job_id=2))
        path = tmp_path / "engine.json"
        checkpoint.save(engine, str(path))
        return engine, path

    def test_save_embeds_a_valid_content_checksum(self, tmp_path):
        _, path = self.saved(tmp_path)
        doc = json.loads(path.read_text())
        stored = doc.pop("checksum")
        assert stored["algo"] == "sha256"
        assert stored["hex"] == checkpoint._content_checksum(doc)
        checkpoint.load(str(path))  # round-trips cleanly

    def test_save_leaves_no_temp_files_behind(self, tmp_path):
        _, path = self.saved(tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_failed_save_preserves_the_old_checkpoint(self, tmp_path):
        engine, path = self.saved(tmp_path)
        before = path.read_bytes()
        # Poison the engine so the *snapshot* (taken before any file
        # I/O) fails; the on-disk checkpoint must be untouched.
        engine.sim.schedule_at(10.0, lambda e: None, name="custom:poison")
        with pytest.raises(CheckpointError):
            checkpoint.save(engine, str(path))
        assert path.read_bytes() == before
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_truncated_file_is_a_clear_corruption_error(self, tmp_path):
        _, path = self.saved(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            checkpoint.load(str(path))

    def test_flipped_byte_fails_the_checksum(self, tmp_path):
        _, path = self.saved(tmp_path)
        # Flip a content byte without breaking the JSON syntax.
        corrupted = path.read_text().replace('"runtime":50.0', '"runtime":51.0', 1)
        assert corrupted != path.read_text()
        path.write_text(corrupted)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            checkpoint.load(str(path))

    def test_unsupported_checksum_algo_is_rejected(self, tmp_path):
        _, path = self.saved(tmp_path)
        doc = json.loads(path.read_text())
        doc["checksum"] = {"algo": "crc32", "hex": "whatever"}
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="unsupported checkpoint checksum"):
            checkpoint.load(str(path))

    def test_legacy_checkpoint_without_checksum_still_loads(self, tmp_path):
        _, path = self.saved(tmp_path)
        doc = json.loads(path.read_text())
        del doc["checksum"]
        path.write_text(json.dumps(doc))
        resumed = checkpoint.load(str(path))
        assert resumed.query(1) is not None

    def test_wal_lsn_round_trips_through_snapshots(self, tmp_path):
        engine, path = self.saved(tmp_path)
        engine.wal_lsn = 41
        checkpoint.save(engine, str(path))
        resumed = checkpoint.load(str(path))
        assert resumed.wal_lsn == 41
        # Engines that never saw a WAL keep the field out of the snapshot.
        fresh = AdmissionEngine(EngineConfig(num_nodes=2, rating=1.0))
        assert "wal_lsn" not in checkpoint.snapshot(fresh)
