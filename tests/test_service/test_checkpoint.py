"""Checkpoint/restore round-trip tests.

The load-bearing guarantee: interrupting a trace mid-stream, restoring
from the snapshot, and feeding the remainder must end in **exactly**
the final metrics of the uninterrupted run — for every paper policy.
"""

import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs
from repro.service import checkpoint
from repro.service.checkpoint import CheckpointError
from repro.service.engine import (
    AdmissionEngine,
    DuplicateJob,
    EngineConfig,
    engine_for_scenario,
)
from repro.sim.rng import RngStreams
from tests.conftest import make_job

POLICIES = ("edf", "libra", "librarisk")


def scenario(policy: str) -> ScenarioConfig:
    return ScenarioConfig(policy=policy, num_jobs=120, num_nodes=16, seed=97)


class TestRoundTrip:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_final_metrics_identical_after_mid_trace_restore(self, policy):
        config = scenario(policy)
        cut = 60

        # Uninterrupted reference run through the engine.
        reference = engine_for_scenario(config)
        for job in build_scenario_jobs(config):
            reference.submit(job)
        reference.drain()

        # Interrupted run: snapshot at the cut, restore, feed the rest.
        first = engine_for_scenario(config)
        jobs = build_scenario_jobs(config)
        for job in jobs[:cut]:
            first.submit(job)
        snap = json.loads(checkpoint.dumps(checkpoint.snapshot(first)))
        resumed = checkpoint.restore(snap)
        assert resumed.now == first.now
        for job in jobs[cut:]:
            resumed.submit(job)
        resumed.drain()

        assert resumed.metrics().as_dict() == reference.metrics().as_dict()
        assert len(resumed.decisions) == len(reference.decisions)
        assert [d.as_dict() for d in resumed.decisions] == [
            d.as_dict() for d in reference.decisions
        ]

    def test_snapshot_is_byte_deterministic(self):
        config = scenario("librarisk")
        engine = engine_for_scenario(config)
        for job in build_scenario_jobs(config)[:40]:
            engine.submit(job)
        first = checkpoint.dumps(checkpoint.snapshot(engine))
        second = checkpoint.dumps(checkpoint.snapshot(engine))
        assert first == second

    def test_save_and_load_file(self, tmp_path):
        engine = AdmissionEngine(EngineConfig(num_nodes=4, rating=1.0))
        engine.submit(make_job(runtime=50.0, deadline=200.0, job_id=1))
        path = tmp_path / "engine.json"
        checkpoint.save(engine, str(path))
        resumed = checkpoint.load(str(path))
        resumed.drain()
        assert resumed.query(1).state.value == "completed"

    def test_restore_preserves_queue(self):
        engine = AdmissionEngine(EngineConfig(policy="edf", num_nodes=1, rating=1.0))
        engine.submit(make_job(runtime=100.0, deadline=1000.0, job_id=1))
        engine.submit(make_job(runtime=10.0, deadline=1000.0, submit=1.0, job_id=2))
        assert len(engine.policy.queue) == 1
        resumed = checkpoint.restore(checkpoint.snapshot(engine))
        assert [j.job_id for j in resumed.policy.queue] == [2]
        resumed.drain()
        assert resumed.query(2).state.value == "completed"

    def test_restore_remembers_submitted_ids(self):
        engine = AdmissionEngine(EngineConfig(num_nodes=2, rating=1.0))
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        resumed = checkpoint.restore(checkpoint.snapshot(engine))
        with pytest.raises(DuplicateJob):
            resumed.submit(make_job(runtime=5.0, deadline=200.0, job_id=1))

    def test_rng_streams_resume_identically(self):
        streams = RngStreams(seed=5)
        streams.get("arrivals").random(4)  # advance the stream mid-run
        engine = AdmissionEngine(
            EngineConfig(num_nodes=2, rating=1.0), streams=streams
        )
        resumed = checkpoint.restore(checkpoint.snapshot(engine))
        expect = streams.get("arrivals").random(3)
        got = resumed.streams.get("arrivals").random(3)
        assert list(expect) == list(got)


class TestValidation:
    def test_rejects_foreign_format(self):
        with pytest.raises(CheckpointError, match="not an engine checkpoint"):
            checkpoint.restore({"format": "something-else", "version": 1})

    def test_rejects_future_version(self):
        with pytest.raises(CheckpointError, match="version"):
            checkpoint.restore(
                {"format": checkpoint.CHECKPOINT_FORMAT, "version": 99}
            )

    def test_rejects_unknown_job_reference(self):
        engine = AdmissionEngine(EngineConfig(num_nodes=2, rating=1.0))
        engine.submit(make_job(runtime=10.0, deadline=100.0, job_id=1))
        snap = checkpoint.snapshot(engine)
        snap["rms"]["accepted"] = [404]
        with pytest.raises(CheckpointError, match="unknown job 404"):
            checkpoint.restore(snap)

    def test_rejects_unreconstructible_pending_event(self):
        engine = AdmissionEngine(EngineConfig(num_nodes=2, rating=1.0))
        engine.sim.schedule_at(10.0, lambda e: None, name="custom:tick")
        with pytest.raises(CheckpointError, match="custom:tick"):
            checkpoint.snapshot(engine)

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(CheckpointError, match="invalid checkpoint JSON"):
            checkpoint.load(str(path))
