"""Retrying-client tests: backoff schedules, Retry-After, circuit breaker.

Everything here is deterministic: the jitter RNG is seeded, sleeps are
recorded instead of slept, and the breaker runs on a fake clock.
"""

import random

import pytest

from repro.service import protocol
from repro.service.client import CircuitBreaker, RetryPolicy, RetryingClient
from repro.service.loadgen import ServiceClient
from repro.service.protocol import ErrorCode


def ok(payload="stats"):
    return 200, protocol.ok_response(payload, stats={})

def err(code, status=503, retry_after=None):
    return status, protocol.error_response(code, "scripted", retry_after=retry_after)


class ScriptedTransport:
    """Replaces ServiceClient.rpc with a canned response sequence."""

    def __init__(self, monkeypatch, responses):
        self.responses = list(responses)
        self.calls = 0
        monkeypatch.setattr(ServiceClient, "rpc", self._rpc)

    def _rpc(self, _request):
        # Installed as a *bound* method, so the ServiceClient instance
        # never appears in the signature — only the request does.
        self.calls += 1
        if not self.responses:
            raise AssertionError("transport script exhausted")
        return self.responses.pop(0)


def make_client(**kwargs) -> tuple[RetryingClient, list]:
    slept: list = []
    client = RetryingClient(
        "http://127.0.0.1:1", sleep=slept.append, seed=kwargs.pop("seed", 3),
        **kwargs,
    )
    return client, slept


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(k, rng) for k in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_shrinks_but_never_grows_the_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                             jitter=0.5)
        rng = random.Random(7)
        for _ in range(50):
            assert 0.5 <= policy.delay(0, rng) <= 1.0

    def test_schedule_is_seed_deterministic(self):
        policy = RetryPolicy()
        a = [policy.delay(k, random.Random(9)) for k in range(4)]
        b = [policy.delay(k, random.Random(9)) for k in range(4)]
        assert a == b


class TestRetryingClient:
    def test_retries_until_success(self, monkeypatch):
        transport = ScriptedTransport(monkeypatch, [
            err(ErrorCode.OVERLOADED), (0, protocol.error_response(
                ErrorCode.UNAVAILABLE, "connection refused")), ok(),
        ])
        client, slept = make_client()
        status, response = client.rpc({"v": 1, "type": "stats"})
        assert status == 200 and response["ok"]
        assert transport.calls == 3
        assert client.retries == 2 and len(slept) == 2

    def test_gives_up_after_max_attempts(self, monkeypatch):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        transport = ScriptedTransport(
            monkeypatch, [err(ErrorCode.OVERLOADED)] * 3
        )
        client, slept = make_client(policy=policy)
        status, response = client.rpc({"v": 1, "type": "stats"})
        assert status == 503 and response["error"]["code"] == "overloaded"
        assert transport.calls == 3 and len(slept) == 2

    def test_4xx_refusals_are_never_retried(self, monkeypatch):
        transport = ScriptedTransport(
            monkeypatch, [err(ErrorCode.CONFLICT, status=409)]
        )
        client, slept = make_client()
        status, _ = client.rpc({"v": 1, "type": "submit", "job": {"id": 1}})
        assert status == 409
        assert transport.calls == 1 and slept == []

    def test_submit_without_id_gets_exactly_one_attempt(self, monkeypatch):
        # Without an explicit id the server cannot deduplicate a retry;
        # each resend would create a brand-new job.
        transport = ScriptedTransport(
            monkeypatch, [(0, protocol.error_response(
                ErrorCode.UNAVAILABLE, "timed out"))]
        )
        client, slept = make_client()
        status, _ = client.rpc(
            {"v": 1, "type": "submit", "job": {"runtime": 1.0}}
        )
        assert status == 0
        assert transport.calls == 1 and slept == []

    def test_submit_with_id_is_retried(self, monkeypatch):
        transport = ScriptedTransport(monkeypatch, [
            (0, protocol.error_response(ErrorCode.UNAVAILABLE, "reset")), ok(),
        ])
        client, _ = make_client()
        status, _ = client.rpc({"v": 1, "type": "submit", "job": {"id": 5}})
        assert status == 200 and transport.calls == 2

    def test_server_retry_after_overrides_backoff(self, monkeypatch):
        ScriptedTransport(monkeypatch, [
            err(ErrorCode.OVERLOADED, retry_after=7.5), ok(),
        ])
        client, slept = make_client()
        client.rpc({"v": 1, "type": "stats"})
        assert slept == [7.5]

    def test_backoff_schedule_is_deterministic(self, monkeypatch):
        responses = [err(ErrorCode.OVERLOADED)] * 4 + [ok()]
        ScriptedTransport(monkeypatch, list(responses))
        client_a, slept_a = make_client(seed=21)
        client_a.rpc({"v": 1, "type": "stats"})
        ScriptedTransport(monkeypatch, list(responses))
        client_b, slept_b = make_client(seed=21)
        client_b.rpc({"v": 1, "type": "stats"})
        assert slept_a == slept_b and len(slept_a) == 4

    def test_transport_errors_against_dead_port_are_typed(self):
        # No server behind this port: the plain client must map the
        # refused connection to a status-0 unavailable result.
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        status, response = client.rpc({"v": 1, "type": "stats"})
        assert status == 0
        assert response["error"]["code"] == "unavailable"


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        t = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, recovery_time=10.0,
                                 clock=lambda: t[0])
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_probe_closes_on_success(self):
        t = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=5.0,
                                 clock=lambda: t[0])
        breaker.record_failure()
        assert not breaker.allow()
        t[0] = 5.0
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # everyone else keeps waiting
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_reopens_on_failure(self):
        t = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, recovery_time=5.0,
                                 clock=lambda: t[0])
        for _ in range(3):
            breaker.record_failure()
        t[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed: re-open immediately
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opened_at == 6.0

    def test_client_fast_fails_while_open(self, monkeypatch):
        t = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=1000.0,
                                 clock=lambda: t[0])
        transport = ScriptedTransport(monkeypatch, [err(ErrorCode.INTERNAL,
                                                        status=500)])
        policy = RetryPolicy(max_attempts=4, base_delay=0.01)
        client, _ = make_client(policy=policy, breaker=breaker)
        status, response = client.rpc({"v": 1, "type": "stats"})
        # First attempt hits the wire and opens the circuit; the other
        # three fail fast without touching the transport.
        assert transport.calls == 1
        assert client.fast_failures == 3
        assert status == 0 and response["error"]["code"] == "unavailable"
        assert "circuit breaker" in response["error"]["message"]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=0.0)

    def test_client_stats_shape(self):
        client, _ = make_client(breaker=CircuitBreaker())
        stats = client.client_stats
        assert stats == {
            "attempts": 0, "retries": 0, "fast_failures": 0,
            "breaker_state": "closed", "breaker_failures": 0,
        }
