"""End-to-end trace determinism: live vs replayed vs WAL-recovered.

The tentpole guarantee under test: `repro trace <job-id>` reconstructs
the same byte-identical span tree whether the engine is the live one
that decided the job, a fresh engine that replayed the WAL (including
after a scripted mid-trace crash), or an engine restored from a
checkpoint.  Trace ids are minted from (config seed, submit sequence,
job id) only, so no recovery path may disturb any of the three.
"""

import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs
from repro.service import checkpoint as checkpoint_mod
from repro.service import protocol
from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.faults import CrashPoint, FaultInjector, FaultSpec
from repro.service.loadgen import ServiceClient, job_request_payload
from repro.service.server import AdmissionService, ServiceServer
from repro.service.wal import WriteAheadLog, recover
from repro.obs.tracing import canonical_json
from repro.sim.trace import EventTrace

CRASH_POINTS = ("wal.before_append", "wal.after_append", "wal.after_apply")


def scenario(policy: str = "librarisk") -> ScenarioConfig:
    return ScenarioConfig(policy=policy, num_jobs=40, num_nodes=8, seed=31)


def submit_body(job) -> bytes:
    return json.dumps({
        "v": protocol.PROTOCOL_VERSION, "type": "submit",
        "job": job_request_payload(job),
    }).encode()


def fresh_service(config: ScenarioConfig, wal_path, faults=None) -> AdmissionService:
    engine = AdmissionEngine(EngineConfig(
        policy=config.policy, num_nodes=config.num_nodes,
    ))
    wal = WriteAheadLog.open(str(wal_path), config=engine.config.as_dict())
    return AdmissionService(engine, wal=wal, faults=faults)


def all_traces(engine: AdmissionEngine) -> dict[int, str]:
    """Canonical JSON of every decided job's trace, keyed by job id."""
    return {
        job_id: canonical_json(engine.trace(job_id))
        for job_id in sorted(engine._decision_index)
    }


class TestWalRecoveryParity:
    def test_recovered_traces_are_byte_identical(self, tmp_path):
        config = scenario()
        jobs = build_scenario_jobs(config)
        service = fresh_service(config, tmp_path / "wal.log")
        for job in jobs:
            status, response = service.handle(submit_body(job))
            assert status == 200
            # The ack carries the trace id the WAL frame recorded.
            assert response["trace"] == service.engine.trace_ids[job.job_id]
        status, _ = service.handle(b'{"v": 1, "type": "drain"}')
        assert status == 200
        service.close_wal()
        live = all_traces(service.engine)

        recovered_engine, _ = recover(str(tmp_path / "wal.log"))
        assert all_traces(recovered_engine) == live
        assert recovered_engine.trace_ids == service.engine.trace_ids
        assert recovered_engine.wal_lsns == service.engine.wal_lsns

    def test_wal_append_span_carries_the_lsn(self, tmp_path):
        config = scenario()
        jobs = build_scenario_jobs(config)
        service = fresh_service(config, tmp_path / "wal.log")
        for job in jobs[:3]:
            service.handle(submit_body(job))
        service.close_wal()
        trace = service.engine.trace(jobs[0].job_id)
        wal_span = next(
            s for s in trace["spans"] if s["name"] == "wal.append"
        )
        assert wal_span["attrs"]["lsn"] == service.engine.wal_lsns[jobs[0].job_id]

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_traces_survive_crash_at_kill_point(self, tmp_path, point):
        config = scenario()
        jobs = build_scenario_jobs(config)

        reference = fresh_service(config, tmp_path / "ref.log")
        for job in jobs:
            reference.handle(submit_body(job))
        reference.handle(b'{"v": 1, "type": "drain"}')
        reference.close_wal()
        ref_traces = all_traces(reference.engine)

        injector = FaultInjector(FaultSpec(crash_point=point, crash_at=15))
        crashing = fresh_service(config, tmp_path / "crash.log", faults=injector)
        crashed_at = None
        for index, job in enumerate(jobs):
            try:
                crashing.handle(submit_body(job))
            except CrashPoint:
                crashed_at = index
                break
        assert crashed_at is not None, "the scripted crash never fired"

        engine, _ = recover(str(tmp_path / "crash.log"))
        resumed = AdmissionService(engine, wal=WriteAheadLog.open(
            str(tmp_path / "crash.log"), config=engine.config.as_dict(),
        ))
        for job in jobs[crashed_at:]:
            status, _ = resumed.handle(submit_body(job))
            assert status == 200
        resumed.handle(b'{"v": 1, "type": "drain"}')
        resumed.close_wal()

        assert all_traces(resumed.engine) == ref_traces


class TestCheckpointParity:
    def test_trace_context_survives_checkpoint_restore(self, tmp_path):
        config = scenario()
        jobs = build_scenario_jobs(config)
        engine = AdmissionEngine(EngineConfig(
            policy=config.policy, num_nodes=config.num_nodes,
        ))
        for job in jobs[:20]:
            engine.submit(job)
        checkpoint_mod.save(engine, str(tmp_path / "snap.ckpt"))
        restored = checkpoint_mod.load(str(tmp_path / "snap.ckpt"))

        assert restored._submit_seq == engine._submit_seq
        assert restored.trace_ids == engine.trace_ids
        assert all_traces(restored) == all_traces(engine)
        # The windowed telemetry is rebuilt from the decision log.
        assert restored.window is not None
        assert restored.window.snapshot(restored.now) == \
            engine.window.snapshot(engine.now)

        # Ids minted after the restore continue the original sequence
        # (fresh job objects per engine: submission mutates job state).
        for job in jobs[20:]:
            engine.submit(job)
        for job in build_scenario_jobs(config)[20:]:
            restored.submit(job)
        assert restored.trace_ids == engine.trace_ids

    def test_pre_tracing_checkpoint_still_loads(self, tmp_path):
        """A legacy snapshot without the `trace` block restores cleanly."""
        engine = AdmissionEngine(EngineConfig(policy="edf", num_nodes=4))
        jobs = build_scenario_jobs(scenario("edf"))
        for job in jobs[:5]:
            engine.submit(job)
        path = tmp_path / "snap.ckpt"
        checkpoint_mod.save(engine, str(path))
        snap = json.loads(path.read_text())
        snap.pop("trace", None)
        # Dropping the checksum takes the legacy (pre-checksum) load
        # path, which is exactly what a pre-tracing snapshot is.
        snap.pop("checksum", None)
        path.write_text(json.dumps(snap))
        restored = checkpoint_mod.load(str(path))
        assert restored._submit_seq == 0
        assert restored.trace_ids == {}
        # Traces still render via the seq-0 fallback mint.
        assert restored.trace(jobs[0].job_id)["trace_id"]


class TestServiceEndpoints:
    @pytest.fixture
    def server(self):
        engine = AdmissionEngine(
            EngineConfig(policy="librarisk", num_nodes=8, rating=1.0)
        )
        engine.sim.trace = EventTrace(capacity=4096)
        srv = ServiceServer(AdmissionService(engine), port=0).start()
        yield srv
        srv.stop()

    @pytest.fixture
    def client(self, server):
        return ServiceClient(server.url, timeout=5.0)

    def submit(self, client, job):
        status, response = client.rpc({
            "v": protocol.PROTOCOL_VERSION, "type": "submit",
            "job": job_request_payload(job),
        })
        assert status == 200
        return response

    def test_trace_rpc_round_trips(self, server, client):
        jobs = build_scenario_jobs(scenario())[:5]
        for job in jobs:
            response = self.submit(client, job)
            assert response["trace"]
        status, payload = client.trace(jobs[0].job_id)
        assert status == 200
        trace = payload["trace"]
        assert trace["trace_id"] == server.service.engine.trace_ids[jobs[0].job_id]
        assert canonical_json(trace) == canonical_json(
            server.service.engine.trace(jobs[0].job_id)
        )

    def test_trace_rpc_unknown_job_is_404(self, client):
        status, payload = client.trace(999)
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_healthz_contract(self, server, client):
        jobs = build_scenario_jobs(scenario())[:5]
        for job in jobs:
            self.submit(client, job)
        import urllib.request

        with urllib.request.urlopen(f"{server.url}/healthz", timeout=5.0) as resp:
            assert resp.status == 200
            health = json.loads(resp.read())
        assert health["ok"] is True
        assert health["status"] == "ok"
        assert health["policy"] == "librarisk"
        slo = health["slo"]
        assert slo["deadline_miss_objective"] == 0.05
        assert slo["burn_rate"] == slo["deadline_miss_ratio"] / 0.05
        wal = health["wal"]
        assert wal["enabled"] is False
        back = health["backpressure"]
        assert back["draining"] is False
        assert back["shed_total"] == 0

    def test_metrics_surface_windows_cache_and_trace_gauges(self, server, client):
        jobs = build_scenario_jobs(scenario())[:10]
        for job in jobs:
            self.submit(client, job)
        import urllib.request

        with urllib.request.urlopen(f"{server.url}/metrics", timeout=5.0) as resp:
            text = resp.read().decode()
        assert 'engine_window_submitted{policy="librarisk"}' in text
        assert 'engine_window_loss_ratio{policy="librarisk"}' in text
        assert "engine_trace_events_recorded" in text
        assert "engine_trace_events_dropped" in text
        assert 'engine_cache_stat{stat="' in text

    def test_wal_latency_metrics_surface(self, tmp_path):
        config = scenario()
        service = fresh_service(config, tmp_path / "wal.log")
        for job in build_scenario_jobs(config)[:3]:
            service.handle(submit_body(job))
        text = service.prometheus_text()
        service.close_wal()
        assert "service_wal_append_seconds_count" in text
        assert "service_wal_applied_lsn 3" in text
        assert "service_wal_fsyncs" in text

    def test_stats_include_window_snapshot(self, server, client):
        jobs = build_scenario_jobs(scenario())[:5]
        for job in jobs:
            self.submit(client, job)
        status, payload = client.stats()
        assert status == 200
        window = payload["stats"]["window"]
        assert window["window_s"] == 3600.0
        # The scenario's submit times span more than the trailing hour,
        # so only the recent suffix is inside the window.
        policy = window["policies"]["librarisk"]
        assert 1.0 <= policy["submitted"] <= 5.0
        assert policy["loss_ratio"] == policy["rejected"] / policy["submitted"]
