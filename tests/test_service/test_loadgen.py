"""Tests for the open-loop load generator and its statistics."""

import pytest

from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.loadgen import (
    LoadGenerator,
    ServiceClient,
    job_request_payload,
    percentile,
)
from repro.service.server import AdmissionService, ServiceServer
from tests.conftest import make_job


class TestPercentile:
    def test_endpoints_and_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 4.0
        assert percentile(data, 50.0) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="100"):
            percentile([1.0], 101.0)


class TestJobRequestPayload:
    def test_carries_actual_runtime(self):
        job = make_job(runtime=10.0, estimate=20.0, deadline=99.0, job_id=5)
        payload = job_request_payload(job)
        assert payload["runtime"] == 10.0
        assert payload["estimated_runtime"] == 20.0
        assert payload["id"] == 5
        assert "user" not in payload


class TestLoadGenerator:
    @pytest.fixture
    def server(self):
        engine = AdmissionEngine(
            EngineConfig(policy="librarisk", num_nodes=4, rating=1.0)
        )
        srv = ServiceServer(AdmissionService(engine), port=0).start()
        yield srv
        srv.stop()

    def jobs(self, n: int):
        return [
            make_job(runtime=5.0, deadline=1000.0, submit=float(i), job_id=i + 1)
            for i in range(n)
        ]

    def test_validation(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ValueError, match="speedup"):
            LoadGenerator(client, [], speedup=0.0)
        with pytest.raises(ValueError, match="workers"):
            LoadGenerator(client, [], workers=-1)

    def test_empty_stream(self, server):
        report = LoadGenerator(ServiceClient(server.url), []).run()
        assert report.requests == 0
        assert report.rps == 0.0

    def test_ordered_replay_reports_latency_and_outcomes(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        report = LoadGenerator(client, self.jobs(10), speedup=1e9).run()
        assert report.requests == 10
        assert report.errors == 0
        assert report.ok == 10
        assert sum(report.outcomes.values()) == 10
        assert report.rps > 0
        assert 0 < report.latency_p50 <= report.latency_p99 <= report.latency_max
        assert len(report.results) == 10
        # Ordered sender: requests went out in submit-time order.
        assert [r.job_id for r in report.results] == list(range(1, 11))

    def test_pacing_honours_speedup(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        # 4 jobs spaced 1 trace-second apart at speedup 20 → ≥ 150 ms total.
        report = LoadGenerator(client, self.jobs(4), speedup=20.0).run()
        assert report.duration >= 0.15
        assert report.errors == 0

    def test_report_as_dict(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        report = LoadGenerator(client, self.jobs(3), speedup=1e9).run()
        data = report.as_dict()
        assert data["requests"] == 3
        assert data["rps"] == report.rps
        assert set(data["outcomes"]) <= {"accepted", "queued", "rejected"}

    def test_connection_failure_counts_as_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        report = LoadGenerator(client, self.jobs(2), speedup=1e9).run()
        assert report.requests == 2
        assert report.errors == 2
        # Transport failures surface as the typed client-side code, so
        # the run completes and counts them instead of aborting.
        assert report.outcomes.get("unavailable") == 2
        assert all(r.status == 0 for r in report.results)
