"""Tests for the open-loop load generator and its statistics."""

import pytest

from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.loadgen import (
    DEFAULT_LATENCY_BUCKETS,
    LoadGenerator,
    ServiceClient,
    job_request_payload,
    percentile,
)
from repro.service.server import AdmissionService, ServiceServer
from tests.conftest import make_job


class TestPercentile:
    def test_endpoints_and_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 4.0
        assert percentile(data, 50.0) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="100"):
            percentile([1.0], 101.0)


class TestJobRequestPayload:
    def test_carries_actual_runtime(self):
        job = make_job(runtime=10.0, estimate=20.0, deadline=99.0, job_id=5)
        payload = job_request_payload(job)
        assert payload["runtime"] == 10.0
        assert payload["estimated_runtime"] == 20.0
        assert payload["id"] == 5
        assert "user" not in payload


class TestLoadGenerator:
    @pytest.fixture
    def server(self):
        engine = AdmissionEngine(
            EngineConfig(policy="librarisk", num_nodes=4, rating=1.0)
        )
        srv = ServiceServer(AdmissionService(engine), port=0).start()
        yield srv
        srv.stop()

    def jobs(self, n: int):
        return [
            make_job(runtime=5.0, deadline=1000.0, submit=float(i), job_id=i + 1)
            for i in range(n)
        ]

    def test_validation(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ValueError, match="speedup"):
            LoadGenerator(client, [], speedup=0.0)
        with pytest.raises(ValueError, match="workers"):
            LoadGenerator(client, [], workers=-1)

    def test_empty_stream(self, server):
        report = LoadGenerator(ServiceClient(server.url), []).run()
        assert report.requests == 0
        assert report.rps == 0.0

    def test_ordered_replay_reports_latency_and_outcomes(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        report = LoadGenerator(client, self.jobs(10), speedup=1e9).run()
        assert report.requests == 10
        assert report.errors == 0
        assert report.ok == 10
        assert sum(report.outcomes.values()) == 10
        assert report.rps > 0
        assert 0 < report.latency_p50 <= report.latency_p99 <= report.latency_max
        assert len(report.results) == 10
        # Ordered sender: requests went out in submit-time order.
        assert [r.job_id for r in report.results] == list(range(1, 11))

    def test_pacing_honours_speedup(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        # 4 jobs spaced 1 trace-second apart at speedup 20 → ≥ 150 ms total.
        report = LoadGenerator(client, self.jobs(4), speedup=20.0).run()
        assert report.duration >= 0.15
        assert report.errors == 0

    def test_report_as_dict(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        report = LoadGenerator(client, self.jobs(3), speedup=1e9).run()
        data = report.as_dict()
        assert data["requests"] == 3
        assert data["rps"] == report.rps
        assert set(data["outcomes"]) <= {"accepted", "queued", "rejected"}

    def test_connection_failure_counts_as_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        report = LoadGenerator(client, self.jobs(2), speedup=1e9).run()
        assert report.requests == 2
        assert report.errors == 2
        # Transport failures surface as the typed client-side code, so
        # the run completes and counts them instead of aborting.
        assert report.outcomes.get("unavailable") == 2
        assert all(r.status == 0 for r in report.results)


class TestLatencyHistogram:
    """The configurable latency buckets and the p99.9 summary column."""

    @pytest.fixture
    def server(self):
        engine = AdmissionEngine(
            EngineConfig(policy="librarisk", num_nodes=4, rating=1.0)
        )
        srv = ServiceServer(AdmissionService(engine), port=0).start()
        yield srv
        srv.stop()

    def jobs(self, n: int):
        return [
            make_job(runtime=5.0, deadline=1000.0, submit=float(i), job_id=i + 1)
            for i in range(n)
        ]

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert all(b > 0 for b in DEFAULT_LATENCY_BUCKETS)

    def test_bucket_validation(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ValueError, match="ascending"):
            LoadGenerator(client, self.jobs(1), latency_buckets=[0.1, 0.1])
        with pytest.raises(ValueError, match="positive"):
            LoadGenerator(client, self.jobs(1), latency_buckets=[-1.0, 0.1])
        with pytest.raises(ValueError, match="empty"):
            LoadGenerator(client, self.jobs(1), latency_buckets=[])

    def test_histogram_is_cumulative_with_inf(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        report = LoadGenerator(
            client, self.jobs(8), speedup=1e9,
            latency_buckets=[0.5, 2.0, 60.0],
        ).run()
        hist = report.latency_histogram
        assert list(hist) == ["0.5", "2", "60", "+Inf"]
        counts = list(hist.values())
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert counts[-1] == 8  # +Inf counts every observation
        assert hist["60"] == 8  # local requests land well under 60 s

    def test_p999_is_reported_and_ordered(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        report = LoadGenerator(client, self.jobs(8), speedup=1e9).run()
        assert report.latency_p99 <= report.latency_p999 <= report.latency_max
        assert "p99.9=" in str(report)
        data = report.as_dict()
        assert data["latency_p999"] == report.latency_p999
        assert data["latency_histogram"] == report.latency_histogram

    def test_empty_stream_reports_empty_histogram(self, server):
        client = ServiceClient(server.url, timeout=5.0)
        report = LoadGenerator(client, [], speedup=1e9).run()
        assert report.latency_p999 == 0.0
        assert report.latency_histogram == {}
