"""Replay parity: the online engine reproduces batch runs byte-for-byte.

``run_scenario`` batch-submits a trace and runs the kernel to the end;
``replay_scenario`` feeds the same jobs through the engine one at a
time.  The determinism contract says both execute the identical event
sequence — so their metrics, and the full observability record streams
(span records aside: replay has no batch phases), must match exactly.
"""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs, run_scenario
from repro.obs.exporters import jsonl_line
from repro.obs.session import ObsSession
from repro.service.engine import engine_for_scenario
from repro.service.replay import replay_jobs, replay_scenario

POLICIES = ("edf", "libra", "librarisk")


def canonical_records(session: ObsSession) -> list[str]:
    """The session's record stream as canonical JSON lines, sans spans."""
    return [
        jsonl_line(record)
        for record in session.records
        if record.get("type") != "span"
    ]


class TestParityWithBatch:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_byte_identical_exports_small_scale(self, policy):
        config = ScenarioConfig(policy=policy, num_jobs=150, num_nodes=16, seed=23)

        batch_session = ObsSession(scenario=config)
        batch = run_scenario(config, obs=batch_session)

        replay_session = ObsSession(scenario=config)
        engine, report = replay_scenario(config, obs=replay_session)

        assert report.metrics.as_dict() == batch.metrics.as_dict()
        assert report.horizon == batch.horizon
        assert report.events == batch.events
        assert canonical_records(replay_session) == canonical_records(batch_session)

    def test_byte_identical_exports_full_sdsc_default(self):
        # The acceptance bar: the paper-scale default scenario (3000
        # synthetic SDSC-SP2-like jobs, 128 nodes) replayed through the
        # engine exports the same bytes as the batch path.
        config = ScenarioConfig(policy="librarisk")

        batch_session = ObsSession(scenario=config)
        batch = run_scenario(config, obs=batch_session)

        replay_session = ObsSession(scenario=config)
        _, report = replay_scenario(config, obs=replay_session)

        assert report.metrics.as_dict() == batch.metrics.as_dict()
        assert canonical_records(replay_session) == canonical_records(batch_session)


class TestReplayJobs:
    def test_report_counts_outcomes(self):
        config = ScenarioConfig(policy="librarisk", num_jobs=60, num_nodes=8, seed=3)
        engine = engine_for_scenario(config)
        report = replay_jobs(engine, build_scenario_jobs(config))
        assert report.submitted == 60
        assert sum(report.outcomes.values()) == 60
        assert set(report.outcomes) <= {"accepted", "queued", "rejected"}
        assert len(report.decisions) == 60
        assert engine.sim.pending == 0  # drained

    def test_no_drain_leaves_work_pending(self):
        config = ScenarioConfig(policy="librarisk", num_jobs=40, num_nodes=8, seed=3)
        engine = engine_for_scenario(config)
        report = replay_jobs(engine, build_scenario_jobs(config), drain=False)
        assert report.submitted == 40
        assert engine.sim.pending > 0

    def test_report_as_dict_is_jsonable(self):
        import json

        config = ScenarioConfig(policy="edf", num_jobs=30, num_nodes=8, seed=3)
        _, report = replay_scenario(config)
        encoded = json.dumps(report.as_dict())
        assert '"submitted": 30' in encoded
