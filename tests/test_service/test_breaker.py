"""Unit tests for the circuit breaker and the failover parking lot."""

import pytest

from repro.service.sharding.breaker import CLOSED, HALF_OPEN, OPEN, ShardBreaker
from repro.service.sharding.parking import ParkingLot


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_breaker(threshold=3, reset=1.0):
    clock = FakeClock()
    breaker = ShardBreaker(
        0, failure_threshold=threshold, reset_timeout=reset, clock=clock
    )
    return breaker, clock


class TestShardBreaker:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.retry_after() == 0.0

    def test_trips_after_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken: 1, not 2

    def test_open_reports_remaining_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset=2.0)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(2.0)
        clock.advance(1.5)
        assert breaker.retry_after() == pytest.approx(0.5)

    def test_cooldown_expiry_half_opens(self):
        breaker, clock = make_breaker(threshold=1, reset=1.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()

    def test_half_open_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.trips == 1

    def test_half_open_failure_restarts_the_cooldown(self):
        breaker, clock = make_breaker(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(1.0)
        assert breaker.trips == 2

    def test_snapshot_shape(self):
        breaker, _ = make_breaker(threshold=1, reset=1.0)
        snap = breaker.snapshot()
        assert snap == {"state": CLOSED, "consecutive_failures": 0, "trips": 0}
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["trips"] == 1
        assert snap["retry_after"] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardBreaker(0, failure_threshold=0)
        with pytest.raises(ValueError):
            ShardBreaker(0, reset_timeout=0.0)


class TestParkingLot:
    def test_fifo_order_is_preserved(self):
        lot = ParkingLot(0, capacity=8)
        for job_id in (5, 2, 9):
            assert lot.park(job_id, str(job_id).encode())
        taken = lot.take_all()
        assert [item.key for item in taken] == [5, 2, 9]
        assert len(lot) == 0

    def test_capacity_rejects_and_counts(self):
        lot = ParkingLot(0, capacity=2)
        assert lot.park(1, b"a")
        assert lot.park(2, b"b")
        assert not lot.park(3, b"c")
        assert lot.rejected_total == 1
        assert lot.parked_total == 2

    def test_repark_is_idempotent_and_keeps_first_body(self):
        lot = ParkingLot(0, capacity=2)
        assert lot.park(7, b"first")
        assert lot.park(7, b"second")  # retry: no new slot
        assert len(lot) == 1
        assert lot.take_all()[0].body == b"first"

    def test_anonymous_submits_never_collide(self):
        lot = ParkingLot(0, capacity=4)
        for _ in range(3):
            assert lot.park(None, b"x")
        assert len(lot) == 3

    def test_requeue_front_restores_head_order(self):
        lot = ParkingLot(0, capacity=8)
        for job_id in (1, 2, 3):
            lot.park(job_id, str(job_id).encode())
        taken = lot.take_all()
        # Flush got through item 1 only; 2 and 3 go back to the head.
        lot.park(9, b"late")
        lot.requeue_front(taken[1:])
        assert [item.key for item in lot.take_all()] == [2, 3, 9]

    def test_zero_capacity_lot_is_disabled(self):
        lot = ParkingLot(0, capacity=0)
        assert not lot.enabled
        assert not lot.park(1, b"a")

    def test_validation(self):
        with pytest.raises(ValueError):
            ParkingLot(0, capacity=-1)

    def test_snapshot_shape(self):
        lot = ParkingLot(3, capacity=2)
        lot.park(1, b"a")
        lot.park(2, b"b")
        lot.park(3, b"c")
        lot.note_flushed(1)
        assert lot.snapshot() == {
            "parked": 2, "capacity": 2, "parked_total": 2,
            "flushed_total": 1, "rejected_total": 1,
        }
