"""Unit tests for the shard plan, path namespacing, and metric merging."""

import zlib

import pytest

from repro.experiments.bench import check_shard_scaling
from repro.obs.tracing import seed_from_config
from repro.service.engine import EngineConfig
from repro.service.sharding import (
    merge_scenario_metrics,
    plan_shards,
    shard_for_job,
    shard_for_submit,
    shard_for_user,
    shard_node_counts,
    shard_path,
    shard_port,
)


class TestNodeCounts:
    def test_even_split(self):
        assert shard_node_counts(128, 4) == (32, 32, 32, 32)

    def test_remainder_goes_to_the_first_shards(self):
        assert shard_node_counts(10, 3) == (4, 3, 3)

    def test_one_node_per_shard_floor(self):
        assert shard_node_counts(5, 5) == (1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            shard_node_counts(3, 4)

    def test_counts_always_sum_and_stay_balanced(self):
        for nodes in range(1, 40):
            for shards in range(1, nodes + 1):
                counts = shard_node_counts(nodes, shards)
                assert sum(counts) == nodes
                assert max(counts) - min(counts) <= 1


class TestRoutingHash:
    def test_job_hash_is_pinned(self):
        # Pinned values: these are wire/WAL compatibility, not style.
        # crc32 over b"job:<id>" must never silently change.
        assert [shard_for_job(i, 4) for i in range(1, 9)] == \
            [1, 3, 1, 2, 0, 2, 0, 1]

    def test_user_hash_is_pinned(self):
        assert [shard_for_user(u, 4) for u in
                ("alice", "bob", "carol", "dave")] == [2, 2, 2, 0]

    def test_hash_matches_the_documented_formula(self):
        assert shard_for_job(7, 4) == zlib.crc32(b"job:7") % 4
        assert shard_for_user("eve", 3) == zlib.crc32(b"user:eve") % 3

    def test_fallback_chain_id_then_user_then_zero(self):
        assert shard_for_submit(7, "alice", 4) == shard_for_job(7, 4)
        assert shard_for_submit(None, "alice", 4) == shard_for_user("alice", 4)
        assert shard_for_submit(None, None, 4) == 0

    def test_every_shard_is_reachable(self):
        owners = {shard_for_job(i, 4) for i in range(100)}
        assert owners == {0, 1, 2, 3}


class TestPlanShards:
    def base(self, **kw) -> EngineConfig:
        return EngineConfig(policy="librarisk", num_nodes=128, **kw)

    def test_single_shard_is_the_base_config_verbatim(self):
        base = self.base()
        (only,) = plan_shards(base, 1)
        assert only is base
        assert only.as_dict() == base.as_dict()

    def test_shard_fields_are_omitted_from_unsharded_as_dict(self):
        # Pre-sharding WAL headers and trace seeds hash the config
        # dict; an unsharded engine must keep serializing exactly as it
        # did before shard identity existed.
        data = self.base().as_dict()
        assert "shard_id" not in data
        assert "shard_count" not in data

    def test_plan_slices_nodes_and_stamps_identity(self):
        configs = plan_shards(self.base(), 4)
        assert [c.num_nodes for c in configs] == [32, 32, 32, 32]
        assert [(c.shard_id, c.shard_count) for c in configs] == \
            [(i, 4) for i in range(4)]

    def test_every_shard_gets_a_distinct_trace_seed(self):
        configs = plan_shards(self.base(), 4)
        seeds = {seed_from_config(c.as_dict()) for c in configs}
        assert len(seeds) == 4
        assert seed_from_config(self.base().as_dict()) not in seeds

    def test_resharding_a_shard_is_rejected(self):
        sharded = plan_shards(self.base(), 2)[0]
        with pytest.raises(ValueError):
            plan_shards(sharded, 2)

    def test_shard_identity_is_validated(self):
        with pytest.raises(ValueError):
            EngineConfig(shard_id=2, shard_count=2)
        with pytest.raises(ValueError):
            EngineConfig(shard_count=0)


class TestShardPaths:
    def test_suffix_lands_before_the_extension(self):
        assert shard_path("/var/svc.wal", 0, 4) == "/var/svc.shard0of4.wal"
        assert shard_path("state/ckpt.json", 3, 4) == \
            "state/ckpt.shard3of4.json"

    def test_extensionless_base(self):
        assert shard_path("wal", 1, 2) == "wal.shard1of2"

    def test_paths_never_collide_in_a_shared_directory(self):
        paths = {shard_path("/tmp/fleet.wal", i, 8) for i in range(8)}
        assert len(paths) == 8

    def test_bad_identity_is_rejected(self):
        with pytest.raises(ValueError):
            shard_path("w.wal", 4, 4)
        with pytest.raises(ValueError):
            shard_path("w.wal", 0, 0)

    def test_worker_ports_follow_the_router(self):
        assert [shard_port(8331, i) for i in range(3)] == [8332, 8333, 8334]
        assert shard_port(0, 2) == 0


def metrics_dict(**overrides) -> dict:
    base = {
        "total_submitted": 10, "accepted": 8, "rejected": 2, "completed": 7,
        "unfinished": 1, "failed": 0, "deadlines_fulfilled": 6,
        "pct_deadlines_fulfilled": 60.0, "avg_slowdown": 1.5,
        "avg_delay_of_late_jobs": 4.0, "completed_late": 1,
        "utilisation": 0.5, "acceptance_pct": 80.0,
        "high_pct_fulfilled": 50.0, "low_pct_fulfilled": 62.5,
        "high_submitted": 2, "high_fulfilled": 1,
        "low_submitted": 8, "low_fulfilled": 5,
    }
    base.update(overrides)
    return base


class TestMergeScenarioMetrics:
    def test_single_shard_passes_through_untouched(self):
        one = metrics_dict()
        assert merge_scenario_metrics([one], [128]) == one

    def test_counts_sum_and_ratios_recompute_exactly(self):
        a = metrics_dict()
        b = metrics_dict(
            total_submitted=30, accepted=15, deadlines_fulfilled=12,
            completed_late=3, avg_slowdown=2.5, avg_delay_of_late_jobs=8.0,
            utilisation=0.25, high_submitted=10, high_fulfilled=4,
            low_submitted=20, low_fulfilled=8,
        )
        merged = merge_scenario_metrics([a, b], [32, 96])
        assert merged["total_submitted"] == 40
        assert merged["accepted"] == 23
        assert merged["pct_deadlines_fulfilled"] == 100.0 * 18 / 40
        assert merged["acceptance_pct"] == 100.0 * 23 / 40
        # Job-count-weighted means, not naive averages of averages.
        assert merged["avg_slowdown"] == (1.5 * 6 + 2.5 * 12) / 18
        assert merged["avg_delay_of_late_jobs"] == (4.0 * 1 + 8.0 * 3) / 4
        # Node-count-weighted utilisation.
        assert merged["utilisation"] == (0.5 * 32 + 0.25 * 96) / 128
        assert merged["high_pct_fulfilled"] == 100.0 * 5 / 12
        assert merged["low_pct_fulfilled"] == 100.0 * 13 / 28

    def test_key_order_matches_a_single_engine_dict(self):
        merged = merge_scenario_metrics(
            [metrics_dict(), metrics_dict()], [64, 64]
        )
        assert list(merged) == list(metrics_dict())

    def test_zero_denominators_do_not_divide(self):
        empty = metrics_dict(
            total_submitted=0, accepted=0, rejected=0, completed=0,
            unfinished=0, deadlines_fulfilled=0, completed_late=0,
            utilisation=0.0, avg_slowdown=0.0, avg_delay_of_late_jobs=0.0,
            high_submitted=0, high_fulfilled=0, low_submitted=0,
            low_fulfilled=0,
        )
        merged = merge_scenario_metrics([empty, empty], [4, 4])
        assert merged["pct_deadlines_fulfilled"] == 0.0
        assert merged["avg_slowdown"] == 0.0

    def test_mismatched_inputs_are_rejected(self):
        with pytest.raises(ValueError):
            merge_scenario_metrics([metrics_dict()], [64, 64])
        with pytest.raises(ValueError):
            merge_scenario_metrics([], [])


class TestShardScalingGate:
    def section(self, rates, errors=0):
        counts = [1, 2, 4][: len(rates)]
        shards = {
            str(c): {"wall_s": 1.0, "jobs_per_sec": r, "ok": 100,
                     "errors": errors, "frames": 2}
            for c, r in zip(counts, rates)
        }
        base = rates[0]
        scaling = {
            str(c): round(r / base, 2)
            for c, r in zip(counts[1:], rates[1:])
        }
        return {"shards": shards, "scaling": scaling}

    def test_passes_on_good_scaling(self):
        assert check_shard_scaling(self.section([1000, 1900, 2600])) == []

    def test_fails_below_the_floor(self):
        failures = check_shard_scaling(self.section([1000, 1100, 1500]))
        assert len(failures) == 1
        assert "1.50x" in failures[0]

    def test_dropped_submits_fail_regardless_of_speed(self):
        failures = check_shard_scaling(
            self.section([1000, 2000, 4000], errors=3)
        )
        assert any("failed" in f for f in failures)

    def test_missing_multi_shard_run_is_a_failure(self):
        failures = check_shard_scaling({"shards": {}, "scaling": {}})
        assert failures
