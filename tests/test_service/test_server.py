"""Tests for the HTTP service front-end and its backpressure limits."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.loadgen import ServiceClient
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import AdmissionService, ServiceServer


def make_service(**kwargs) -> AdmissionService:
    engine = AdmissionEngine(EngineConfig(policy="librarisk", num_nodes=4, rating=1.0))
    return AdmissionService(engine, **kwargs)


@pytest.fixture
def server():
    srv = ServiceServer(make_service(), port=0).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=5.0)


def submit_payload(job_id: int, submit_time: float = 0.0) -> dict:
    return {
        "id": job_id, "submit_time": submit_time, "runtime": 10.0,
        "estimated_runtime": 10.0, "numproc": 1, "deadline": 100.0,
    }


class TestEndpoints:
    def test_healthz(self, client):
        assert client.healthy()

    def test_submit_query_stats_drain(self, client):
        status, response = client.rpc(
            {"v": PROTOCOL_VERSION, "type": "submit", "job": submit_payload(1)}
        )
        assert status == 200
        assert response["decision"]["outcome"] == "accepted"

        status, response = client.query(1)
        assert status == 200
        assert response["job"]["id"] == 1

        status, response = client.stats()
        assert status == 200
        assert response["stats"]["submitted"] == 1

        status, response = client.drain()
        assert status == 200
        assert response["metrics"]["total_submitted"] == 1

    def test_query_unknown_job_is_404(self, client):
        status, response = client.query(999)
        assert status == 404
        assert response["error"]["code"] == "not_found"

    def test_out_of_order_submit_is_409(self, client):
        client.rpc({"v": PROTOCOL_VERSION, "type": "submit",
                    "job": submit_payload(1, submit_time=100.0)})
        status, response = client.rpc(
            {"v": PROTOCOL_VERSION, "type": "submit",
             "job": submit_payload(2, submit_time=5.0)}
        )
        assert status == 409
        assert response["error"]["code"] == "out_of_order"

    def test_conflicting_job_under_known_id_is_409(self, client):
        request = {"v": PROTOCOL_VERSION, "type": "submit", "job": submit_payload(7)}
        status, _ = client.rpc(request)
        assert status == 200
        request["job"] = {**submit_payload(7, submit_time=1.0), "runtime": 99.0}
        status, response = client.rpc(request)
        assert status == 409
        assert response["error"]["code"] == "conflict"

    def test_identical_resubmit_is_answered_idempotently(self, client, server):
        request = {"v": PROTOCOL_VERSION, "type": "submit", "job": submit_payload(8)}
        status, first = client.rpc(request)
        assert status == 200 and "duplicate" not in first
        # A retry arrives later; only submit_time may differ.
        request["job"] = submit_payload(8, submit_time=2.0)
        status, second = client.rpc(request)
        assert status == 200
        assert second["duplicate"] is True
        assert second["decision"] == first["decision"]
        dups = server.service.registry.get("service_submit_duplicates_total")
        assert dups is not None and dups.value == 1

    def test_bad_version_is_400(self, client):
        status, response = client.rpc({"v": 99, "type": "stats"})
        assert status == 400
        assert response["error"]["code"] == "bad_version"

    def test_unknown_path_is_404(self, server):
        request = urllib.request.Request(f"{server.url}/nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 404

    def test_stats_get_endpoint(self, server):
        with urllib.request.urlopen(f"{server.url}/v1/stats", timeout=5.0) as resp:
            payload = json.loads(resp.read())
        assert payload["ok"] is True
        assert payload["stats"]["submitted"] == 0

    def test_metrics_endpoint_exposes_latency_histogram(self, client, server):
        client.stats()
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=5.0) as resp:
            text = resp.read().decode()
        assert "service_request_seconds" in text
        assert 'type="stats"' in text

    def test_checkpoint_rpc_inline_and_to_path(self, client, tmp_path):
        client.rpc({"v": PROTOCOL_VERSION, "type": "submit",
                    "job": submit_payload(1)})
        status, response = client.checkpoint()
        assert status == 200
        assert response["snapshot"]["format"] == "repro-admission-engine"

        path = tmp_path / "server.ckpt.json"
        status, response = client.checkpoint(str(path))
        assert status == 200
        from repro.service import checkpoint as checkpoint_mod

        resumed = checkpoint_mod.load(str(path))
        assert resumed.query(1) is not None


class TestBackpressure:
    def test_oversized_request_is_413(self):
        server = ServiceServer(make_service(max_request_bytes=64), port=0).start()
        try:
            client = ServiceClient(server.url, timeout=5.0)
            big = {"v": PROTOCOL_VERSION, "type": "submit",
                   "job": {**submit_payload(1), "user": "x" * 200}}
            status, response = client.rpc(big)
            assert status == 413
            assert response["error"]["code"] == "too_large"
        finally:
            server.stop()

    def test_missing_content_length_is_411(self, server):
        # urllib always sets Content-Length for bytes bodies, so talk raw.
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=5.0)
        try:
            conn.putrequest("POST", "/v1/rpc", skip_accept_encoding=True)
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 411
        finally:
            conn.close()

    def test_queue_depth_zero_sheds_everything(self):
        # max_inflight=0 makes shedding deterministic: every request is
        # over the limit, exercising the 503/overloaded path without races.
        server = ServiceServer(make_service(max_inflight=0), port=0).start()
        try:
            client = ServiceClient(server.url, timeout=5.0)
            status, response = client.stats()
            assert status == 503
            assert response["error"]["code"] == "overloaded"
            shed = server.service.registry.get("service_requests_shed_total")
            assert shed is not None and shed.value == 1
        finally:
            server.stop()

    def test_draining_service_refuses_requests(self):
        service = make_service()
        service.draining = True
        status, response = service.handle(b'{"v": 1, "type": "stats"}')
        assert status == 503
        assert response["error"]["code"] == "shutting_down"
        assert response["error"]["retry_after"] == service.retry_after

    def test_shed_response_carries_retry_after(self):
        service = make_service(max_inflight=0, retry_after=2.5)
        status, response = service.handle(b'{"v": 1, "type": "stats"}')
        assert status == 503
        assert response["error"]["code"] == "overloaded"
        assert response["error"]["retry_after"] == 2.5

    def test_retry_after_http_header_rounds_up(self):
        server = ServiceServer(
            make_service(max_inflight=0, retry_after=1.2), port=0
        ).start()
        try:
            body = json.dumps({"v": PROTOCOL_VERSION, "type": "stats"}).encode()
            request = urllib.request.Request(
                f"{server.url}/v1/rpc", data=body,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5.0)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "2"
        finally:
            server.stop()


class TestServiceDirect:
    """Request handling without sockets (fast paths and edge cases)."""

    def test_handle_records_metrics(self):
        service = make_service()
        status, _ = service.handle(
            json.dumps({"v": PROTOCOL_VERSION, "type": "stats"}).encode()
        )
        assert status == 200
        counter = service.registry.get(
            "service_requests_total", type="stats", outcome="ok"
        )
        assert counter is not None and counter.value == 1
        histogram = service.registry.get("service_request_seconds", type="stats")
        assert histogram is not None and histogram.count == 1

    def test_handle_maps_protocol_error(self):
        service = make_service()
        status, response = service.handle(b"garbage")
        assert status == 400
        assert response["error"]["code"] == "bad_json"
        counter = service.registry.get(
            "service_requests_total", type="invalid", outcome="bad_json"
        )
        assert counter is not None and counter.value == 1

    def test_advance_rejected_on_live_clock(self):
        from repro.service.clock import WallClock

        engine = AdmissionEngine(
            EngineConfig(num_nodes=2, rating=1.0), clock=WallClock(speedup=1e9)
        )
        service = AdmissionService(engine)
        status, response = service.handle(
            json.dumps({"v": 1, "type": "advance", "to": 10.0}).encode()
        )
        assert status == 400
        assert "virtual clock" in response["error"]["message"]

    def test_unexpected_exception_maps_to_500_internal(self):
        service = make_service()

        def boom():
            raise RuntimeError("policy invariant violated")

        service.engine.poll = boom
        status, response = service.handle(
            json.dumps({"v": PROTOCOL_VERSION, "type": "stats"}).encode()
        )
        assert status == 500
        assert response["error"]["code"] == "internal"
        assert "policy invariant violated" in response["error"]["message"]
        # The service survives: the next request is handled normally.
        service.engine.poll = lambda: 0
        status, _ = service.handle(
            json.dumps({"v": PROTOCOL_VERSION, "type": "stats"}).encode()
        )
        assert status == 200

    def test_validation_limits(self):
        with pytest.raises(ValueError, match="max_request_bytes"):
            make_service(max_request_bytes=0)
        with pytest.raises(ValueError, match="max_inflight"):
            make_service(max_inflight=-1)

    def test_checkpoint_on_exit(self, tmp_path):
        path = tmp_path / "exit.ckpt.json"
        service = make_service()
        server = ServiceServer(service, port=0, checkpoint_on_exit=str(path)).start()
        client = ServiceClient(server.url, timeout=5.0)
        client.rpc({"v": PROTOCOL_VERSION, "type": "submit",
                    "job": submit_payload(7)})
        server.stop()
        from repro.service import checkpoint as checkpoint_mod

        resumed = checkpoint_mod.load(str(path))
        assert resumed.query(7) is not None


class TestShutdown:
    def test_clean_stop_returns_true(self):
        server = ServiceServer(make_service(), port=0).start()
        assert server.stop() is True

    def test_stop_reports_wedged_worker_thread(self):
        class Wedged:
            """A thread-shaped object that never finishes joining."""

            name = "wedged-handler"

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        server = ServiceServer(make_service(), port=0).start()
        server._thread = Wedged()
        assert server.stop() is False

    def test_stop_reports_wedged_handler_thread(self):
        class Wedged:
            """A thread-shaped object that never finishes joining."""

            name = "wedged-handler"

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        server = ServiceServer(make_service(), port=0).start()
        server._httpd._handler_threads.append(Wedged())
        assert server.stop() is False

    def test_stop_waits_for_inflight_handler_before_closing_wal(self, tmp_path):
        # A handler blocked mid-request (here: on the engine lock) must
        # be joined before stop() closes the WAL, or its append would
        # land on a closed file and the acked record would be lost.
        import threading
        import time

        from repro.service.wal import WriteAheadLog, read_wal

        engine = AdmissionEngine(
            EngineConfig(policy="librarisk", num_nodes=4, rating=1.0)
        )
        wal = WriteAheadLog.open(
            str(tmp_path / "srv.log"), config=engine.config.as_dict(),
            fsync="none",
        )
        service = AdmissionService(engine, wal=wal)
        server = ServiceServer(service, port=0).start()
        client = ServiceClient(server.url, timeout=10.0)

        service._engine_lock.acquire()  # hold the in-flight request hostage
        result: list = []
        request = threading.Thread(
            target=lambda: result.append(
                client.rpc({"v": PROTOCOL_VERSION, "type": "submit",
                            "job": submit_payload(1)})
            ),
            daemon=True,
        )
        request.start()
        deadline = time.monotonic() + 5.0
        while service._inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)  # wait for the handler to pass admission checks
        assert service._inflight == 1

        stopped: list = []
        stopper = threading.Thread(
            target=lambda: stopped.append(server.stop()), daemon=True
        )
        stopper.start()
        time.sleep(0.2)  # stop() is now joining the blocked handler
        service._engine_lock.release()
        stopper.join(timeout=10.0)
        request.join(timeout=10.0)

        assert stopped == [True]
        status, _ = result[0]
        assert status == 200
        assert wal.closed
        records = read_wal(str(tmp_path / "srv.log")).records
        assert len(records) == 1 and records[0].req["job"]["id"] == 1

    def test_graceful_stop_flushes_and_closes_wal(self, tmp_path):
        from repro.service.wal import WriteAheadLog, read_wal

        engine = AdmissionEngine(
            EngineConfig(policy="librarisk", num_nodes=4, rating=1.0)
        )
        wal = WriteAheadLog.open(
            str(tmp_path / "srv.log"), config=engine.config.as_dict(),
            fsync="none",
        )
        service = AdmissionService(engine, wal=wal)
        server = ServiceServer(service, port=0).start()
        client = ServiceClient(server.url, timeout=5.0)
        client.rpc({"v": PROTOCOL_VERSION, "type": "submit",
                    "job": submit_payload(1)})
        assert server.stop() is True
        assert wal.closed
        result = read_wal(str(tmp_path / "srv.log"))
        assert len(result.records) == 1 and result.torn is None
