"""Fault-injection harness tests: spec parsing, determinism, crash points."""

import json
import subprocess
import sys

import pytest

from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.faults import (
    CRASH_POINTS,
    CrashPoint,
    DropRequest,
    FaultInjector,
    FaultSpec,
    InjectedError,
    tear_wal_tail,
)
from repro.service.server import AdmissionService


class TestSpec:
    def test_parse_full_spec(self):
        spec = FaultSpec.parse(
            "drop=0.1, error=0.2, delay=0.3@0.05, seed=7, "
            "crash=wal.after_append:3, mode=exit"
        )
        assert spec == FaultSpec(
            seed=7, drop_rate=0.1, error_rate=0.2, delay_rate=0.3, delay=0.05,
            crash_point="wal.after_append", crash_at=3, crash_mode="exit",
        )

    def test_parse_delay_without_seconds_uses_default(self):
        spec = FaultSpec.parse("delay=0.5")
        assert spec.delay_rate == 0.5 and spec.delay == 0.01

    def test_parse_crash_without_count_means_first_hit(self):
        spec = FaultSpec.parse("crash=wal.before_append")
        assert spec.crash_point == "wal.before_append" and spec.crash_at == 1

    @pytest.mark.parametrize("bad", [
        "drop", "frobnicate=1", "drop=lots", "drop=1.5",
        "crash=somewhere.else", "mode=maybe", "crash=wal.after_apply:0",
    ])
    def test_bad_specs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)


class TestDeterminism:
    def run_pattern(self, spec: FaultSpec, n: int = 200) -> list:
        injector = FaultInjector(spec, sleep=lambda _s: None)
        pattern = []
        for _ in range(n):
            try:
                injector.on_request()
                pattern.append("ok")
            except DropRequest:
                pattern.append("drop")
            except InjectedError:
                pattern.append("error")
        return pattern

    def test_same_seed_same_fault_sequence(self):
        spec = FaultSpec(seed=11, drop_rate=0.2, error_rate=0.2)
        assert self.run_pattern(spec) == self.run_pattern(spec)

    def test_different_seed_different_sequence(self):
        a = self.run_pattern(FaultSpec(seed=1, drop_rate=0.3))
        b = self.run_pattern(FaultSpec(seed=2, drop_rate=0.3))
        assert a != b

    def test_drop_pattern_independent_of_other_rates(self):
        # Fixed draws per request: enabling delays/errors must not
        # perturb which requests get dropped for a given seed.
        plain = self.run_pattern(FaultSpec(seed=5, drop_rate=0.3))
        noisy = self.run_pattern(
            FaultSpec(seed=5, drop_rate=0.3, error_rate=0.9, delay_rate=0.5,
                      delay=0.001)
        )
        drops = [i for i, kind in enumerate(plain) if kind == "drop"]
        noisy_drops = [i for i, kind in enumerate(noisy) if kind == "drop"]
        assert drops == noisy_drops

    def test_delay_uses_injected_sleep(self):
        slept = []
        injector = FaultInjector(
            FaultSpec(delay_rate=1.0, delay=0.25), sleep=slept.append
        )
        injector.on_request()
        assert slept == [0.25]
        assert injector.stats.delayed == 1


class TestCrashPoints:
    def test_crashes_on_nth_hit_only(self):
        injector = FaultInjector(
            FaultSpec(crash_point="wal.after_append", crash_at=3)
        )
        injector.crash("wal.after_append")
        injector.crash("wal.after_append")
        with pytest.raises(CrashPoint) as excinfo:
            injector.crash("wal.after_append")
        assert excinfo.value.point == "wal.after_append"
        assert injector.stats.crashed == "wal.after_append"

    def test_other_points_never_crash(self):
        injector = FaultInjector(FaultSpec(crash_point="wal.after_apply"))
        others = [p for p in CRASH_POINTS if p != "wal.after_apply"]
        for point in others:
            injector.crash(point)
        assert injector.stats.crashed is None
        assert injector.stats.crash_hits == {p: 1 for p in others}

    def test_crash_point_is_not_an_ordinary_exception(self):
        # The server's `except Exception` catch-all must not swallow it.
        assert not issubclass(CrashPoint, Exception)
        assert issubclass(CrashPoint, BaseException)

    def test_exit_mode_kills_the_process_with_137(self):
        code = (
            "from repro.service.faults import FaultInjector, FaultSpec\n"
            "spec = FaultSpec(crash_point='wal.before_append', crash_mode='exit')\n"
            "FaultInjector(spec).crash('wal.before_append')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            timeout=60,
        )
        assert proc.returncode == 137
        assert "survived" not in proc.stdout


class TestServiceIntegration:
    def service(self, spec: FaultSpec) -> AdmissionService:
        engine = AdmissionEngine(EngineConfig(num_nodes=2, rating=1.0))
        return AdmissionService(engine, faults=FaultInjector(spec))

    def test_injected_error_is_typed_500(self):
        svc = self.service(FaultSpec(error_rate=1.0))
        status, response = svc.handle(b'{"v": 1, "type": "stats"}')
        assert status == 500
        assert response["error"]["code"] == "injected"
        counter = svc.registry.get("service_faults_injected_total", kind="error")
        assert counter is not None and counter.value == 1

    def test_dropped_request_propagates_to_http_layer(self):
        svc = self.service(FaultSpec(drop_rate=1.0))
        with pytest.raises(DropRequest):
            svc.handle(b'{"v": 1, "type": "stats"}')

    def test_dropped_request_mutates_nothing(self):
        svc = self.service(FaultSpec(drop_rate=1.0))
        body = json.dumps({
            "v": 1, "type": "submit",
            "job": {"id": 1, "submit_time": 0.0, "runtime": 5.0,
                    "estimated_runtime": 5.0, "numproc": 1, "deadline": 50.0},
        }).encode()
        with pytest.raises(DropRequest):
            svc.handle(body)
        assert svc.engine.stats()["submitted"] == 0


class TestTearWalTail:
    def test_truncates_exactly(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 100)
        assert tear_wal_tail(str(path), 30) == 70
        assert path.stat().st_size == 70

    def test_bounds_are_validated(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 10)
        with pytest.raises(ValueError):
            tear_wal_tail(str(path), 0)
        with pytest.raises(ValueError):
            tear_wal_tail(str(path), 10)
