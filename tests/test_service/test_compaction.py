"""WAL compaction, crash windows around it, and the integrity scrubber.

The invariant under test throughout: recovery from *checkpoint +
compacted tail* rebuilds the same engine state as recovery from the
full, never-compacted log — regardless of where in the compaction a
crash lands.  "Same state" means the checkpoint snapshot normalized by
dropping the kernel's event sequence counter (``sim.seq``): re-derived
completion timers legitimately draw fresh sequence numbers, and the
checkpoint contract exempts them (see ``repro.service.checkpoint``).
"""

import json
import os
import random

import pytest

from repro.service import checkpoint as checkpoint_mod
from repro.service import protocol
from repro.service import scrub as scrub_mod
from repro.service import wal as wal_mod
from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.faults import CRASH_POINTS, CrashPoint
from repro.service.server import AdmissionService

CONFIG = EngineConfig(policy="librarisk", num_nodes=8, rating=1.0)
COMPACT_POINTS = [p for p in CRASH_POINTS if p.startswith("compact.")]


def submit_body(job_id: int) -> bytes:
    return json.dumps({
        "v": protocol.PROTOCOL_VERSION, "type": "submit",
        "job": {
            "id": job_id, "submit_time": 0.0, "runtime": 10.0,
            "estimated_runtime": 12.0, "numproc": 1, "deadline": 100.0,
        },
    }).encode()


def build_service(path: str, compact_every: int = 0) -> AdmissionService:
    engine = AdmissionEngine(CONFIG)
    wal = wal_mod.WriteAheadLog.open(
        path, config=CONFIG.as_dict(), fsync="none"
    )
    return AdmissionService(engine, wal=wal, wal_compact_every=compact_every)


def run_submits(service: AdmissionService, job_ids) -> None:
    for job_id in job_ids:
        status, response = service.handle(submit_body(job_id))
        assert status == 200, response


def normalized(engine: AdmissionEngine) -> str:
    snap = checkpoint_mod.snapshot(engine)
    snap.get("sim", {}).pop("seq", None)
    return checkpoint_mod.dumps(snap)


def crash_at(target: str):
    def hook(point: str) -> None:
        if point == target:
            raise CrashPoint(point)
    return hook


class TestCompaction:
    def test_compact_truncates_and_archives(self, tmp_path):
        path = str(tmp_path / "w.wal")
        service = build_service(path)
        run_submits(service, range(1, 11))
        wal = service.wal
        before = os.path.getsize(path)
        report = wal.compact(service.engine, str(tmp_path / "w.ckpt"))
        assert report.archived == 10
        assert report.retained == 0
        assert wal.base_lsn == 10
        assert os.path.getsize(path) < before
        segments = wal_mod.list_segments(path)
        assert [(f, l) for f, l, _ in segments] == [(1, 10)]

    def test_appends_continue_the_lsn_chain_after_compaction(self, tmp_path):
        path = str(tmp_path / "w.wal")
        service = build_service(path)
        run_submits(service, range(1, 6))
        service.wal.compact(service.engine, str(tmp_path / "w.ckpt"))
        run_submits(service, range(6, 9))
        result = wal_mod.read_wal(path)
        assert result.base_lsn == 5
        assert [r.lsn for r in result.records] == [6, 7, 8]

    def test_compaction_bounds_the_active_log_size(self, tmp_path):
        compacted = str(tmp_path / "auto.wal")
        full = str(tmp_path / "full.wal")
        svc_auto = build_service(compacted, compact_every=5)
        svc_full = build_service(full)
        max_active = 0
        for job_id in range(1, 41):
            run_submits(svc_auto, [job_id])
            run_submits(svc_full, [job_id])
            max_active = max(max_active, os.path.getsize(compacted))
        # The active log never grows past one compaction interval's
        # worth of records (plus its one-line header), while the
        # uncompacted log grows with the full history.
        assert max_active < os.path.getsize(full)
        retained = wal_mod.read_wal(compacted).records
        assert len(retained) < 5
        assert svc_auto.wal.compactions == 8

    def test_recovery_from_compacted_chain_matches_full_log(self, tmp_path):
        compacted = str(tmp_path / "c.wal")
        full = str(tmp_path / "f.wal")
        svc_c = build_service(compacted)
        svc_f = build_service(full)
        run_submits(svc_c, range(1, 9))
        run_submits(svc_f, range(1, 9))
        svc_c.wal.compact(svc_c.engine, str(tmp_path / "c.ckpt"))
        run_submits(svc_c, range(9, 13))
        run_submits(svc_f, range(9, 13))
        svc_c.close_wal()
        svc_f.close_wal()
        engine_c, report_c = wal_mod.recover(compacted)
        engine_f, report_f = wal_mod.recover(full)
        # The archived prefix is restored through the checkpoint, not
        # replayed: only the 4 tail records are read at all.
        assert report_c.wal_records == 4
        assert report_c.replayed == 4
        assert report_c.checkpoint is not None
        assert report_f.replayed == 12
        assert normalized(engine_c) == normalized(engine_f)
        assert checkpoint_mod.dumps(engine_c.metrics().as_dict()) == \
            checkpoint_mod.dumps(engine_f.metrics().as_dict())

    def test_second_compaction_chains_segments(self, tmp_path):
        path = str(tmp_path / "w.wal")
        service = build_service(path)
        run_submits(service, range(1, 6))
        service.wal.compact(service.engine, str(tmp_path / "w.ckpt"))
        run_submits(service, range(6, 11))
        service.wal.compact(service.engine, str(tmp_path / "w.ckpt"))
        ranges = [(f, l) for f, l, _ in wal_mod.list_segments(path)]
        assert ranges == [(1, 5), (6, 10)]
        engine, _ = wal_mod.recover(path)
        assert engine.wal_lsn == 10

    def test_compact_with_nothing_new_is_a_noop(self, tmp_path):
        path = str(tmp_path / "w.wal")
        service = build_service(path)
        run_submits(service, range(1, 4))
        service.wal.compact(service.engine, str(tmp_path / "w.ckpt"))
        report = service.wal.compact(service.engine, str(tmp_path / "w.ckpt"))
        assert report.archived == 0
        assert service.wal.compactions == 1


class TestServerAutoCompaction:
    def test_threshold_drives_compaction_and_health(self, tmp_path):
        path = str(tmp_path / "w.wal")
        service = build_service(path, compact_every=5)
        run_submits(service, range(1, 13))
        assert service.wal.compactions == 2
        assert service.wal.base_lsn == 10
        health = service.health_response()
        assert health["wal"]["base_lsn"] == 10
        assert health["wal"]["compactions"] == 2
        assert health["wal"]["appended_lsn"] == 12
        text = "\n".join(
            line for line in render_metrics(service).splitlines()
            if "compact" in line or "base_lsn" in line
        )
        assert "service_wal_compactions_total 2" in text
        assert "service_wal_base_lsn 10" in text

    def test_recovered_server_resumes_the_compacted_chain(self, tmp_path):
        path = str(tmp_path / "w.wal")
        service = build_service(path, compact_every=4)
        run_submits(service, range(1, 10))
        service.close_wal()
        engine, report = wal_mod.recover(path)
        assert engine.wal_lsn == 9
        # The replayed engine accepts more traffic on the same chain.
        wal = wal_mod.WriteAheadLog.open(
            path, config=CONFIG.as_dict(), fsync="none"
        )
        assert wal.base_lsn == 8
        assert wal.next_lsn == 10

    def test_validation(self, tmp_path):
        engine = AdmissionEngine(CONFIG)
        with pytest.raises(ValueError):
            AdmissionService(engine, wal=None, wal_compact_every=5)
        path = str(tmp_path / "w.wal")
        wal = wal_mod.WriteAheadLog.open(
            path, config=CONFIG.as_dict(), fsync="none"
        )
        with pytest.raises(ValueError):
            AdmissionService(engine, wal=wal, wal_compact_every=-1)


def render_metrics(service: AdmissionService) -> str:
    return service.prometheus_text()


class TestCompactionCrashWindows:
    """Satellite: a kill at any point inside compact() loses nothing."""

    def baseline(self, tmp_path, job_ids):
        full = str(tmp_path / "full.wal")
        svc = build_service(full)
        run_submits(svc, job_ids)
        svc.close_wal()
        engine, _ = wal_mod.recover(full)
        return normalized(engine)

    @pytest.mark.parametrize("point", COMPACT_POINTS)
    def test_crash_during_compact_recovers_byte_identically(
        self, tmp_path, point
    ):
        job_ids = list(range(1, 9))
        expect = self.baseline(tmp_path, job_ids)
        path = str(tmp_path / "w.wal")
        service = build_service(path)
        run_submits(service, job_ids)
        with pytest.raises(CrashPoint):
            service.wal.compact(
                service.engine, str(tmp_path / "w.ckpt"),
                crash=crash_at(point),
            )
        # "Restart": abandon every in-memory object, recover from disk.
        engine, _ = wal_mod.recover(path)
        assert normalized(engine) == expect
        # And the on-disk state passes a scrub (a torn/partial compaction
        # must never look like corruption).
        report = scrub_mod.scrub_fleet(path)
        assert report.exit_code == scrub_mod.EXIT_CLEAN, report.findings

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_crash_schedules(self, tmp_path, seed):
        """Randomized drill: random job count, random crash window, and
        a post-recovery compact must all converge to the same state."""
        rng = random.Random(seed)
        count = rng.randint(5, 15)
        point = rng.choice(COMPACT_POINTS)
        job_ids = list(range(1, count + 1))
        expect = self.baseline(tmp_path, job_ids)
        path = str(tmp_path / "w.wal")
        service = build_service(path)
        run_submits(service, job_ids)
        with pytest.raises(CrashPoint):
            service.wal.compact(
                service.engine, str(tmp_path / "w.ckpt"),
                crash=crash_at(point),
            )
        engine, _ = wal_mod.recover(path)
        assert normalized(engine) == expect
        # The restarted server can compact cleanly where the old one died.
        wal = wal_mod.WriteAheadLog.open(
            path, config=CONFIG.as_dict(), fsync="none"
        )
        wal.compact(engine, str(tmp_path / "w.ckpt"))
        wal.close()
        engine2, _ = wal_mod.recover(path)
        assert normalized(engine2) == expect
        report = scrub_mod.scrub_fleet(path)
        assert report.exit_code == scrub_mod.EXIT_CLEAN, report.findings


class TestScrub:
    def build_fleet_wal(self, tmp_path, compact=True):
        path = str(tmp_path / "w.wal")
        service = build_service(path)
        run_submits(service, range(1, 9))
        if compact:
            service.wal.compact(service.engine, str(tmp_path / "w.ckpt"))
            run_submits(service, range(9, 12))
        service.close_wal()
        return path

    def test_clean_wal_scrubs_clean(self, tmp_path):
        path = self.build_fleet_wal(tmp_path)
        report = scrub_mod.scrub_fleet(path)
        assert report.exit_code == scrub_mod.EXIT_CLEAN
        assert report.segments == 1
        assert report.checkpoints == 1
        assert report.records == 11

    def test_flipped_byte_in_archive_is_corruption(self, tmp_path):
        path = self.build_fleet_wal(tmp_path)
        _, _, seg_path = wal_mod.list_segments(path)[0]
        blob = bytearray(open(seg_path, "rb").read())
        blob[len(blob) // 2] ^= 0x01
        with open(seg_path, "wb") as fp:
            fp.write(blob)
        report = scrub_mod.scrub_fleet(path)
        assert report.exit_code == scrub_mod.EXIT_CORRUPT

    def test_corrupted_checkpoint_is_corruption(self, tmp_path):
        path = self.build_fleet_wal(tmp_path)
        ckpt = str(tmp_path / "w.ckpt")
        doc = json.load(open(ckpt))
        doc["t"] = 123456.0  # mutate content, keep the stored checksum
        with open(ckpt, "w") as fp:
            json.dump(doc, fp)
        report = scrub_mod.scrub_fleet(path)
        assert report.exit_code == scrub_mod.EXIT_CORRUPT

    def test_missing_wal_is_an_io_error(self, tmp_path):
        report = scrub_mod.scrub_fleet(str(tmp_path / "absent.wal"))
        assert report.exit_code == scrub_mod.EXIT_IO

    def test_torn_active_tail_is_only_a_warning(self, tmp_path):
        from repro.service.faults import tear_wal_tail

        path = self.build_fleet_wal(tmp_path)
        tear_wal_tail(path, nbytes=7)
        report = scrub_mod.scrub_fleet(path)
        assert report.exit_code == scrub_mod.EXIT_CLEAN
        assert any(f.kind == "warning" for f in report.findings)

    def test_compacted_header_without_checkpoint_ref_is_corruption(
        self, tmp_path
    ):
        path = self.build_fleet_wal(tmp_path)
        lines = open(path, "r", encoding="utf-8").read().splitlines(True)
        header = json.loads(lines[0].split(" ", 1)[1])
        header.pop("checkpoint")
        body = json.dumps(header, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=False)
        import zlib
        frame = f"{zlib.crc32(body.encode()) & 0xFFFFFFFF:08x} {body}\n"
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(frame)
            fp.writelines(lines[1:])
        report = scrub_mod.scrub_fleet(path)
        assert report.exit_code == scrub_mod.EXIT_CORRUPT

    def test_sharded_fleet_scrub(self, tmp_path):
        from repro.service.sharding.paths import shard_path

        base = str(tmp_path / "fleet.wal")
        for shard_id in range(2):
            path = shard_path(base, shard_id, 2)
            service = build_service(path)
            run_submits(service, range(1 + 10 * shard_id,
                                       6 + 10 * shard_id))
            service.close_wal()
        report = scrub_mod.scrub_fleet(base, shards=2)
        assert report.exit_code == scrub_mod.EXIT_CLEAN
        assert report.files == 2

    def test_cli_scrub_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        path = self.build_fleet_wal(tmp_path)
        assert main(["scrub", path]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert main(["scrub", path, "--json"]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["clean"] is True
        _, _, seg_path = wal_mod.list_segments(path)[0]
        blob = bytearray(open(seg_path, "rb").read())
        blob[len(blob) // 2] ^= 0x01
        with open(seg_path, "wb") as fp:
            fp.write(blob)
        assert main(["scrub", path]) == 1
        assert main(["scrub", str(tmp_path / "nope.wal")]) == 2
