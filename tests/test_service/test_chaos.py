"""Chaos tests: crash-and-recover determinism, retries under fire.

The acceptance bar from the fault-tolerance design: a process death at
*any* scripted crash point, followed by recovery and a client retry of
the in-flight request, must end in final metrics and decisions
byte-identical to an uninterrupted run — for every paper policy.  And a
retrying client must push a whole trace through a server that drops and
fails requests, without ever double-admitting a job.
"""

import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs
from repro.service import protocol
from repro.service.client import RetryPolicy, RetryingClient
from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.faults import CrashPoint, FaultInjector, FaultSpec
from repro.service.loadgen import LoadGenerator, job_request_payload
from repro.service.server import AdmissionService, ServiceServer
from repro.service.wal import WriteAheadLog, recover

POLICIES = ("edf", "libra", "librarisk")
CRASH_POINTS = ("wal.before_append", "wal.after_append", "wal.after_apply")


def scenario(policy: str) -> ScenarioConfig:
    return ScenarioConfig(policy=policy, num_jobs=60, num_nodes=8, seed=31)


def submit_body(job) -> bytes:
    return json.dumps({
        "v": protocol.PROTOCOL_VERSION, "type": "submit",
        "job": job_request_payload(job),
    }).encode()


def fresh_service(config: ScenarioConfig, wal_path, faults=None) -> AdmissionService:
    engine = AdmissionEngine(EngineConfig(
        policy=config.policy, num_nodes=config.num_nodes,
    ))
    wal = WriteAheadLog.open(str(wal_path), config=engine.config.as_dict())
    return AdmissionService(engine, wal=wal, faults=faults)


def run_to_completion(service: AdmissionService, jobs) -> dict:
    for job in jobs:
        status, _ = service.handle(submit_body(job))
        assert status == 200
    status, _ = service.handle(b'{"v": 1, "type": "drain"}')
    assert status == 200
    service.close_wal()
    return service.engine.metrics().as_dict()


class TestCrashRecovery:
    """Die at a scripted point, recover from disk, retry, compare."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_recovery_is_byte_identical_to_uninterrupted_run(
        self, tmp_path, policy, point
    ):
        config = scenario(policy)
        jobs = build_scenario_jobs(config)

        reference = fresh_service(config, tmp_path / "ref.log")
        ref_metrics = run_to_completion(reference, jobs)
        ref_decisions = [d.as_dict() for d in reference.engine.decisions]

        # The same stream against a server scripted to die mid-trace.
        wal_path = tmp_path / "crash.log"
        injector = FaultInjector(FaultSpec(crash_point=point, crash_at=20))
        crashing = fresh_service(config, wal_path, faults=injector)
        pre_crash: dict[int, dict] = {}
        crashed_at = None
        for index, job in enumerate(jobs):
            try:
                status, response = crashing.handle(submit_body(job))
            except CrashPoint:
                crashed_at = index
                break
            assert status == 200
            pre_crash[job.job_id] = response["decision"]
        assert crashed_at is not None, "the scripted crash never fired"
        # The dead process never closed its WAL; recovery reads the
        # file as the crash left it.

        engine, report = recover(str(wal_path))
        resumed = AdmissionService(
            engine,
            wal=WriteAheadLog.open(str(wal_path), config=engine.config.as_dict()),
        )
        # The client's view: its in-flight request died without an ack,
        # so it retries it, then carries on with the rest of the trace.
        for job in jobs[crashed_at:]:
            status, response = resumed.handle(submit_body(job))
            assert status == 200
        status, _ = resumed.handle(b'{"v": 1, "type": "drain"}')
        assert status == 200
        resumed.close_wal()

        assert resumed.engine.metrics().as_dict() == ref_metrics
        assert [d.as_dict() for d in resumed.engine.decisions] == ref_decisions

        # No acked decision was lost or re-decided across the crash.
        for job_id, acked in pre_crash.items():
            final = resumed.engine.decision_for(job_id)
            assert final is not None and final.as_dict() == acked

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_retry_after_crash_never_double_admits(self, tmp_path, point):
        config = scenario("librarisk")
        jobs = build_scenario_jobs(config)
        injector = FaultInjector(FaultSpec(crash_point=point, crash_at=10))
        crashing = fresh_service(config, tmp_path / "w.log", faults=injector)
        crashed_at = None
        for index, job in enumerate(jobs):
            try:
                crashing.handle(submit_body(job))
            except CrashPoint:
                crashed_at = index
                break
        assert crashed_at is not None

        engine, _ = recover(str(tmp_path / "w.log"))
        resumed = AdmissionService(engine, wal=WriteAheadLog.open(
            str(tmp_path / "w.log"), config=engine.config.as_dict(),
        ))
        retried = jobs[crashed_at]
        status, first = resumed.handle(submit_body(retried))
        assert status == 200
        status, second = resumed.handle(submit_body(retried))
        assert status == 200
        # However the crash fell, a second retry is answered from the
        # decision log, not decided again.
        assert second.get("duplicate") is True
        assert second["decision"] == first["decision"]
        ids = [d.job_id for d in resumed.engine.decisions]
        assert len(ids) == len(set(ids))
        resumed.close_wal()


class TestRetriesUnderFire:
    def test_loadgen_with_retrying_client_survives_drops_and_errors(self):
        # A server scripted to drop 10% of requests and fail another
        # 10% with 5xx; the retrying client must land every job exactly
        # once.  The fault pattern and the retry jitter are both
        # seeded, so this runs identically every time.
        config = scenario("librarisk")
        jobs = build_scenario_jobs(config)[:50]
        engine = AdmissionEngine(EngineConfig(
            policy=config.policy, num_nodes=config.num_nodes,
        ))
        injector = FaultInjector(
            FaultSpec(seed=13, drop_rate=0.1, error_rate=0.1),
            sleep=lambda _s: None,
        )
        service = AdmissionService(engine, faults=injector)
        server = ServiceServer(service, port=0).start()
        try:
            client = RetryingClient(
                server.url, timeout=5.0, seed=29,
                policy=RetryPolicy(max_attempts=8, base_delay=0.001,
                                   max_delay=0.01),
            )
            report = LoadGenerator(client, jobs, speedup=1e12).run()
        finally:
            server.stop()

        assert report.requests == 50
        assert report.errors == 0, report.outcomes
        # The injector really did interfere; the retries really happened.
        assert injector.stats.dropped > 0 and injector.stats.errored > 0
        assert client.retries >= injector.stats.dropped + injector.stats.errored
        # Zero duplicate admissions: every job decided exactly once.
        ids = [d.job_id for d in engine.decisions]
        assert len(ids) == len(jobs)
        assert len(set(ids)) == len(ids)
