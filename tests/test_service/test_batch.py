"""Batch submit: protocol frames, service semantics, WAL and loadgen parity.

The batch contract everything here pins down: a batch frame is executed
as the *same* code path as N single submits under one lock and one WAL
record per item — so a batch of one is byte-identical to a lone submit,
durable state is byte-identical to the unbatched stream, and one bad
item never voids its siblings.
"""

import json

import pytest

from repro.service import protocol
from repro.service.client import RetryingClient
from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.loadgen import LoadGenerator, ServiceClient
from repro.service.protocol import (
    MAX_BATCH_JOBS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.server import AdmissionService, ServiceServer
from repro.service.wal import WriteAheadLog, read_wal


def make_service(tmp_path=None, wal_name=None, **kwargs) -> AdmissionService:
    config = EngineConfig(policy="librarisk", num_nodes=4, rating=1.0)
    engine = AdmissionEngine(config)
    wal = None
    if tmp_path is not None:
        wal = WriteAheadLog.open(
            str(tmp_path / (wal_name or "svc.wal")), config.as_dict()
        )
    return AdmissionService(engine, wal=wal, **kwargs)


def submit_payload(job_id: int, submit_time: float = 0.0, **overrides) -> dict:
    payload = {
        "id": job_id, "submit_time": submit_time, "runtime": 10.0,
        "estimated_runtime": 10.0, "numproc": 1, "deadline": 100.0,
    }
    payload.update(overrides)
    return payload


def batch_frame(payloads) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "batch", "jobs": list(payloads)}


def rpc(service: AdmissionService, request: dict):
    return service.handle(json.dumps(request).encode())


class TestBatchProtocol:
    def test_parse_roundtrip(self):
        request = protocol.parse_request(
            protocol.encode(batch_frame([submit_payload(1)]))
        )
        assert isinstance(request, protocol.BatchRequest)
        assert request.jobs[0]["id"] == 1

    def test_empty_batch_is_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.parse_request(protocol.encode(batch_frame([])))
        assert exc.value.code == protocol.ErrorCode.INVALID_FIELD

    def test_oversized_batch_is_typed_too_large(self):
        frame = batch_frame(
            [submit_payload(i) for i in range(MAX_BATCH_JOBS + 1)]
        )
        with pytest.raises(ProtocolError) as exc:
            protocol.parse_request(protocol.encode(frame))
        assert exc.value.code == protocol.ErrorCode.TOO_LARGE

    def test_non_mapping_item_is_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request(
                protocol.encode({"v": PROTOCOL_VERSION, "type": "batch",
                                 "jobs": [42]})
            )

    def test_unknown_top_level_field_is_rejected(self):
        frame = batch_frame([submit_payload(1)])
        frame["extra"] = True
        with pytest.raises(ProtocolError):
            protocol.parse_request(protocol.encode(frame))


class TestBatchService:
    def test_batch_of_one_is_byte_identical_to_a_single_submit(self):
        single = make_service()
        batched = make_service()
        payload = submit_payload(1)
        _, lone = rpc(single, {"v": PROTOCOL_VERSION, "type": "submit",
                               "job": payload})
        status, response = rpc(batched, batch_frame([payload]))
        assert status == 200
        assert protocol.encode(response["results"][0]) == \
            protocol.encode(lone)

    def test_batch_matches_singles_item_for_item(self):
        single = make_service()
        batched = make_service()
        payloads = [submit_payload(i, submit_time=float(i)) for i in range(1, 6)]
        lones = [
            rpc(single, {"v": PROTOCOL_VERSION, "type": "submit", "job": p})[1]
            for p in payloads
        ]
        _, response = rpc(batched, batch_frame(payloads))
        assert [protocol.encode(r) for r in response["results"]] == \
            [protocol.encode(r) for r in lones]

    def test_wal_records_are_byte_identical_to_singles(self, tmp_path):
        payloads = [submit_payload(i, submit_time=float(i)) for i in range(1, 5)]
        single = make_service(tmp_path, "single.wal")
        for p in payloads:
            rpc(single, {"v": PROTOCOL_VERSION, "type": "submit", "job": p})
        batched = make_service(tmp_path, "batched.wal")
        rpc(batched, batch_frame(payloads))
        single.wal.close()
        batched.wal.close()
        lone = read_wal(str(tmp_path / "single.wal"))
        bat = read_wal(str(tmp_path / "batched.wal"))
        assert [(r.lsn, r.t, r.req) for r in bat.records] == \
            [(r.lsn, r.t, r.req) for r in lone.records]

    def test_one_bad_item_does_not_void_its_siblings(self):
        service = make_service()
        payloads = [
            submit_payload(1, submit_time=10.0),
            submit_payload(2, submit_time=5.0),  # travels back in time
            {"id": 3},                           # schema-invalid
            submit_payload(4, submit_time=12.0),
        ]
        status, response = rpc(service, batch_frame(payloads))
        assert status == 200
        results = response["results"]
        assert results[0]["ok"] and results[3]["ok"]
        assert results[1]["ok"] is False
        assert results[1]["error"]["code"] == "out_of_order"
        assert results[2]["ok"] is False
        assert results[2]["error"]["code"] in (
            "invalid_field", "missing_field",
        )
        # The engine admitted exactly the two good jobs.
        _, stats = rpc(service, {"v": PROTOCOL_VERSION, "type": "stats"})
        assert stats["stats"]["submitted"] == 2

    def test_duplicate_item_is_answered_from_the_decision_log(self):
        service = make_service()
        payload = submit_payload(1)
        _, first = rpc(service, batch_frame([payload]))
        _, second = rpc(service, batch_frame([payload]))
        item = second["results"][0]
        assert item["ok"]
        assert item["duplicate"] is True
        assert item["decision"] == first["results"][0]["decision"]

    def test_batch_counter_is_exported(self):
        service = make_service()
        rpc(service, batch_frame([submit_payload(1), submit_payload(2)]))
        from repro.obs.exporters import prometheus_text

        assert "service_batch_jobs_total 2" in prometheus_text(service.registry)


@pytest.fixture
def server():
    srv = ServiceServer(make_service(), port=0).start()
    yield srv
    srv.stop()


class TestLoadgenBatch:
    def jobs(self, n=6):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_scenario_jobs

        return build_scenario_jobs(
            ScenarioConfig(num_jobs=n, num_nodes=4, seed=7, policy="librarisk")
        )

    def test_batch_run_reports_every_job(self, server):
        jobs = self.jobs()
        report = LoadGenerator(
            ServiceClient(server.url, timeout=5.0), jobs,
            speedup=float("inf"), batch=3,
        ).run()
        assert report.requests == len(jobs)
        assert report.ok == len(jobs)

    def test_batch_of_one_matches_the_single_submit_path(self):
        # The regression guard for the batch fast path: batch=1 must
        # leave byte-identical durable state to the plain sender.
        jobs = self.jobs()
        singles = ServiceServer(make_service(), port=0).start()
        batched = ServiceServer(make_service(), port=0).start()
        try:
            lone = LoadGenerator(
                ServiceClient(singles.url, timeout=5.0), jobs,
                speedup=float("inf"),
            ).run()
            grouped = LoadGenerator(
                ServiceClient(batched.url, timeout=5.0), jobs,
                speedup=float("inf"), batch=1,
            ).run()
            assert (lone.ok, lone.errors) == (grouped.ok, grouped.errors)
            _, a = ServiceClient(singles.url).drain()
            _, b = ServiceClient(batched.url).drain()
            assert protocol.encode(a) == protocol.encode(b)
        finally:
            singles.stop()
            batched.stop()

    def test_batch_requires_the_single_ordered_sender(self, server):
        with pytest.raises(ValueError):
            LoadGenerator(
                ServiceClient(server.url), self.jobs(),
                workers=2, batch=2,
            )
        with pytest.raises(ValueError):
            LoadGenerator(ServiceClient(server.url), self.jobs(), batch=0)

    def test_client_submit_batch_round_trip(self, server):
        jobs = self.jobs(4)
        status, response = ServiceClient(server.url).submit_batch(jobs)
        assert status == 200
        assert len(response["results"]) == 4


class TestBatchRetryability:
    def test_batch_with_ids_is_retryable(self):
        assert RetryingClient._is_retryable(
            batch_frame([submit_payload(1), submit_payload(2)])
        )

    def test_one_idless_item_disables_retries(self):
        payload = submit_payload(2)
        del payload["id"]
        assert not RetryingClient._is_retryable(
            batch_frame([submit_payload(1), payload])
        )
