"""Degraded-mode routing: circuit breakers, retries, and failover parking.

Shard backends are real in-process ``ServiceServer`` instances (as in
``test_router.py``); a "shard kill" is stopping its HTTP server while
the service object — standing in for the worker's WAL-recovered state —
survives, and "recovery" is binding a fresh server on the same port.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import protocol
from repro.service.engine import AdmissionEngine, EngineConfig
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import AdmissionService, ServiceServer
from repro.service.sharding import ShardRouter, plan_shards, shard_for_job
from repro.service.sharding.breaker import CLOSED, OPEN

BASE = EngineConfig(policy="librarisk", num_nodes=8, rating=1.0)


def submit_payload(job_id: int, submit_time: float = 0.0, **overrides) -> dict:
    payload = {
        "id": job_id, "submit_time": submit_time, "runtime": 10.0,
        "estimated_runtime": 10.0, "numproc": 1, "deadline": 100.0,
    }
    payload.update(overrides)
    return payload


def submit_frame(payload: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "submit", "job": payload}


class DegradedFleet:
    """N in-process shard servers behind a router with degraded-mode knobs."""

    def __init__(self, num_shards: int, **router_kwargs):
        self.configs = plan_shards(BASE, num_shards)
        self.services = [
            AdmissionService(AdmissionEngine(cfg)) for cfg in self.configs
        ]
        self.servers = [
            ServiceServer(svc, port=0).start() for svc in self.services
        ]
        router_kwargs.setdefault("timeout", 2.0)
        self.router = ShardRouter(
            BASE, [srv.url for srv in self.servers], **router_kwargs
        )

    def handle(self, request: dict):
        return self.router.handle(json.dumps(request).encode())

    def kill(self, shard: int) -> int:
        """Stop one shard's HTTP server; returns its port for recovery."""
        port = self.servers[shard].port
        self.servers[shard].stop()
        return port

    def recover(self, shard: int, port: int) -> None:
        """Bind a fresh server for the surviving service on the old port."""
        self.services[shard].draining = False
        self.servers[shard] = ServiceServer(
            self.services[shard], port=port
        ).start()

    def stop(self):
        for server in self.servers:
            try:
                server.stop()
            except OSError:
                pass


class _GarbageState:
    requests = 0


class _GarbageHandler(BaseHTTPRequestHandler):
    """Answers every RPC with HTTP 200 and a truncated JSON body."""

    def do_POST(self):
        _GarbageState.requests += 1
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        body = b'{"v": 1, "ok": tru'
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


@pytest.fixture
def garbage_backend():
    _GarbageState.requests = 0
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _GarbageHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}"
    httpd.shutdown()
    httpd.server_close()


class TestMalformedShardResponse:
    """Regression: truncated shard JSON must be a typed shard fault, not
    an unhandled exception, and must count toward the breaker."""

    def test_garbage_body_is_typed_unavailable(self, garbage_backend):
        router = ShardRouter(
            BASE, [garbage_backend], forward_retries=0, failure_threshold=5,
        )
        status, response = router.handle(
            json.dumps(submit_frame(submit_payload(1))).encode()
        )
        assert status == 503
        assert response["error"]["code"] == "unavailable"
        assert "malformed" in response["error"]["message"]

    def test_garbage_bodies_trip_the_breaker(self, garbage_backend):
        router = ShardRouter(
            BASE, [garbage_backend], forward_retries=0, failure_threshold=2,
        )
        frame = json.dumps(submit_frame(submit_payload(1))).encode()
        router.handle(frame)
        assert router.breakers[0].state == CLOSED
        router.handle(frame)
        assert router.breakers[0].state == OPEN
        served_before_fail_fast = _GarbageState.requests
        status, response = router.handle(frame)
        assert status == 503
        assert "circuit open" in response["error"]["message"]
        assert "retry_after" in response["error"]
        # Fail-fast means no connection reached the backend at all.
        assert _GarbageState.requests == served_before_fail_fast


class TestBreakerFailFast:
    def test_dead_shard_trips_and_fails_fast(self):
        fleet = DegradedFleet(
            2, forward_retries=0, failure_threshold=2, breaker_reset=60.0,
        )
        try:
            victim = shard_for_job(1, 2)
            fleet.kill(victim)
            frame = submit_frame(submit_payload(1))
            for _ in range(2):
                status, response = fleet.handle(frame)
                assert status == 503
                assert response["error"]["code"] == "unavailable"
            assert fleet.router.breakers[victim].state == OPEN
            status, response = fleet.handle(frame)
            assert status == 503
            assert "circuit open" in response["error"]["message"]
            # The sibling shard is untouched throughout.
            sibling = 1 - victim
            assert fleet.router.breakers[sibling].state == CLOSED
            status, _ = fleet.handle(submit_frame(
                submit_payload(2 if shard_for_job(2, 2) == sibling else 4)
            ))
        finally:
            fleet.stop()

    def test_health_probe_reopens_a_recovered_shard(self):
        fleet = DegradedFleet(
            2, forward_retries=0, failure_threshold=1, breaker_reset=0.05,
        )
        try:
            victim = shard_for_job(1, 2)
            port = fleet.kill(victim)
            fleet.handle(submit_frame(submit_payload(1)))
            assert fleet.router.breakers[victim].state == OPEN
            health = fleet.router.health_response()
            assert health["status"] == "degraded"
            assert health["shards"][str(victim)]["breaker"]["state"] != CLOSED
            fleet.recover(victim, port)
            import time
            time.sleep(0.1)  # let the cooldown expire into half-open
            health = fleet.router.health_response()
            assert health["status"] == "ok"
            assert health["shards"][str(victim)]["breaker"]["state"] == CLOSED
        finally:
            fleet.stop()


class TestParking:
    def test_submits_to_a_down_shard_are_parked_and_acked(self):
        fleet = DegradedFleet(2, forward_retries=0, max_parked=8)
        try:
            victim = shard_for_job(1, 2)
            fleet.kill(victim)
            status, response = fleet.handle(submit_frame(submit_payload(1)))
            assert status == 200
            assert response["type"] == "parked"
            assert response["shard"] == victim
            assert len(fleet.router.parking[victim]) == 1
        finally:
            fleet.stop()

    def test_full_lot_rejects_with_typed_retryable_error(self):
        fleet = DegradedFleet(2, forward_retries=0, max_parked=2)
        try:
            victim = shard_for_job(1, 2)
            fleet.kill(victim)
            owned = [j for j in range(1, 20) if shard_for_job(j, 2) == victim]
            for job_id in owned[:2]:
                status, response = fleet.handle(
                    submit_frame(submit_payload(job_id))
                )
                assert status == 200 and response["type"] == "parked"
            status, response = fleet.handle(
                submit_frame(submit_payload(owned[2]))
            )
            assert status == 503
            assert response["error"]["code"] == "parking_full"
            assert response["error"]["retry_after"] > 0
            assert "parking_full" in protocol.RETRYABLE_CODES
        finally:
            fleet.stop()

    def test_reparking_a_waiting_job_id_is_idempotent(self):
        fleet = DegradedFleet(2, forward_retries=0, max_parked=2)
        try:
            victim = shard_for_job(1, 2)
            fleet.kill(victim)
            frame = submit_frame(submit_payload(1))
            for _ in range(3):  # retries must not consume capacity
                status, response = fleet.handle(frame)
                assert status == 200 and response["type"] == "parked"
            assert len(fleet.router.parking[victim]) == 1
        finally:
            fleet.stop()

    def test_parked_submits_flush_in_order_on_recovery(self):
        fleet = DegradedFleet(
            2, forward_retries=0, max_parked=16,
            failure_threshold=1, breaker_reset=0.05,
        )
        try:
            victim = shard_for_job(1, 2)
            port = fleet.kill(victim)
            owned = [j for j in range(1, 30) if shard_for_job(j, 2) == victim]
            for job_id in owned[:4]:
                status, response = fleet.handle(submit_frame(
                    submit_payload(job_id, submit_time=float(job_id))
                ))
                assert status == 200 and response["type"] == "parked"
            fleet.recover(victim, port)
            import time
            time.sleep(0.1)
            flushed = fleet.router.flush_parking()
            assert flushed == {str(victim): 4}
            assert len(fleet.router.parking[victim]) == 0
            # The shard's engine saw the submits in original arrival order.
            engine = fleet.services[victim].engine
            seen = [j for j in owned[:4] if j in engine._known_ids]
            assert seen == owned[:4]
            # Parked jobs are now queryable through the router.
            status, response = fleet.handle(
                {"v": PROTOCOL_VERSION, "type": "query", "job": owned[0]}
            )
            assert status == 200 and response["job"]["id"] == owned[0]
        finally:
            fleet.stop()


class TestMidBatchDeath:
    """A shard dead during a batch: siblings commit, victims park (or
    error, with parking off), and the merged frame preserves order."""

    def batch(self, n=8):
        return {
            "v": PROTOCOL_VERSION, "type": "batch",
            "jobs": [submit_payload(i, submit_time=float(i))
                     for i in range(1, n + 1)],
        }

    def test_victim_items_park_and_siblings_commit(self):
        fleet = DegradedFleet(2, forward_retries=0, max_parked=16)
        try:
            victim = shard_for_job(1, 2)
            fleet.kill(victim)
            frame = self.batch()
            status, response = fleet.handle(frame)
            assert status == 200
            results = response["results"]
            assert len(results) == len(frame["jobs"])
            for payload, item in zip(frame["jobs"], results):
                if shard_for_job(payload["id"], 2) == victim:
                    assert item["type"] == "parked", item
                    assert item["job"] == payload["id"]
                else:
                    assert item["ok"] and "decision" in item, item
            # Parked batch items are individually re-framed submits,
            # preserved in batch order.
            parked = [p for p in frame["jobs"]
                      if shard_for_job(p["id"], 2) == victim]
            lot = fleet.router.parking[victim]
            assert len(lot) == len(parked)
        finally:
            fleet.stop()

    def test_batch_after_recovery_matches_unkilled_fleet(self):
        """The tentpole invariant, in-process: a kill-park-recover drill
        ends byte-identical to a fleet that was never killed."""
        def run(drill: bool):
            fleet = DegradedFleet(
                2, forward_retries=0, max_parked=32,
                failure_threshold=1, breaker_reset=0.05,
            )
            try:
                victim = shard_for_job(1, 2)
                port = None
                frames = [
                    submit_frame(submit_payload(i, submit_time=float(i)))
                    for i in range(1, 13)
                ]
                for idx, frame in enumerate(frames):
                    if drill and idx == 4:
                        port = fleet.kill(victim)
                    if drill and idx == 9:
                        fleet.recover(victim, port)
                        import time
                        time.sleep(0.1)
                        fleet.router.flush_parking()
                    status, response = fleet.handle(frame)
                    assert status == 200, response
                    assert response.get("ok", False) is True
                if drill:
                    # Anything still parked drains before the final reads.
                    deadline = 50
                    while sum(
                        len(lot) for lot in fleet.router.parking
                    ) and deadline:
                        fleet.router.flush_parking()
                        deadline -= 1
                _, stats = fleet.handle(
                    {"v": PROTOCOL_VERSION, "type": "stats"}
                )
                _, drained = fleet.handle(
                    {"v": PROTOCOL_VERSION, "type": "drain"}
                )
                return protocol.encode(stats), protocol.encode(drained)
            finally:
                fleet.stop()

        assert run(drill=True) == run(drill=False)
