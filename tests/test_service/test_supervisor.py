"""Supervisor tests: real worker processes, real SIGKILLs, real recovery.

These spawn ``python -m repro serve`` subprocesses, so they are the
slowest tests in the service suite — one fleet per test, small shard
counts, and every scenario asserts something only a live process tree
can prove (respawn, WAL recovery across an actual process boundary,
port rebinding after an unclean death).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.service import protocol
from repro.service.engine import EngineConfig
from repro.service.loadgen import ServiceClient
from repro.service.sharding import (
    ShardRouter,
    ShardSupervisor,
    WorkerSpec,
    free_ports,
    shard_for_job,
    shard_path,
)

POLICY = "librarisk"
NODES = 4


def worker_env() -> dict:
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))),
        "src",
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def make_specs(num_shards: int, tmp_path, wal: bool = True) -> list:
    ports = free_ports(num_shards)
    specs = []
    for shard in range(num_shards):
        cmd = [
            sys.executable, "-m", "repro", "serve", "--policy", POLICY,
            "--nodes", str(NODES), "--port", str(ports[shard]),
            "--shard-id", str(shard), "--shard-count", str(num_shards),
        ]
        if wal:
            cmd += ["--wal",
                    shard_path(str(tmp_path / "fleet.wal"), shard, num_shards)]
        specs.append(WorkerSpec(
            shard_id=shard, cmd=cmd,
            url=f"http://127.0.0.1:{ports[shard]}", env=worker_env(),
        ))
    return specs


def make_fleet(num_shards: int, tmp_path, **supervisor_kwargs):
    specs = make_specs(num_shards, tmp_path)
    router = ShardRouter(
        EngineConfig(policy=POLICY, num_nodes=NODES),
        [spec.url for spec in specs],
        timeout=5.0,
    )
    supervisor = ShardSupervisor(
        specs, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        **supervisor_kwargs,
    )
    supervisor.router = router
    return supervisor, router


def submit_via(router: ShardRouter, job_id: int, submit_time: float,
               deadline_s: float = 15.0):
    body = json.dumps({
        "v": protocol.PROTOCOL_VERSION, "type": "submit",
        "job": {"id": job_id, "submit_time": submit_time, "runtime": 10.0,
                "estimated_runtime": 10.0, "numproc": 1, "deadline": 1000.0},
    }).encode()
    end = time.monotonic() + deadline_s
    while True:
        status, response = router.handle(body)
        if status == 200:
            return response
        if time.monotonic() > end:
            raise AssertionError(
                f"submit {job_id} failing after {deadline_s}s: "
                f"{status} {response}"
            )
        time.sleep(0.2)


class TestFreePorts:
    def test_ports_are_distinct_and_bindable(self):
        ports = free_ports(4)
        assert len(set(ports)) == 4
        assert all(p > 0 for p in ports)


class TestSupervisorLifecycle:
    def test_start_health_pids_and_clean_stop(self, tmp_path):
        supervisor, router = make_fleet(2, tmp_path)
        with supervisor:
            supervisor.start(wait_healthy=True, timeout=30.0)
            assert supervisor.all_alive()
            pids = supervisor.pids()
            assert set(pids) == {0, 1}
            # The router's pid mirror is what chaos kills aim at.
            assert router.shard_pids == pids
            for spec in supervisor.specs:
                assert ServiceClient(spec.url, timeout=2.0).healthy()
        assert not supervisor.all_alive()

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSupervisor([])
        spec = WorkerSpec(shard_id=0, cmd=["true"], url="http://x")
        with pytest.raises(ValueError):
            ShardSupervisor([spec], max_restarts=-1)
        with pytest.raises(ValueError):
            ShardSupervisor([spec], poll_interval=0.0)
        with pytest.raises(ValueError):
            ShardSupervisor([spec], backoff_base=0.0)
        with pytest.raises(ValueError):
            ShardSupervisor([spec], restart_refill=0.0)


class TestRestartPolicy:
    def test_jitter_is_deterministic_and_bounded(self):
        from repro.service.sharding.supervisor import _restart_jitter

        values = [_restart_jitter(s, r, 0.05)
                  for s in range(4) for r in range(4)]
        assert values == [_restart_jitter(s, r, 0.05)
                          for s in range(4) for r in range(4)]
        assert all(0.0 <= v < 0.05 for v in values)
        assert len(set(values)) > 1  # actually spreads respawns

    def test_backoff_escalates_across_consecutive_deaths(self, tmp_path):
        specs = make_specs(1, tmp_path)
        specs[0].cmd = [sys.executable, "-c", "import sys; sys.exit(3)"]
        supervisor = ShardSupervisor(
            specs, max_restarts=3, poll_interval=0.02,
            backoff_base=0.05, backoff_factor=2.0,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        with supervisor:
            with pytest.raises(RuntimeError):
                supervisor.start(wait_healthy=True, timeout=10.0)
            end = time.monotonic() + 10.0
            while not supervisor.workers[0].failed:
                assert time.monotonic() < end
                time.sleep(0.02)
        state = supervisor.workers[0]
        assert state.restarts == 3
        assert state.consecutive == 3  # never a stable run to reset it
        assert state.budget_used > 2.9  # no healthy uptime to refill

    def test_healthy_uptime_refills_the_restart_budget(self, tmp_path):
        """A worker flapping slower than the refill rate lives forever —
        this is what replaces the old lifetime max_restarts cap."""
        specs = make_specs(1, tmp_path)
        # A plain sleeper: healthy uptime is wall time alive.
        specs[0].cmd = [sys.executable, "-c", "import time; time.sleep(60)"]
        supervisor = ShardSupervisor(
            specs, max_restarts=2, poll_interval=0.02,
            backoff_base=0.02, restart_refill=0.2, stable_uptime=0.2,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        with supervisor:
            supervisor.start(wait_healthy=False)
            kills = 4  # > max_restarts: would be fatal under a hard cap
            for round_no in range(kills):
                end = time.monotonic() + 10.0
                while not supervisor.all_alive():
                    assert time.monotonic() < end, "respawn never happened"
                    time.sleep(0.02)
                time.sleep(0.5)  # healthy uptime: refills > 1 credit
                pid = supervisor.pids()[0]
                os.kill(pid, signal.SIGKILL)
                end = time.monotonic() + 10.0
                while supervisor.restart_counts()[0] < round_no + 1 or \
                        not supervisor.all_alive():
                    assert time.monotonic() < end, "budget should have refilled"
                    time.sleep(0.02)
            state = supervisor.workers[0]
            assert not state.failed
            assert state.restarts == kills
            snap = supervisor.supervision_snapshot()[0]
            assert snap["alive"] is True
            assert snap["restarts"] == kills
            assert snap["budget_used"] <= supervisor.max_restarts

    def test_supervision_snapshot_reports_a_failed_worker(self, tmp_path):
        specs = make_specs(1, tmp_path)
        specs[0].cmd = [sys.executable, "-c", "import sys; sys.exit(3)"]
        supervisor = ShardSupervisor(
            specs, max_restarts=1, poll_interval=0.02,
            backoff_base=0.02,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        with supervisor:
            with pytest.raises(RuntimeError):
                supervisor.start(wait_healthy=True, timeout=10.0)
            end = time.monotonic() + 10.0
            while not supervisor.workers[0].failed:
                assert time.monotonic() < end
                time.sleep(0.02)
            snap = supervisor.supervision_snapshot()[0]
            assert snap["failed"] is True
            assert snap["alive"] is False
            assert snap["budget"] == 1


class TestKillAndRecover:
    def test_sigkilled_worker_is_respawned_and_recovers_its_wal(self, tmp_path):
        supervisor, router = make_fleet(2, tmp_path)
        with supervisor:
            supervisor.start(wait_healthy=True, timeout=30.0)
            # Seed both shards, remembering one decision per shard.
            first = {}
            for job_id in range(1, 7):
                response = submit_via(router, job_id, float(job_id))
                first[job_id] = response["decision"]
            victim = shard_for_job(1, 2)
            os.kill(router.shard_pids[victim], signal.SIGKILL)

            # The monitor respawns the identical command line; the
            # worker recovers from its own shard WAL on the same port.
            end = time.monotonic() + 20.0
            while supervisor.restart_counts()[victim] < 1 or \
                    not supervisor.all_alive():
                assert time.monotonic() < end, "worker was not respawned"
                time.sleep(0.1)

            # A duplicate resubmit of a pre-kill job must be answered
            # from the recovered decision log, byte-identically.
            response = submit_via(router, 1, 1.0)
            assert response["duplicate"] is True
            assert response["decision"] == first[1]
            assert supervisor.restart_counts() == {victim: 1, 1 - victim: 0}

    def test_crash_looping_worker_is_marked_down(self, tmp_path):
        specs = make_specs(1, tmp_path)
        # A worker that dies instantly: invalid flag value.
        specs[0].cmd = [sys.executable, "-c", "import sys; sys.exit(3)"]
        supervisor = ShardSupervisor(
            specs, max_restarts=2, poll_interval=0.05,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        with supervisor:
            with pytest.raises(RuntimeError):
                supervisor.start(wait_healthy=True, timeout=10.0)
            end = time.monotonic() + 10.0
            while not supervisor.workers[0].failed:
                assert time.monotonic() < end
                time.sleep(0.05)
            assert supervisor.restart_counts()[0] == 2
            # Pid history shows the original spawn plus both respawns.
            assert len(supervisor.workers[0].history) == 3


class TestServeShardedCli:
    def test_serve_shards_runs_a_router_and_workers(self, tmp_path):
        port = free_ports(1)[0]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--shards", "2",
             "--nodes", str(NODES), "--policy", POLICY,
             "--port", str(port),
             "--wal", str(tmp_path / "cli.wal")],
            env=worker_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            url = f"http://127.0.0.1:{port}"
            end = time.monotonic() + 30.0
            while True:
                assert proc.poll() is None, proc.stdout.read()
                try:
                    with urllib.request.urlopen(f"{url}/healthz", timeout=1.0) as r:
                        health = json.loads(r.read())
                    if health.get("shards_down") == 0:
                        break
                except OSError:
                    pass
                assert time.monotonic() < end, "sharded serve never healthy"
                time.sleep(0.2)
            assert health["shard_count"] == 2
            client = ServiceClient(url, timeout=5.0)
            status, response = client.rpc({
                "v": protocol.PROTOCOL_VERSION, "type": "submit",
                "job": {"id": 1, "submit_time": 0.0, "runtime": 5.0,
                        "estimated_runtime": 5.0, "numproc": 1,
                        "deadline": 100.0},
            })
            assert status == 200, response
            assert response["decision"]["outcome"] == "accepted"
            # Worker WALs are shard-namespaced next to the --wal base.
            assert (tmp_path / "cli.shard0of2.wal").exists()
            assert (tmp_path / "cli.shard1of2.wal").exists()
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0
