"""Tests for the paper's metrics."""

import pytest

from repro.cluster.job import UrgencyClass
from repro.metrics.summary import compute_metrics
from tests.conftest import make_job


def completed_job(runtime=10.0, deadline=100.0, finish=10.0, submit=0.0, **kw):
    job = make_job(runtime=runtime, deadline=deadline, submit=submit, **kw)
    job.mark_submitted()
    job.mark_running(submit, [0])
    job.mark_completed(finish)
    return job


def rejected_job(**kw):
    job = make_job(**kw)
    job.mark_submitted()
    job.mark_rejected("test")
    return job


class TestHeadlineMetrics:
    def test_pct_fulfilled_counts_all_submitted(self):
        jobs = [
            completed_job(finish=10.0),                 # on time
            completed_job(finish=500.0),                # late
            rejected_job(),                             # rejected
        ]
        m = compute_metrics(jobs)
        assert m.total_submitted == 3
        assert m.deadlines_fulfilled == 1
        assert m.pct_deadlines_fulfilled == pytest.approx(100.0 / 3.0)

    def test_avg_slowdown_over_fulfilled_only(self):
        jobs = [
            completed_job(runtime=10.0, finish=20.0),   # slowdown 2, on time
            completed_job(runtime=10.0, finish=40.0),   # slowdown 4, on time
            completed_job(runtime=10.0, finish=500.0),  # late: excluded
        ]
        m = compute_metrics(jobs)
        assert m.avg_slowdown == pytest.approx(3.0)

    def test_avg_slowdown_zero_when_nothing_fulfilled(self):
        m = compute_metrics([rejected_job()])
        assert m.avg_slowdown == 0.0

    def test_late_job_stats(self):
        jobs = [completed_job(deadline=100.0, finish=150.0)]
        m = compute_metrics(jobs)
        assert m.completed_late == 1
        assert m.avg_delay_of_late_jobs == pytest.approx(50.0)

    def test_unfinished_counts_accepted_not_completed(self):
        running = make_job()
        running.mark_submitted()
        running.mark_running(0.0, [0])
        m = compute_metrics([running])
        assert m.accepted == 1
        assert m.completed == 0
        assert m.unfinished == 1

    def test_acceptance_pct(self):
        jobs = [completed_job(), rejected_job(), rejected_job(), completed_job()]
        m = compute_metrics(jobs)
        assert m.acceptance_pct == pytest.approx(50.0)

    def test_empty_input(self):
        m = compute_metrics([])
        assert m.total_submitted == 0
        assert m.pct_deadlines_fulfilled == 0.0

    def test_created_jobs_excluded(self):
        m = compute_metrics([make_job()])
        assert m.total_submitted == 0


class TestClassBreakdown:
    def test_per_class_counts(self):
        jobs = [
            completed_job(urgency=UrgencyClass.HIGH, finish=10.0),
            completed_job(urgency=UrgencyClass.HIGH, finish=900.0),
            completed_job(urgency=UrgencyClass.LOW, finish=10.0),
        ]
        m = compute_metrics(jobs)
        assert m.high_urgency.submitted == 2
        assert m.high_urgency.fulfilled == 1
        assert m.high_urgency.pct_fulfilled == pytest.approx(50.0)
        assert m.low_urgency.pct_fulfilled == pytest.approx(100.0)

    def test_empty_class_pct_zero(self):
        m = compute_metrics([completed_job(urgency=UrgencyClass.LOW)])
        assert m.high_urgency.pct_fulfilled == 0.0


class TestAsDict:
    def test_flat_dict_keys(self):
        m = compute_metrics([completed_job()])
        d = m.as_dict()
        for key in ("pct_deadlines_fulfilled", "avg_slowdown", "acceptance_pct",
                    "utilisation", "high_pct_fulfilled"):
            assert key in d

    def test_utilisation_included_with_cluster(self, sim):
        from repro.cluster.cluster import Cluster

        cluster = Cluster.homogeneous(sim, 2, rating=1.0, discipline="space_shared")
        cluster.node(0).start_task(make_job(), work=50.0, now=0.0)
        sim.run()
        m = compute_metrics([], cluster=cluster, horizon=100.0)
        assert m.utilisation == pytest.approx(0.25)
