"""Tests for the simulation time-series monitor."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.rms import ResourceManagementSystem
from repro.metrics.timeseries import SimulationMonitor, TimeSeries
from repro.scheduling.registry import make_policy
from repro.sim.kernel import Simulator
from tests.conftest import make_job


def run_monitored(jobs, period=10.0, policy="libra", num_nodes=2):
    sim = Simulator()
    discipline = "time_shared" if policy in ("libra", "librarisk") else "space_shared"
    cluster = Cluster.homogeneous(sim, num_nodes, rating=1.0, discipline=discipline)
    rms = ResourceManagementSystem(sim, cluster, make_policy(policy))
    monitor = SimulationMonitor(sim, cluster, rms, period=period)
    rms.submit_all(jobs)
    monitor.start()
    sim.run()
    return monitor, rms, sim


class TestTimeSeries:
    def test_append_and_stats(self):
        ts = TimeSeries("x")
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
            ts.append(t, v)
        assert len(ts) == 3
        assert ts.peak == 3.0
        assert ts.mean == pytest.approx(2.0)

    def test_at_or_before(self):
        ts = TimeSeries("x")
        ts.append(0.0, 1.0)
        ts.append(10.0, 2.0)
        assert ts.at_or_before(5.0) == 1.0
        assert ts.at_or_before(10.0) == 2.0
        assert ts.at_or_before(-1.0) is None

    def test_empty_stats(self):
        ts = TimeSeries("x")
        assert ts.peak == 0.0
        assert ts.mean == 0.0


class TestMonitor:
    def test_samples_busy_nodes_over_time(self):
        jobs = [make_job(runtime=50.0, deadline=100.0, submit=0.0)]
        monitor, _, _ = run_monitored(jobs, period=10.0)
        busy = monitor["busy_nodes"]
        # Busy while the job runs (t in [0, 100)), free afterwards.
        assert busy.at_or_before(0.0) == 1.0
        assert busy.values[-1] == 0.0

    def test_cumulative_counts_monotone(self):
        jobs = [
            make_job(runtime=20.0, deadline=100.0, submit=float(i * 5), job_id=i + 1)
            for i in range(5)
        ]
        monitor, rms, _ = run_monitored(jobs, period=7.0)
        for name in ("accepted", "rejected", "completed"):
            vals = monitor[name].values
            assert vals == sorted(vals)
        assert monitor["completed"].values[-1] == float(len(rms.completed))

    def test_allocated_share_tracks_eq1(self):
        # One job with share 0.5 on one node.
        jobs = [make_job(runtime=50.0, deadline=100.0)]
        monitor, _, _ = run_monitored(jobs, period=25.0)
        assert monitor["allocated_share"].at_or_before(0.0) == pytest.approx(0.5)

    def test_monitor_terminates_after_drain(self):
        jobs = [make_job(runtime=10.0, deadline=100.0)]
        monitor, _, sim = run_monitored(jobs, period=5.0)
        # The simulation ended; the monitor did not keep it alive forever.
        assert sim.peek() is None
        assert len(monitor["busy_nodes"]) >= 2

    def test_min_samples_respected(self):
        monitor, _, _ = run_monitored([], period=5.0)
        assert len(monitor["busy_nodes"]) >= 2

    def test_double_start_rejected(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 1, discipline="time_shared")
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        monitor = SimulationMonitor(sim, cluster, rms)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_bad_period(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 1, discipline="time_shared")
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        with pytest.raises(ValueError):
            SimulationMonitor(sim, cluster, rms, period=0.0)

    def test_convenience_views(self):
        jobs = [make_job(runtime=50.0, deadline=100.0, numproc=2)]
        monitor, _, _ = run_monitored(jobs, period=20.0)
        assert monitor.peak_busy_nodes() == 2.0
        assert monitor.mean_running_jobs() > 0.0
