"""Tests for the Computation-at-Risk metrics."""

import pytest

from repro.metrics.car import car_by_policy, computation_at_risk
from tests.conftest import make_job


def finished_job(runtime=10.0, finish=20.0, job_id=None):
    job = make_job(runtime=runtime, deadline=10_000.0, job_id=job_id)
    job.mark_submitted()
    job.mark_running(0.0, [0])
    job.mark_completed(finish)
    return job


def portfolio(response_times):
    return [finished_job(runtime=10.0, finish=rt) for rt in response_times]


class TestComputationAtRisk:
    def test_car_is_quantile_of_makespan(self):
        jobs = portfolio([float(i) for i in range(1, 101)])
        report = computation_at_risk(jobs, measure="makespan", confidence=0.95)
        assert report.car == pytest.approx(95.05, rel=0.01)
        assert report.n_jobs == 100

    def test_conditional_car_is_tail_mean(self):
        jobs = portfolio([10.0] * 90 + [100.0] * 10)
        report = computation_at_risk(jobs, measure="makespan", confidence=0.9)
        assert report.conditional_car == pytest.approx(100.0)

    def test_expansion_factor_measure_uses_slowdown(self):
        jobs = portfolio([20.0, 40.0])  # runtimes 10 -> slowdowns 2 and 4
        report = computation_at_risk(jobs, measure="expansion_factor", confidence=0.5)
        assert 2.0 <= report.car <= 4.0
        assert report.mean == pytest.approx(3.0)

    def test_tail_ratio(self):
        jobs = portfolio([10.0] * 99 + [1000.0])
        report = computation_at_risk(jobs, measure="makespan", confidence=0.99)
        assert report.tail_ratio > 10.0

    def test_incomplete_jobs_excluded(self):
        running = make_job()
        running.mark_submitted()
        running.mark_running(0.0, [0])
        jobs = portfolio([10.0, 20.0]) + [running]
        assert computation_at_risk(jobs).n_jobs == 2

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError, match="no completed jobs"):
            computation_at_risk([])

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5])
    def test_bad_confidence(self, confidence):
        with pytest.raises(ValueError):
            computation_at_risk(portfolio([1.0]), confidence=confidence)

    def test_bad_measure(self):
        with pytest.raises(ValueError, match="measure"):
            computation_at_risk(portfolio([1.0]), measure="vibes")

    def test_as_dict(self):
        report = computation_at_risk(portfolio([1.0, 2.0]))
        d = report.as_dict()
        assert set(d) == {"car", "conditional_car", "mean", "tail_ratio", "n_jobs"}


class TestCarByPolicy:
    def test_multiple_policies(self):
        results = {
            "calm": portfolio([10.0] * 50),
            "spiky": portfolio([10.0] * 45 + [500.0] * 5),
        }
        reports = car_by_policy(results, measure="makespan", confidence=0.9)
        assert reports["spiky"].car > reports["calm"].car

    def test_librarisk_tail_not_worse_than_libra(self):
        """Portfolio-level risk view of the headline scenario: despite
        accepting more jobs, LibraRisk's slowdown tail (CCaR) stays at
        or below Libra's."""
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_scenario_jobs
        from tests.conftest import run_jobs

        reports = {}
        for policy in ("libra", "librarisk"):
            jobs = build_scenario_jobs(ScenarioConfig(num_jobs=300, estimate_mode="trace"))
            rms, _, _ = run_jobs(policy, jobs, num_nodes=128, rating=168.0)
            reports[policy] = computation_at_risk(
                rms.jobs, measure="expansion_factor", confidence=0.9
            )
        assert reports["librarisk"].conditional_car <= reports["libra"].conditional_car * 1.1
