"""Runtime determinism sanitizer: guards, spans, and engine integration.

The sanitizer is the dynamic half of FLOW001: the static pass proves no
decision-path chain reaches a nondeterminism source; with
``REPRO_SANITIZE=1`` the guards prove it again at runtime by raising on
any wall-clock/entropy read fired inside an engine decision span.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import SanitizerViolation
from repro.service.engine import AdmissionEngine, EngineConfig
from tests.conftest import make_job


@pytest.fixture
def armed():
    """Install the guards for one test, restoring the originals after."""
    was_installed = sanitizer.installed()
    sanitizer.install()
    try:
        yield
    finally:
        if not was_installed:
            sanitizer.uninstall()


# -- guard mechanics ----------------------------------------------------------

def test_reads_outside_spans_pass_through(armed):
    assert time.time() > 0
    assert 0.0 <= random.random() < 1.0


def test_wall_clock_inside_span_raises(armed):
    with sanitizer.decision_span():
        with pytest.raises(SanitizerViolation) as excinfo:
            time.time()
    assert "time.time" in str(excinfo.value)
    assert excinfo.value.stack  # captured call stack for the report


def test_entropy_inside_span_raises(armed):
    with sanitizer.decision_span():
        with pytest.raises(SanitizerViolation):
            random.random()


def test_exempt_window_permits_sanctioned_reads(armed):
    with sanitizer.decision_span():
        with sanitizer.exempt():
            assert time.perf_counter() > 0


def test_seeded_random_instances_stay_untouched(armed):
    # Seeded streams are the repo's sanctioned randomness: a bound
    # `random.Random(seed)` must keep working inside spans.
    stream = random.Random(7)
    with sanitizer.decision_span():
        first = stream.random()
    assert first == random.Random(7).random()


def test_guards_impersonate_the_original_callables(armed):
    # Third-party code (pytest-benchmark) resolves timers through
    # __module__/__name__; the guard must be indistinguishable.
    assert time.perf_counter.__module__ == "time"
    assert time.perf_counter.__name__ == "perf_counter"


def test_install_is_idempotent_and_uninstall_restores():
    # Under REPRO_SANITIZE=1 the session conftest pre-installs the
    # guards; drop to the pristine state first and re-arm afterwards.
    was_installed = sanitizer.installed()
    if was_installed:
        sanitizer.uninstall()
    try:
        originals = (time.time, random.random)
        sanitizer.install()
        sanitizer.install()
        assert sanitizer.installed()
        sanitizer.uninstall()
        assert not sanitizer.installed()
        assert (time.time, random.random) == originals
    finally:
        if was_installed:
            sanitizer.install()


def test_install_from_env_respects_flag(monkeypatch):
    monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
    assert not sanitizer.enabled_by_env()
    monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
    assert sanitizer.enabled_by_env()
    monkeypatch.setenv(sanitizer.ENV_FLAG, "0")
    assert not sanitizer.enabled_by_env()


# -- cross-validation through the engine --------------------------------------

def test_engine_decision_span_catches_policy_clock_read(armed):
    # A deliberately broken admission hook that reads the wall clock
    # per decision — the exact defect class FLOW001 hunts statically.
    engine = AdmissionEngine(EngineConfig(num_nodes=4, rating=1.0))
    original = engine.policy.on_job_submitted

    def leaky(job, now):
        time.time()
        return original(job, now)

    engine.policy.on_job_submitted = leaky
    # submit() runs the kernel inside a decision span, and the
    # admission hook runs inside that advance: the read must raise.
    with pytest.raises(SanitizerViolation):
        engine.submit(make_job(submit=1.0, deadline=500.0))


def test_engine_decisions_are_clean_under_armed_sanitizer(armed):
    engine = AdmissionEngine(EngineConfig(num_nodes=4, rating=1.0))
    decision = engine.submit(make_job(submit=1.0, deadline=500.0))
    assert decision is not None
    engine.drain()
