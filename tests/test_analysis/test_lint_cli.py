"""CLI surface of the linter: exit codes, JSON schema, stats, self-check."""

from __future__ import annotations

import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint.cli import main as lint_main
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _violation_file(tmp_path) -> str:
    path = tmp_path / "bad.py"
    path.write_text(textwrap.dedent("""
        # repro-lint: module=repro.sim.fake
        import time

        def now(t: float) -> bool:
            return t == time.time()
    """))
    return str(path)


def _clean_file(tmp_path) -> str:
    path = tmp_path / "good.py"
    path.write_text(textwrap.dedent("""
        # repro-lint: module=repro.sim.fake
        def advance(sim, dt: float) -> float:
            return sim.now + dt
    """))
    return str(path)


# -- exit codes ---------------------------------------------------------------

def test_exit_zero_on_clean_tree(tmp_path):
    out = io.StringIO()
    assert lint_main([_clean_file(tmp_path)], out=out) == 0
    assert "0 finding(s)" in out.getvalue()


def test_exit_nonzero_on_violations(tmp_path):
    out = io.StringIO()
    assert lint_main([_violation_file(tmp_path)], out=out) == 1
    assert "DET001" in out.getvalue()


def test_exit_nonzero_on_unparseable_file(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    out = io.StringIO()
    assert lint_main([str(path)], out=out) == 1
    assert "error" in out.getvalue()


# -- JSON output schema -------------------------------------------------------

def test_json_output_schema(tmp_path):
    out = io.StringIO()
    code = lint_main([_violation_file(tmp_path), "--format", "json"], out=out)
    assert code == 1
    payload = json.loads(out.getvalue())
    assert set(payload) == {
        "files_checked", "findings", "baselined", "errors", "counts_by_rule",
    }
    assert payload["files_checked"] == 1
    assert payload["counts_by_rule"].keys() >= {"DET001"}
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert isinstance(finding["line"], int)


# -- baseline workflow --------------------------------------------------------

def test_baseline_write_then_ratchet(tmp_path):
    bad = _violation_file(tmp_path)
    baseline = str(tmp_path / "baseline.json")

    out = io.StringIO()
    assert lint_main([bad, "--baseline", baseline, "--write-baseline"], out=out) == 0

    # Same findings, baselined: clean exit.
    out = io.StringIO()
    assert lint_main([bad, "--baseline", baseline], out=out) == 0
    assert "baselined" in out.getvalue()

    # A NEW violation alongside the baselined ones still fails.
    extra = tmp_path / "worse.py"
    extra.write_text(
        "# repro-lint: module=repro.sim.fake\nimport random\n"
    )
    out = io.StringIO()
    assert lint_main([bad, str(extra), "--baseline", baseline], out=out) == 1


def test_write_baseline_requires_baseline_path(tmp_path):
    with pytest.raises(SystemExit) as exc:
        lint_main([_clean_file(tmp_path), "--write-baseline"], out=io.StringIO())
    assert exc.value.code == 2


# -- stats / observability ----------------------------------------------------

def test_stats_prints_per_rule_counts(tmp_path):
    out = io.StringIO()
    lint_main([_violation_file(tmp_path), "--stats"], out=out)
    text = out.getvalue()
    assert "lint_findings_total{rule=DET001} 2" in text  # import + call
    assert "lint_findings_total{rule=CONC001} 0" in text
    assert "lint_files_checked" in text


def test_stats_metrics_out_feeds_repro_inspect(tmp_path, capsys):
    log = str(tmp_path / "lint.jsonl")
    out = io.StringIO()
    lint_main([_violation_file(tmp_path), "--stats", "--metrics-out", log], out=out)

    # The log is a valid metrics log: `repro inspect --mode prom` reads it.
    assert repro_main(["inspect", log, "--mode", "prom"]) == 0
    prom = capsys.readouterr().out
    assert 'lint_findings_total{rule="DET001"} 2' in prom


def test_metrics_out_requires_stats(tmp_path):
    with pytest.raises(SystemExit) as exc:
        lint_main(
            [_clean_file(tmp_path), "--metrics-out", str(tmp_path / "x.jsonl")],
            out=io.StringIO(),
        )
    assert exc.value.code == 2


# -- entry points -------------------------------------------------------------

def test_list_rules_catalog():
    out = io.StringIO()
    assert lint_main(["--list-rules"], out=out) == 0
    text = out.getvalue()
    for rule_id in ("DET001", "DET002", "DET003", "CONC001", "CONC002", "API001"):
        assert rule_id in text


def test_repro_lint_subcommand(tmp_path, capsys):
    assert repro_main(["lint", _violation_file(tmp_path)]) == 1
    assert "DET001" in capsys.readouterr().out


def test_python_dash_m_repro_analysis(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", _violation_file(tmp_path)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "DET001" in proc.stdout


# -- the gate itself ----------------------------------------------------------

def test_src_tree_is_lint_clean_with_no_baseline():
    """`repro lint src/` must be clean at head — the CI gate's invariant."""
    out = io.StringIO()
    code = lint_main([str(SRC)], out=out)
    assert code == 0, out.getvalue()


def test_write_baseline_output_is_independent_of_finding_order(tmp_path):
    """The baseline file is a pure function of the finding *set*.

    Discovery order varies with traversal (shell glob vs os.walk vs
    explicit paths); a reordered rewrite must never show up as a diff.
    """
    import random

    from repro.analysis.lint.baseline import write_baseline
    from repro.analysis.lint.findings import Finding

    findings = [
        Finding(path=f"src/m{i % 3}.py", line=10 - i, col=i % 5,
                rule=f"DET00{1 + i % 3}", message=f"violation {i}")
        for i in range(12)
    ]
    reference = tmp_path / "a.json"
    write_baseline(str(reference), findings)

    shuffled = list(findings)
    random.Random(7).shuffle(shuffled)
    rewritten = tmp_path / "b.json"
    write_baseline(str(rewritten), shuffled)

    assert reference.read_bytes() == rewritten.read_bytes()
