"""Tests for series comparison helpers."""

import math

import pytest

from repro.analysis.compare import (
    crossover_points,
    dominance_fraction,
    improvement_pct,
    mean_improvement_pct,
    trend,
)


class TestImprovement:
    def test_pointwise(self):
        assert improvement_pct([110.0, 90.0], [100.0, 100.0]) == [
            pytest.approx(10.0), pytest.approx(-10.0)
        ]

    def test_zero_baseline(self):
        vals = improvement_pct([0.0, 5.0], [0.0, 0.0])
        assert vals[0] == 0.0
        assert math.isinf(vals[1])

    def test_mean_skips_infinite(self):
        assert mean_improvement_pct([5.0, 110.0], [0.0, 100.0]) == pytest.approx(10.0)

    def test_mean_all_infinite_is_zero(self):
        assert mean_improvement_pct([5.0], [0.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            improvement_pct([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            improvement_pct([], [])


class TestDominance:
    def test_full_dominance(self):
        assert dominance_fraction([2, 3, 4], [1, 2, 3]) == 1.0

    def test_half(self):
        assert dominance_fraction([2, 1], [1, 2]) == 0.5

    def test_lower_is_better(self):
        assert dominance_fraction([1, 1], [2, 2], higher_is_better=False) == 1.0

    def test_tolerance_counts_near_ties(self):
        assert dominance_fraction([0.99], [1.0], tolerance=0.05) == 1.0
        assert dominance_fraction([0.99], [1.0]) == 0.0


class TestCrossover:
    def test_no_crossing(self):
        assert crossover_points([0, 1, 2], [5, 6, 7], [1, 2, 3]) == []

    def test_single_crossing_interpolated(self):
        # a-b: +1 at x=0, -1 at x=1 -> crossing at x=0.5.
        xs = crossover_points([0.0, 1.0], [2.0, 1.0], [1.0, 2.0])
        assert xs == [pytest.approx(0.5)]

    def test_paper_fig1_style_crossover(self):
        # EDF beats Libra at low factor, loses after ~0.3.
        x = [0.1, 0.2, 0.3, 0.4]
        edf = [86.0, 88.0, 86.0, 84.0]
        libra = [77.0, 85.0, 92.0, 95.0]
        xs = crossover_points(x, edf, libra)
        assert len(xs) == 1
        assert 0.2 <= xs[0] <= 0.3

    def test_exact_tie_at_grid_point(self):
        xs = crossover_points([0, 1, 2], [1, 2, 3], [1, 1, 1])
        assert xs[0] == 0.0

    def test_tie_at_last_point(self):
        xs = crossover_points([0, 1], [2, 3], [1, 3])
        assert 1.0 in xs

    def test_misaligned_x(self):
        with pytest.raises(ValueError):
            crossover_points([0], [1, 2], [1, 2])


class TestTrend:
    def test_increasing(self):
        assert trend([1, 2, 3]) == "increasing"

    def test_decreasing(self):
        assert trend([3, 2, 1]) == "decreasing"

    def test_flat(self):
        assert trend([1, 1, 1]) == "flat"

    def test_mixed(self):
        assert trend([1, 3, 2]) == "mixed"

    def test_tolerance_absorbs_noise(self):
        assert trend([1.0, 1.005, 2.0], tolerance=0.01) == "increasing"

    def test_single_point_flat(self):
        assert trend([5.0]) == "flat"
