"""Engine behavior: suppressions, module resolution, baseline ratchet."""

from __future__ import annotations

import json
import textwrap
from collections import Counter

import pytest

from repro.analysis.lint.baseline import (
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.lint.engine import (
    lint_file,
    module_for_path,
    run_lint,
)
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.suppressions import parse_suppressions


def _write(tmp_path, body: str, name: str = "fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


# -- module resolution --------------------------------------------------------

@pytest.mark.parametrize("path,module", [
    ("src/repro/sim/kernel.py", "repro.sim.kernel"),
    ("src/repro/scheduling/__init__.py", "repro.scheduling"),
    ("repro/service/wal.py", "repro.service.wal"),
    ("src/repro/__init__.py", "repro"),
    ("somewhere/else.py", ""),
])
def test_module_for_path(path, module):
    assert module_for_path(path) == module


def test_module_pragma_overrides_path(tmp_path):
    path = _write(tmp_path, """
        # repro-lint: module=repro.sim.fake
        import time
    """)
    findings, error = lint_file(str(path))
    assert error is None
    assert [f.rule for f in findings] == ["DET001"]


def test_files_outside_repro_are_unscoped(tmp_path):
    path = _write(tmp_path, """
        import time
        x = 1.0 == 2.0
    """)
    findings, error = lint_file(str(path))
    assert error is None
    assert findings == []


# -- suppression pragmas ------------------------------------------------------

def test_line_suppression_silences_one_line_only(tmp_path):
    path = _write(tmp_path, """
        # repro-lint: module=repro.sim.fake
        def f(t: float, u: float) -> bool:
            a = t == 1.0  # repro-lint: disable=DET003  deliberate
            b = u == 2.0
            return a or b
    """)
    findings, _ = lint_file(str(path))
    assert len(findings) == 1
    assert "u" in findings[0].message or "2.0" in findings[0].message


def test_disable_all_on_line(tmp_path):
    path = _write(tmp_path, """
        # repro-lint: module=repro.sim.fake
        def f(t: float) -> bool:
            return t == 1.0  # repro-lint: disable=all
    """)
    findings, _ = lint_file(str(path))
    assert findings == []


def test_file_level_suppression(tmp_path):
    path = _write(tmp_path, """
        # repro-lint: module=repro.sim.fake
        # repro-lint: disable-file=DET003
        def f(t: float) -> bool:
            return t == 1.0
    """)
    findings, _ = lint_file(str(path))
    assert findings == []


def test_suppression_is_rule_specific(tmp_path):
    path = _write(tmp_path, """
        # repro-lint: module=repro.sim.fake
        # repro-lint: disable-file=DET001
        def f(t: float) -> bool:
            return t == 1.0
    """)
    findings, _ = lint_file(str(path))
    assert [f.rule for f in findings] == ["DET003"]


def test_pragma_parser_reads_multiple_rules():
    sup = parse_suppressions(
        "x = 1  # repro-lint: disable=DET001,DET003 justification here\n"
    )
    assert sup.is_line_suppressed(1, "DET001")
    assert sup.is_line_suppressed(1, "DET003")
    assert not sup.is_line_suppressed(1, "CONC001")
    assert not sup.is_line_suppressed(2, "DET001")


def test_unknown_directives_are_ignored():
    sup = parse_suppressions("# repro-lint: frobnicate=yes\n")
    assert sup.line_disables == {}
    assert sup.module_override is None


# -- engine errors ------------------------------------------------------------

def test_syntax_error_becomes_lint_error(tmp_path):
    path = _write(tmp_path, "def broken(:\n")
    result = run_lint([str(path)])
    assert result.findings == []
    assert len(result.errors) == 1
    assert "syntax error" in result.errors[0].message


def test_run_lint_walks_directories_deterministically(tmp_path):
    for name in ("b.py", "a.py"):
        _write(tmp_path, """
            # repro-lint: module=repro.sim.fake
            import time
        """, name=name)
    result = run_lint([str(tmp_path)])
    assert result.files_checked == 2
    assert [f.path for f in result.findings] == sorted(f.path for f in result.findings)


# -- baseline ratchet ---------------------------------------------------------

def _finding(path="src/x.py", rule="DET003", message="m", line=1):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


def test_baseline_roundtrip(tmp_path):
    baseline_path = str(tmp_path / "baseline.json")
    findings = [_finding(message="a"), _finding(message="b")]
    write_baseline(baseline_path, findings)
    loaded = load_baseline(baseline_path)
    assert loaded == Counter({f.key(): 1 for f in findings})


def test_partition_grandfathers_known_findings(tmp_path):
    known = _finding(message="old")
    fresh = _finding(message="new")
    baseline = Counter({known.key(): 1})
    new, grandfathered = partition([known, fresh], baseline)
    assert new == [fresh]
    assert grandfathered == [known]


def test_baseline_match_ignores_line_numbers():
    # An edit above the finding moves it; the baseline must still match.
    baseline = Counter({_finding(line=10).key(): 1})
    moved = _finding(line=99)
    new, grandfathered = partition([moved], baseline)
    assert new == []
    assert grandfathered == [moved]


def test_baseline_is_a_multiset():
    # Two identical findings, one baselined entry: one stays new.
    a, b = _finding(line=1), _finding(line=2)
    baseline = Counter({a.key(): 1})
    new, grandfathered = partition([a, b], baseline)
    assert len(new) == 1 and len(grandfathered) == 1


def test_load_baseline_rejects_foreign_json(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text(json.dumps({"version": 999}))
    with pytest.raises(ValueError):
        load_baseline(str(path))


# -- findings record ----------------------------------------------------------

def test_finding_render_and_dict():
    f = _finding(path="src/a.py", rule="DET001", message="no clocks", line=3)
    assert f.render() == "src/a.py:3:0: DET001 no clocks"
    assert f.as_dict() == {
        "path": "src/a.py", "line": 3, "col": 0,
        "rule": "DET001", "message": "no clocks",
    }
