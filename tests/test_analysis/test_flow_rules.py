"""Whole-program flow rules (FLOW001-004): fire + stay-silent fixtures.

Each fixture directory is a tiny multi-file program written to
tmp_path; ``# repro-lint: module=...`` pragmas give the files the
package-qualified names the sink/op tables key on.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.flow import run_flow
from repro.analysis.flow.callgraph import build_callgraph
from repro.analysis.flow.locks import check_lock_coverage, check_lock_order
from repro.analysis.flow.taint import check_taint
from repro.analysis.flow.walproto import check_wal_protocol


def _write(tmp_path: Path, name: str, module: str, body: str) -> str:
    path = tmp_path / name
    path.write_text(f"# repro-lint: module={module}\n" + textwrap.dedent(body))
    return str(path)


def _graph(tmp_path: Path, files: dict[str, tuple[str, str]]):
    paths = [_write(tmp_path, name, mod, body)
             for name, (mod, body) in sorted(files.items())]
    graph = build_callgraph(paths)
    assert not graph.errors, graph.errors
    return graph


# -- FLOW001: interprocedural nondeterminism taint ----------------------------

POLICY_WITH_DEEP_CLOCK = ("repro.scheduling.fakepol", """
    import time


    class Helper:
        def deep(self) -> float:
            return time.time()


    class FakePolicy:
        def __init__(self) -> None:
            self.helper = Helper()

        def mid(self) -> float:
            return self.helper.deep()

        def on_job_submitted(self, job, now):
            return self.mid()
""")


def test_flow001_reports_full_source_to_sink_chain(tmp_path):
    graph = _graph(tmp_path, {"pol.py": POLICY_WITH_DEEP_CLOCK})
    findings = check_taint(graph)
    assert [f.rule for f in findings] == ["FLOW001"]
    message = findings[0].message
    assert "wall-clock source time.time()" in message
    assert "'policy admission'" in message
    assert (
        "repro.scheduling.fakepol.FakePolicy.on_job_submitted -> "
        "repro.scheduling.fakepol.FakePolicy.mid -> "
        "repro.scheduling.fakepol.Helper.deep"
    ) in message


def test_flow001_boundary_on_source_function_sanctions_it(tmp_path):
    module, body = POLICY_WITH_DEEP_CLOCK
    body = body.replace(
        "def deep(self) -> float:",
        "def deep(self) -> float:"
        "  # repro-lint: boundary=FLOW001  replay reproduces this",
    )
    graph = _graph(tmp_path, {"pol.py": (module, body)})
    assert check_taint(graph) == []


def test_flow001_boundary_mid_chain_stops_propagation(tmp_path):
    module, body = POLICY_WITH_DEEP_CLOCK
    body = body.replace(
        "def mid(self) -> float:",
        "def mid(self) -> float:"
        "  # repro-lint: boundary=FLOW001  logged upstream",
    )
    graph = _graph(tmp_path, {"pol.py": (module, body)})
    assert check_taint(graph) == []


def test_flow001_silent_when_no_decision_root_reaches_source(tmp_path):
    graph = _graph(tmp_path, {"util.py": ("repro.util.fake", """
        import time

        def stamp() -> float:
            return time.time()
    """)})
    assert check_taint(graph) == []


def test_flow001_seeded_rng_module_is_exempt(tmp_path):
    graph = _graph(tmp_path, {
        "rng.py": ("repro.sim.rng", """
            import random

            def draw() -> float:
                return random.random()
        """),
        "pol.py": ("repro.scheduling.fakepol2", """
            from repro.sim.rng import draw


            class FakePolicy:
                def on_job_submitted(self, job, now):
                    return draw()
        """),
    })
    assert check_taint(graph) == []


# -- FLOW002: lock-order cycles -----------------------------------------------

LOCK_CYCLE = ("repro.service.fakelocks", """
    import threading


    class Pair:
        def __init__(self) -> None:
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()

        def path_one(self) -> None:
            with self._a_lock:
                with self._b_lock:
                    pass

        def path_two(self) -> None:
            with self._b_lock:
                self.grab_a()

        def grab_a(self) -> None:
            with self._a_lock:
                pass
""")


def test_flow002_reports_cycle_with_both_witnesses(tmp_path):
    graph = _graph(tmp_path, {"locks.py": LOCK_CYCLE})
    findings = check_lock_order(graph)
    assert [f.rule for f in findings] == ["FLOW002"]
    message = findings[0].message
    assert "lock-order cycle" in message
    assert "_a_lock" in message and "_b_lock" in message
    assert "path_one" in message and "path_two" in message


def test_flow002_silent_on_consistent_global_order(tmp_path):
    module, body = LOCK_CYCLE
    body = body.replace("self.grab_a()", "pass").replace(
        "with self._b_lock:\n                pass",
        "with self._b_lock:\n                pass",
    )
    graph = _graph(tmp_path, {"locks.py": (module, body)})
    assert check_lock_order(graph) == []


def test_flow002_sees_interprocedural_acquisition(tmp_path):
    # The cycle's second edge exists only through grab_a(): drop the
    # call and the order graph is acyclic even with both lexical sites.
    graph = _graph(tmp_path, {"locks.py": LOCK_CYCLE})
    assert check_lock_order(graph)
    module, body = LOCK_CYCLE
    subdir = tmp_path / "acyclic"
    subdir.mkdir()
    graph2 = _graph(
        subdir,
        {"locks.py": (module, body.replace("self.grab_a()", "pass"))},
    )
    assert check_lock_order(graph2) == []


# -- FLOW003: unlocked calls into locked scopes -------------------------------

LOCKED_SCOPE = ("repro.service.fakecov", """
    import threading


    class Keeper:
        def __init__(self) -> None:
            self._engine_lock = threading.Lock()

        def mutate(self) -> None:  # repro-lint: locked  caller holds lock
            pass

        def good(self) -> None:
            with self._engine_lock:
                self.mutate()

        def bad(self) -> None:
            self.mutate()
""")


def test_flow003_flags_unlocked_call_into_locked_scope(tmp_path):
    graph = _graph(tmp_path, {"cov.py": LOCKED_SCOPE})
    findings = check_lock_coverage(graph)
    assert [f.rule for f in findings] == ["FLOW003"]
    assert "Keeper.bad" in findings[0].message
    assert "Keeper.mutate" in findings[0].message


def test_flow003_accepts_lexical_lock_and_locked_caller(tmp_path):
    module, body = LOCKED_SCOPE
    body = body.replace(
        "def bad(self) -> None:",
        "def bad(self) -> None:  # repro-lint: locked  entered via good",
    )
    graph = _graph(tmp_path, {"cov.py": (module, body)})
    assert check_lock_coverage(graph) == []


# -- FLOW004: WAL protocol ----------------------------------------------------

WAL_FIXTURE = {
    "wal.py": ("repro.service.wal", """
        class WriteAheadLog:
            @classmethod
            def open(cls, path):
                return cls()

            def append(self, t, req, clamp=False):
                return 1

            def compact(self):
                return None


        def recover(path, engine):
            return None
    """),
    "engine.py": ("repro.service.engine", """
        class AdmissionEngine:
            def submit(self, job):
                return None
    """),
    "server.py": ("repro.service.server", """
        class ServiceServer:
            def serve_forever(self):
                return None
    """),
    "driver.py": ("repro.service.driver", """
        from repro.service.engine import AdmissionEngine
        from repro.service.server import ServiceServer
        from repro.service.wal import WriteAheadLog, recover


        def apply_first(engine: AdmissionEngine, wal: WriteAheadLog, job, req):
            engine.submit(job)
            wal.append(0.0, req)


        def serve_unrecovered(server: ServiceServer, path):
            wal = WriteAheadLog.open(path)
            server.serve_forever()


        def serve_recovered(server: ServiceServer, path, engine):
            wal = WriteAheadLog.open(path)
            recover(path, engine)
            server.serve_forever()


        def compact_unlocked(wal: WriteAheadLog):
            wal.compact()
    """),
}


def test_flow004_fires_all_three_checks_and_spares_recovered(tmp_path):
    graph = _graph(tmp_path, WAL_FIXTURE)
    findings = check_wal_protocol(graph)
    assert [f.rule for f in findings] == ["FLOW004"] * 3
    messages = " | ".join(f.message for f in findings)
    assert "apply_first reaches engine apply" in messages
    assert "serve_unrecovered opens a WAL and serves" in messages
    assert "compact_unlocked compacts the WAL with no lock held" in messages
    assert "serve_recovered" not in messages


def test_flow004_append_before_apply_is_clean(tmp_path):
    files = dict(WAL_FIXTURE)
    module, body = files["driver.py"]
    # Swap the two lines so the append precedes the apply.
    body = (
        body.replace("engine.submit(job)", "__SWAP__")
        .replace("wal.append(0.0, req)", "engine.submit(job)")
        .replace("__SWAP__", "wal.append(0.0, req)")
    )
    files["driver.py"] = (module, body)
    graph = _graph(tmp_path, files)
    messages = " ".join(f.message for f in check_wal_protocol(graph))
    assert "apply_first" not in messages


def test_flow004_safe_pragma_exempts_cold_compaction(tmp_path):
    files = dict(WAL_FIXTURE)
    module, body = files["driver.py"]
    body = body.replace(
        "def compact_unlocked(wal: WriteAheadLog):",
        "def compact_unlocked(wal: WriteAheadLog):"
        "  # repro-lint: safe=FLOW004  offline archive tool",
    )
    files["driver.py"] = (module, body)
    graph = _graph(tmp_path, files)
    messages = " ".join(f.message for f in check_wal_protocol(graph))
    assert "compact_unlocked" not in messages


def test_flow004_compact_under_lock_is_clean(tmp_path):
    files = dict(WAL_FIXTURE)
    module, body = files["driver.py"]
    body = body.replace(
        "def compact_unlocked(wal: WriteAheadLog):",
        "import threading\n\n"
        "        _wal_lock = threading.Lock()\n\n\n"
        "        def compact_unlocked(wal: WriteAheadLog):",
    ).replace(
        "wal.compact()",
        "with _wal_lock:\n                wal.compact()",
    )
    files["driver.py"] = (module, body)
    graph = _graph(tmp_path, files)
    messages = " ".join(f.message for f in check_wal_protocol(graph))
    assert "compact" not in messages


# -- run_flow: suppression + ordering -----------------------------------------

def test_run_flow_honors_line_disable_pragma(tmp_path):
    module, body = POLICY_WITH_DEEP_CLOCK
    body = body.replace(
        "return time.time()",
        "return time.time()  # repro-lint: disable=FLOW001  test seam",
    )
    path = _write(tmp_path, "pol.py", module, body)
    result = run_flow([path])
    assert result.findings == []
    assert result.errors == []


def test_run_flow_merges_and_sorts_all_rules(tmp_path):
    paths = [
        _write(tmp_path, "pol.py", *POLICY_WITH_DEEP_CLOCK),
        _write(tmp_path, "locks.py", *LOCK_CYCLE),
        _write(tmp_path, "cov.py", *LOCKED_SCOPE),
    ]
    result = run_flow(paths)
    rules = [f.rule for f in result.findings]
    assert sorted(rules) == ["FLOW001", "FLOW002", "FLOW003"]
    assert result.findings == sorted(result.findings)
    assert result.counts_by_rule() == {
        "FLOW001": 1, "FLOW002": 1, "FLOW003": 1,
    }
    assert result.stats["modules"] == 3
