"""Fast import-hygiene guard, independent of the `repro lint` engine.

`repro.sim` and `repro.scheduling` must never import the `time` or
`random` modules: wall clocks and the global random stream are exactly
the ambient state that breaks replay==batch parity. This walks the
module ASTs directly so the guard holds even if the linter's scoping
rules are ever loosened.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"

FORBIDDEN = {"time", "random"}

#: The sanctioned entropy source is allowed to construct numpy
#: generators; even it has no business with the stdlib modules above.
PACKAGES = ("repro/sim", "repro/scheduling")


def _module_files():
    for pkg in PACKAGES:
        yield from sorted((SRC / pkg).rglob("*.py"))


@pytest.mark.parametrize("path", _module_files(), ids=lambda p: str(p.relative_to(SRC)))
def test_no_wall_clock_or_global_random_imports(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            offenders.extend(
                alias.name for alias in node.names
                if alias.name.split(".")[0] in FORBIDDEN
            )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module or "").split(".")[0] in FORBIDDEN:
                offenders.append(node.module)
    assert not offenders, (
        f"{path} imports {offenders}: deterministic code must take the "
        f"simulated clock as an argument and draw randomness from "
        f"repro.sim.rng streams"
    )
