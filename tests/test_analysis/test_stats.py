"""Tests for replication statistics."""

import math

import pytest

from repro.analysis.stats import (
    Summary,
    paired_difference,
    significantly_greater,
    summarize,
)


class TestSummarize:
    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.stddev == 0.0
        assert s.ci95 == 0.0
        assert s.n == 1

    def test_mean_and_stddev(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.mean == pytest.approx(4.0)
        assert s.stddev == pytest.approx(2.0)
        assert s.n == 3

    def test_ci_uses_t_distribution(self):
        # n=3, dof=2 -> t = 4.303; ci = t * sd / sqrt(n)
        s = summarize([2.0, 4.0, 6.0])
        assert s.ci95 == pytest.approx(4.303 * 2.0 / math.sqrt(3), rel=1e-6)

    def test_large_sample_uses_normal(self):
        values = [float(i % 7) for i in range(100)]
        s = summarize(values)
        sd = s.stddev
        assert s.ci95 == pytest.approx(1.960 * sd / math.sqrt(100), rel=1e-6)

    def test_identical_values_zero_width(self):
        s = summarize([3.0] * 10)
        assert s.ci95 == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_interval_bounds_and_overlap(self):
        a = Summary(mean=10.0, stddev=1.0, ci95=2.0, n=5)
        b = Summary(mean=13.0, stddev=1.0, ci95=2.0, n=5)
        c = Summary(mean=20.0, stddev=1.0, ci95=2.0, n=5)
        assert a.low == 8.0 and a.high == 12.0
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_str(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestPairedDifference:
    def test_basic(self):
        d = paired_difference([5.0, 6.0, 7.0], [1.0, 2.0, 3.0])
        assert d.mean == pytest.approx(4.0)
        assert d.stddev == pytest.approx(0.0)

    def test_pairing_cancels_shared_variance(self):
        # Wildly different workloads per seed, constant per-seed gap.
        a = [10.0, 90.0, 45.0, 70.0]
        b = [8.0, 88.0, 43.0, 68.0]
        d = paired_difference(a, b)
        assert d.mean == pytest.approx(2.0)
        assert d.ci95 == pytest.approx(0.0, abs=1e-9)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            paired_difference([1.0], [1.0, 2.0])


class TestSignificance:
    def test_clear_winner(self):
        assert significantly_greater([10.0, 11.0, 12.0], [1.0, 2.0, 3.0])

    def test_noise_not_significant(self):
        assert not significantly_greater([1.0, 5.0, 2.0], [4.0, 1.0, 3.0])

    def test_direction_matters(self):
        assert not significantly_greater([1.0, 2.0, 3.0], [10.0, 11.0, 12.0])
