"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.asciichart import MARKERS, ascii_chart, panel_chart


class TestAsciiChart:
    def test_basic_render_contains_markers_and_axes(self):
        out = ascii_chart([0, 1, 2], {"a": [1.0, 2.0, 3.0]}, width=30, height=8)
        assert "*" in out
        assert "+-" in out            # x axis
        assert "*=a" in out           # legend

    def test_y_ticks_show_range(self):
        out = ascii_chart([0, 1], {"a": [10.0, 50.0]})
        assert "50" in out and "10" in out

    def test_multiple_series_distinct_markers(self):
        out = ascii_chart([0, 1], {"a": [1.0, 2.0], "b": [2.0, 1.0]})
        assert "*=a" in out and "o=b" in out
        assert "o" in out.splitlines()[0] + out  # marker actually plotted

    def test_rising_series_plots_high_on_right(self):
        out = ascii_chart([0, 1, 2], {"a": [0.0, 5.0, 10.0]}, width=30, height=10)
        rows = [l for l in out.splitlines() if "|" in l]
        top_row = rows[0]
        bottom_row = rows[-1]
        # max value (right end) near the top; min (left end) at bottom.
        assert top_row.rstrip().endswith("*")
        assert "*" in bottom_row[:22]

    def test_explicit_bounds_clamp(self):
        out = ascii_chart([0, 1], {"a": [0.0, 100.0]}, y_min=0.0, y_max=200.0)
        assert "200" in out

    def test_labels_rendered(self):
        out = ascii_chart([0, 1], {"a": [1.0, 2.0]}, y_label="pct", x_label="factor")
        assert "pct" in out and "factor" in out

    def test_non_finite_values_skipped(self):
        out = ascii_chart([0, 1, 2], {"a": [1.0, float("inf"), 2.0]})
        assert "*" in out

    @pytest.mark.parametrize("kwargs,err", [
        ({"x_values": [], "series": {"a": []}}, "x value"),
        ({"x_values": [0], "series": {}}, "series"),
        ({"x_values": [0], "series": {"a": [1.0, 2.0]}}, "length"),
        ({"x_values": [0], "series": {"a": [float("nan")]}}, "finite"),
    ])
    def test_validation(self, kwargs, err):
        with pytest.raises(ValueError, match=err):
            ascii_chart(**kwargs)

    def test_too_many_series(self):
        series = {f"s{i}": [1.0] for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValueError, match="at most"):
            ascii_chart([0], series)


class TestPanelChart:
    def test_charts_a_real_panel(self):
        from repro.experiments.figures import FULFILLED, Panel

        panel = Panel("b", "fulfilled — trace", "factor", FULFILLED,
                      (0.1, 0.5, 1.0),
                      {"edf": [50.0, 55.0, 60.0], "librarisk": [60.0, 75.0, 85.0]})
        out = panel_chart(panel)
        assert "(b) fulfilled — trace" in out
        assert "*=edf" in out and "o=librarisk" in out
