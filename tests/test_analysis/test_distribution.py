"""Tests for distribution summaries."""

import pytest

from repro.analysis.distribution import (
    compare_distributions,
    ecdf,
    ecdf_at,
    histogram_ascii,
    summarize_distribution,
)


class TestSummarize:
    def test_quantiles_and_moments(self):
        values = list(range(1, 101))
        s = summarize_distribution("x", values)
        assert s.n == 100
        assert s.mean == pytest.approx(50.5)
        assert s.quantiles[0.50] == pytest.approx(50.5)
        assert s.quantiles[0.99] > s.quantiles[0.50]

    def test_single_value(self):
        s = summarize_distribution("x", [5.0])
        assert s.std == 0.0
        assert s.quantiles[0.5] == 5.0

    def test_non_finite_filtered(self):
        s = summarize_distribution("x", [1.0, float("inf"), 2.0, float("nan")])
        assert s.n == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_distribution("x", [])

    def test_as_row_order(self):
        s = summarize_distribution("x", [1.0, 2.0], quantiles=(0.5,))
        row = s.as_row((0.5,))
        assert row[0] == "x" and row[1] == 2


class TestEcdf:
    def test_sorted_with_probs(self):
        xs, ps = ecdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ps[-1] == 1.0
        assert ps[0] == pytest.approx(1 / 3)

    def test_ecdf_at(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert ecdf_at(values, 2.5) == pytest.approx(0.5)
        assert ecdf_at(values, 0.0) == 0.0
        assert ecdf_at(values, 10.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf([])


class TestHistogram:
    def test_renders_bins_and_bars(self):
        values = [1.0] * 90 + [10.0] * 10
        out = histogram_ascii(values, bins=3, width=20)
        lines = out.splitlines()
        assert len(lines) == 3
        assert "#" * 20 in lines[0]  # dominant first bin at full width
        assert "90" in lines[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram_ascii([])


class TestCompare:
    def test_table_with_both_samples(self):
        out = compare_distributions({"a": [1.0, 2.0, 3.0], "b": [10.0, 20.0]})
        assert "a" in out and "b" in out
        assert "p50" in out and "p99" in out
