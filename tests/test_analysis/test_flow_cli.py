"""CLI surface of `repro flowcheck`: exit codes, JSON, stats, gates."""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

from repro.analysis.flow.cli import main as flow_main
from repro.analysis.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _tainted_file(tmp_path) -> str:
    path = tmp_path / "pol.py"
    path.write_text(textwrap.dedent("""
        # repro-lint: module=repro.scheduling.flowfake
        import time


        class FlowFake:
            def on_job_submitted(self, job, now):
                return time.time()
    """))
    return str(path)


def _clean_file(tmp_path) -> str:
    path = tmp_path / "calm.py"
    path.write_text(textwrap.dedent("""
        # repro-lint: module=repro.scheduling.flowcalm
        class Calm:
            def score(self, job) -> float:
                return job.runtime_estimate
    """))
    return str(path)


# -- exit codes ---------------------------------------------------------------

def test_exit_zero_on_clean_tree(tmp_path):
    out = io.StringIO()
    assert flow_main([_clean_file(tmp_path)], out=out) == 0
    assert "0 flow finding(s)" in out.getvalue()


def test_exit_one_on_findings(tmp_path):
    out = io.StringIO()
    assert flow_main([_tainted_file(tmp_path)], out=out) == 1
    assert "FLOW001" in out.getvalue()


def test_exit_one_on_unparseable_file(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    out = io.StringIO()
    assert flow_main([str(path)], out=out) == 1
    assert "syntax error" in out.getvalue()


def test_exit_three_on_exhausted_build_budget(tmp_path):
    out = io.StringIO()
    code = flow_main(
        [_clean_file(tmp_path), "--max-build-seconds", "0"], out=out
    )
    assert code == 3


def test_list_rules_covers_all_four(tmp_path):
    out = io.StringIO()
    assert flow_main(["--list-rules", str(tmp_path)], out=out) == 0
    listed = out.getvalue()
    for rule_id in ("FLOW001", "FLOW002", "FLOW003", "FLOW004"):
        assert rule_id in listed


# -- JSON output --------------------------------------------------------------

def test_json_schema_and_finding_payload(tmp_path):
    out = io.StringIO()
    flow_main([_tainted_file(tmp_path), "--format", "json"], out=out)
    payload = json.loads(out.getvalue())
    assert set(payload) == {
        "files_checked", "findings", "errors", "counts_by_rule", "graph",
    }
    assert payload["files_checked"] == 1
    assert payload["counts_by_rule"] == {"FLOW001": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "FLOW001"
    assert "on_job_submitted" in finding["message"]
    assert payload["graph"]["modules"] == 1


def test_json_output_is_byte_identical_across_runs(tmp_path):
    args = [
        _tainted_file(tmp_path), _clean_file(tmp_path), "--format", "json",
    ]
    first, second = io.StringIO(), io.StringIO()
    assert flow_main(args, out=first) == flow_main(args, out=second)
    assert first.getvalue() == second.getvalue()


def test_json_output_independent_of_path_order(tmp_path):
    tainted, clean = _tainted_file(tmp_path), _clean_file(tmp_path)
    first, second = io.StringIO(), io.StringIO()
    flow_main([tainted, clean, "--format", "json"], out=first)
    flow_main([clean, tainted, "--format", "json"], out=second)
    assert first.getvalue() == second.getvalue()


# -- stats --------------------------------------------------------------------

def test_stats_exports_graph_gauges_and_rule_counters(tmp_path):
    out = io.StringIO()
    flow_main([_tainted_file(tmp_path), "--stats"], out=out)
    rendered = out.getvalue()
    assert "flow_findings_total{rule=FLOW001} 1" in rendered
    assert "flow_graph_modules" in rendered
    assert "flow_graph_call_edges" in rendered
    assert "flow_files_checked" in rendered


def test_metrics_out_writes_registry_jsonl(tmp_path):
    metrics = tmp_path / "flow.jsonl"
    out = io.StringIO()
    flow_main(
        [_tainted_file(tmp_path), "--stats", "--metrics-out", str(metrics)],
        out=out,
    )
    lines = [json.loads(line) for line in metrics.read_text().splitlines()]
    assert lines[0]["type"] == "meta"
    assert lines[0]["scenario"] == "flowcheck"
    assert lines[1]["type"] == "registry"


# -- integration with `repro lint --flow` -------------------------------------

def test_lint_flow_merges_flow_findings(tmp_path):
    out = io.StringIO()
    # The fixture trips DET001 (per-file) AND FLOW001 (whole-program);
    # --flow must surface both in one sorted report.
    code = lint_main([_tainted_file(tmp_path), "--flow"], out=out)
    assert code == 1
    rendered = out.getvalue()
    assert "DET001" in rendered
    assert "FLOW001" in rendered


def test_lint_without_flow_skips_whole_program_rules(tmp_path):
    out = io.StringIO()
    lint_main([_tainted_file(tmp_path)], out=out)
    assert "FLOW001" not in out.getvalue()


# -- the gate itself ----------------------------------------------------------

def test_src_tree_is_flow_clean():
    """`repro flowcheck src/` must be clean at head — the CI invariant."""
    out = io.StringIO()
    code = flow_main([str(SRC)], out=out)
    assert code == 0, out.getvalue()
    assert "0 flow finding(s)" in out.getvalue()
