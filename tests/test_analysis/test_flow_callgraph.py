"""Call-graph construction: resolution cases, site capture, determinism.

Fixtures are written to tmp_path with ``# repro-lint: module=...``
pragmas so the builder scopes them like real package modules, exactly
as the per-file lint fixtures do.
"""

from __future__ import annotations

import random
import textwrap
from pathlib import Path

from repro.analysis.flow.callgraph import build_callgraph


def _write(tmp_path: Path, name: str, module: str, body: str) -> str:
    path = tmp_path / name
    path.write_text(f"# repro-lint: module={module}\n" + textwrap.dedent(body))
    return str(path)


def _graph(tmp_path: Path, files: dict[str, tuple[str, str]]):
    paths = [_write(tmp_path, name, mod, body)
             for name, (mod, body) in sorted(files.items())]
    return build_callgraph(paths)


# -- intra-module resolution --------------------------------------------------

def test_module_function_call_resolves(tmp_path):
    graph = _graph(tmp_path, {"a.py": ("repro.pkg.a", """
        def helper() -> int:
            return 1

        def entry() -> int:
            return helper()
    """)})
    assert graph.callees("repro.pkg.a.entry") == ("repro.pkg.a.helper",)
    assert graph.callers("repro.pkg.a.helper") == ("repro.pkg.a.entry",)


def test_self_method_and_constructor_resolve(tmp_path):
    graph = _graph(tmp_path, {"a.py": ("repro.pkg.a", """
        class Widget:
            def __init__(self) -> None:
                self.n = 0

            def bump(self) -> None:
                self.n += 1

            def run(self) -> None:
                self.bump()

        def make() -> Widget:
            return Widget()
    """)})
    assert "repro.pkg.a.Widget.bump" in graph.callees("repro.pkg.a.Widget.run")
    # A class call resolves to its constructor.
    assert "repro.pkg.a.Widget.__init__" in graph.callees("repro.pkg.a.make")


def test_typed_attribute_method_resolves(tmp_path):
    graph = _graph(tmp_path, {"a.py": ("repro.pkg.a", """
        class Engine:
            def submit(self) -> None:
                pass

        class Server:
            def __init__(self, engine: Engine) -> None:
                self.engine = engine

            def handle(self) -> None:
                self.engine.submit()
    """)})
    assert "repro.pkg.a.Engine.submit" in graph.callees("repro.pkg.a.Server.handle")


def test_nested_function_gets_locals_qualname(tmp_path):
    graph = _graph(tmp_path, {"a.py": ("repro.pkg.a", """
        def outer() -> None:
            def inner() -> None:
                pass
            inner()
    """)})
    inner = "repro.pkg.a.outer.<locals>.inner"
    assert inner in graph.functions
    assert inner in graph.callees("repro.pkg.a.outer")


# -- cross-module resolution --------------------------------------------------

def test_from_import_and_module_alias_resolve(tmp_path):
    graph = _graph(tmp_path, {
        "lib.py": ("repro.pkg.lib", """
            def work() -> None:
                pass

            def other() -> None:
                pass
        """),
        "use.py": ("repro.pkg.use", """
            from repro.pkg.lib import work
            from repro.pkg import lib

            def a() -> None:
                work()

            def b() -> None:
                lib.other()
        """),
    })
    assert graph.callees("repro.pkg.use.a") == ("repro.pkg.lib.work",)
    assert graph.callees("repro.pkg.use.b") == ("repro.pkg.lib.other",)


def test_from_imported_class_method_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "lib.py": ("repro.pkg.lib", """
            class Pool:
                def acquire(self) -> None:
                    pass
        """),
        "use.py": ("repro.pkg.use", """
            from repro.pkg.lib import Pool

            def go(p: Pool) -> None:
                p.acquire()
        """),
    })
    assert graph.callees("repro.pkg.use.go") == ("repro.pkg.lib.Pool.acquire",)


def test_fallback_skips_generic_method_names(tmp_path):
    # `get` is in the generic-name deny list: an unresolvable receiver
    # must NOT produce by-name edges to every `get` in the program.
    graph = _graph(tmp_path, {
        "a.py": ("repro.pkg.a", """
            class Store:
                def get(self) -> int:
                    return 1
        """),
        "b.py": ("repro.pkg.b", """
            def use(mystery) -> int:
                return mystery.get()
        """),
    })
    assert graph.callees("repro.pkg.b.use") == ()


def test_fallback_links_distinctive_method_names(tmp_path):
    graph = _graph(tmp_path, {
        "a.py": ("repro.pkg.a", """
            class Engine:
                def recompute_certificates(self) -> None:
                    pass
        """),
        "b.py": ("repro.pkg.b", """
            def use(mystery) -> None:
                mystery.recompute_certificates()
        """),
    })
    assert graph.callees("repro.pkg.b.use") == (
        "repro.pkg.a.Engine.recompute_certificates",)


# -- site capture -------------------------------------------------------------

def test_sources_locks_and_markers_are_captured(tmp_path):
    graph = _graph(tmp_path, {"a.py": ("repro.pkg.a", """
        import threading
        import time

        _lock = threading.Lock()

        def sample() -> float:  # repro-lint: safe=FLOW001
            return time.time()

        def guarded() -> None:
            with _lock:
                sample()
    """)})
    sample = graph.functions["repro.pkg.a.sample"]
    assert [s.kind for s in sample.sources] == ["wall-clock"]
    assert "FLOW001" in sample.safe_rules

    guarded = graph.functions["repro.pkg.a.guarded"]
    assert [site.lock for site in guarded.acquires] == ["repro.pkg.a._lock"]
    call = guarded.calls[0]
    assert call.locks_held == ("repro.pkg.a._lock",)


def test_syntax_error_becomes_graph_error(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    graph = build_callgraph([str(bad)])
    assert len(graph.errors) == 1
    assert "bad.py" in graph.errors[0].path


# -- determinism --------------------------------------------------------------

def test_graph_is_identical_regardless_of_input_order(tmp_path):
    files = {
        f"m{i}.py": (f"repro.pkg.m{i}", f"""
            def f{i}() -> int:
                return {i}

            def g{i}() -> int:
                return f{i}()
        """)
        for i in range(6)
    }
    paths = [_write(tmp_path, name, mod, body)
             for name, (mod, body) in files.items()]

    def snapshot(order):
        graph = build_callgraph(order)
        return (
            sorted(graph.functions),
            [(fn.qualname, graph.callees(fn.qualname))
             for fn in graph.sorted_functions()],
            graph.edge_count(),
        )

    reference = snapshot(paths)
    shuffled = list(paths)
    random.Random(42).shuffle(shuffled)
    assert snapshot(shuffled) == reference
