"""Positive and negative fixtures for every `repro lint` rule.

Each fixture is a small source file written to tmp_path carrying a
``# repro-lint: module=...`` pragma so the engine scopes it like real
package code. Every rule gets at least one fixture that must fire and
one that must stay silent.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.lint.engine import lint_file


def _lint(tmp_path: Path, module: str, body: str, name: str = "fixture.py"):
    source = f"# repro-lint: module={module}\n" + textwrap.dedent(body)
    path = tmp_path / name
    path.write_text(source)
    findings, error = lint_file(str(path))
    assert error is None, error
    return findings


def _rules(findings):
    return sorted({f.rule for f in findings})


# -- DET001 -------------------------------------------------------------------

def test_det001_flags_time_time(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        import time

        def now():
            return time.time()
    """)
    assert _rules(findings) == ["DET001"]
    assert len(findings) == 2  # the import and the call


def test_det001_flags_datetime_now_and_bare_random(tmp_path):
    findings = _lint(tmp_path, "repro.scheduling.fake", """
        import datetime
        import random

        def stamp():
            return datetime.datetime.now(), random.random()
    """)
    rules = [f.rule for f in findings]
    assert set(rules) == {"DET001"}
    messages = " ".join(f.message for f in findings)
    assert "datetime.datetime.now" in messages
    assert "random.random" in messages


def test_det001_flags_os_urandom_and_np_random(tmp_path):
    findings = _lint(tmp_path, "repro.metrics.fake", """
        import os
        import numpy as np

        def entropy():
            return os.urandom(8), np.random.default_rng()
    """)
    messages = " ".join(f.message for f in findings)
    assert "os.urandom" in messages
    assert "np.random.default_rng" in messages


def test_det001_silent_outside_deterministic_packages(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        import time

        def now():
            return time.time()
    """)
    assert "DET001" not in _rules(findings)


def test_det001_whitelists_the_rng_module(tmp_path):
    # repro.sim.rng is the sanctioned entropy source.
    findings = _lint(tmp_path, "repro.sim.rng", """
        import numpy as np

        def make(seed):
            return np.random.default_rng(seed)
    """)
    assert "DET001" not in _rules(findings)


def test_det001_allows_injected_clock_idiom(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def advance(sim, dt: float) -> float:
            return sim.now + dt
    """)
    assert findings == []


# -- DET002 -------------------------------------------------------------------

def test_det002_flags_set_iteration(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def emit(pending: set) -> list:
            out = []
            for job in pending:  # ordered input, fine
                out.append(job)
            for job in set(out):
                out.append(job)
            return out
    """)
    assert _rules(findings) == ["DET002"]
    assert len(findings) == 1  # only the set(...) loop


def test_det002_flags_dict_keys_and_set_literal_comprehension(tmp_path):
    findings = _lint(tmp_path, "repro.scheduling.fake", """
        def emit(d: dict) -> list:
            a = [k for k in d.keys()]
            b = [x for x in {1, 2, 3}]
            return a + b
    """)
    assert [f.rule for f in findings] == ["DET002", "DET002"]


def test_det002_flags_set_algebra(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def emit(a: set, b: set) -> list:
            return [x for x in set(a) | set(b)]
    """)
    assert _rules(findings) == ["DET002"]


def test_det002_sorted_wrapping_is_clean(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def emit(pending: set, d: dict) -> list:
            out = [x for x in sorted(pending)]
            for k in sorted(d.keys()):
                out.append(k)
            return out
    """)
    assert findings == []


# -- DET003 -------------------------------------------------------------------

def test_det003_flags_float_name_equality(tmp_path):
    findings = _lint(tmp_path, "repro.scheduling.fake", """
        def same(sigma: float) -> bool:
            return sigma == 0.0
    """)
    assert _rules(findings) == ["DET003"]


def test_det003_flags_float_literal_and_division(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def check(a: int, b: int, x) -> bool:
            return x == 0.5 or (a / b) != x
    """)
    assert [f.rule for f in findings] == ["DET003", "DET003"]


def test_det003_attribute_operand(tmp_path):
    findings = _lint(tmp_path, "repro.scheduling.fake", """
        def due(job, t) -> bool:
            return job.deadline == t
    """)
    assert _rules(findings) == ["DET003"]


def test_det003_ignores_integer_and_string_comparisons(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def check(n: int, s: str) -> bool:
            return n == 3 and s == "done" and n != 0
    """)
    assert findings == []


def test_det003_not_applied_outside_sim_scheduling(tmp_path):
    findings = _lint(tmp_path, "repro.metrics.fake", """
        def same(sigma: float) -> bool:
            return sigma == 0.0
    """)
    assert "DET003" not in _rules(findings)


def test_det003_numerics_module_is_exempt(tmp_path):
    findings = _lint(tmp_path, "repro.sim.numerics", """
        def exact_zero(x: float) -> bool:
            return x == 0.0
    """)
    assert findings == []


# -- CONC001 ------------------------------------------------------------------

def test_conc001_flags_unlocked_engine_mutation(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        class Service:
            def apply(self, lsn: int) -> None:
                self.engine.wal_lsn = lsn
    """)
    assert _rules(findings) == ["CONC001"]


def test_conc001_with_lock_is_clean(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        class Service:
            def apply(self, lsn: int) -> None:
                with self._engine_lock:
                    self.engine.wal_lsn = lsn
    """)
    assert findings == []


def test_conc001_locked_marker_exempts_function(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        class Service:
            def apply(self, lsn: int) -> None:  # repro-lint: locked  caller holds it
                self.engine.wal_lsn = lsn
    """)
    assert findings == []


def test_conc001_safe_marker_exempts_function(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        def restore(engine, snap) -> None:  # repro-lint: safe=CONC001  pre-publication
            engine.wal_lsn = snap["lsn"]
    """)
    assert findings == []


def test_conc001_rebinding_the_reference_is_construction(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        class Service:
            def __init__(self, engine) -> None:
                self.engine = engine
    """)
    assert findings == []


def test_conc001_nested_def_does_not_inherit_lock(tmp_path):
    # A closure created under the lock may run later, unlocked.
    findings = _lint(tmp_path, "repro.service.fake", """
        class Service:
            def apply(self, lsn: int):
                with self._engine_lock:
                    def later() -> None:
                        self.engine.wal_lsn = lsn
                    return later
    """)
    assert _rules(findings) == ["CONC001"]


def test_conc001_not_applied_to_engine_module_itself(tmp_path):
    findings = _lint(tmp_path, "repro.service.engine", """
        class AdmissionEngine:
            def bump(self, wal, lsn: int) -> None:
                wal.next_lsn = lsn
    """)
    assert findings == []


# -- CONC002 ------------------------------------------------------------------

def test_conc002_flags_apply_before_append(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        class Service:
            def handle(self, req) -> None:
                self.engine.submit(req.job)
                self._wal_append(req)
    """)
    assert _rules(findings) == ["CONC002"]


def test_conc002_append_then_apply_is_clean(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        class Service:
            def handle(self, req) -> None:
                self._wal_append(req)
                self.engine.submit(req.job)

            def advance(self, req) -> None:
                self.wal.append(req)
                self.engine.advance(req.to)
    """)
    assert findings == []


def test_conc002_ignores_functions_without_append(tmp_path):
    # Replay/recovery applies records that are already durable.
    findings = _lint(tmp_path, "repro.service.fake", """
        def apply_record(engine, record) -> None:
            engine.submit(record.job)
    """)
    assert findings == []


# -- API001 -------------------------------------------------------------------

def test_api001_flags_missing_annotations(tmp_path):
    findings = _lint(tmp_path, "repro.service.protocol", """
        def parse(data):
            return data

        class Codec:
            def encode(self, value: int):
                return value
    """)
    messages = " ".join(f.message for f in findings)
    assert _rules(findings) == ["API001"]
    assert "'parse'" in messages and "'encode'" in messages


def test_api001_fully_annotated_is_clean(tmp_path):
    findings = _lint(tmp_path, "repro.scheduling.base", """
        class SchedulingPolicy:
            def admit(self, job: object) -> bool:
                return True

        def helper(x: int, *args: int, **kw: int) -> int:
            return x
    """)
    assert findings == []


def test_api001_private_functions_are_exempt(tmp_path):
    findings = _lint(tmp_path, "repro.service.protocol", """
        def _internal(data):
            return data
    """)
    assert findings == []


def test_api001_only_applies_to_contract_modules(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        def parse(data):
            return data
    """)
    assert "API001" not in _rules(findings)


# -- CONC003 ------------------------------------------------------------------

def test_conc003_flags_unlocked_ring_mutation(tmp_path):
    findings = _lint(tmp_path, "repro.obs.windows", """
        class Counter:
            def note(self, t):
                self._counts[0] += 1.0
                self.cursor = t
    """)
    assert _rules(findings) == ["CONC003"]
    assert len(findings) == 2
    # The subscript write is attributed to the ring, not ignored.
    assert "self._counts" in findings[0].message


def test_conc003_flags_unlocked_container_method(tmp_path):
    findings = _lint(tmp_path, "repro.obs.metrics", """
        class Histogram:
            def observe(self, value):
                self._values.append(value)
    """)
    assert _rules(findings) == ["CONC003"]
    assert "append" in findings[0].message


def test_conc003_silent_under_the_lock(tmp_path):
    findings = _lint(tmp_path, "repro.obs.windows", """
        class Counter:
            def note(self, t):
                with self._lock:
                    self._counts[0] += 1.0
                    self._values.append(t)
    """)
    assert findings == []


def test_conc003_init_is_exempt(tmp_path):
    findings = _lint(tmp_path, "repro.obs.windows", """
        import threading

        class Counter:
            def __init__(self):
                self._counts = [0.0]
                self._lock = threading.Lock()
    """)
    assert findings == []


def test_conc003_locked_pragma_honoured(tmp_path):
    findings = _lint(tmp_path, "repro.obs.windows", """
        class Counter:
            def _advance(self, t):  # repro-lint: locked  callers hold self._lock
                self.cursor = t
    """)
    assert findings == []


def test_conc003_ignores_locals_and_other_modules(tmp_path):
    # Local variables are thread-private; other repro.obs modules
    # (exporters, console) are out of scope for this rule.
    findings = _lint(tmp_path, "repro.obs.windows", """
        class Counter:
            def snapshot(self):
                out = []
                out.append(1)
                return out
    """)
    assert findings == []
    findings = _lint(tmp_path, "repro.obs.console", """
        class View:
            def poll(self):
                self.last = 1
    """)
    assert findings == []


def test_conc003_nested_def_does_not_inherit_lock(tmp_path):
    findings = _lint(tmp_path, "repro.obs.windows", """
        class Counter:
            def start(self):
                with self._lock:
                    def worker():
                        self.cursor = 1.0
                    return worker
    """)
    assert _rules(findings) == ["CONC003"]


# -- DET002: name-binding tracking --------------------------------------------

def test_det002_flags_iteration_over_name_bound_to_set(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def emit(xs: list) -> list:
            s = set(xs)
            out = []
            for x in s:
                out.append(x)
            return out
    """)
    assert _rules(findings) == ["DET002"]
    assert "name bound to a set/frozenset value" in findings[0].message


def test_det002_flags_module_level_frozenset_constant(tmp_path):
    findings = _lint(tmp_path, "repro.scheduling.fake", """
        NAMES = frozenset({"edf", "libra"})

        def emit() -> list:
            return [n for n in NAMES]
    """)
    assert _rules(findings) == ["DET002"]


def test_det002_rebinding_through_sorted_clears_the_taint(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def emit(xs: list) -> list:
            s = set(xs)
            s = sorted(s)
            return [x for x in s]
    """)
    assert findings == []


def test_det002_sorted_wrap_of_bound_name_is_clean(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def emit(xs: list) -> list:
            s = set(xs)
            return [x for x in sorted(s)]
    """)
    assert findings == []


def test_det002_parameter_shadowing_resets_the_binding(tmp_path):
    # The module-level set binding must not leak into a function whose
    # parameter shadows the name: parameters have unknown order-ness.
    findings = _lint(tmp_path, "repro.sim.fake", """
        s = frozenset({1, 2})

        def emit(s: list) -> list:
            return [x for x in s]
    """)
    assert findings == []


def test_det002_augmented_set_algebra_keeps_the_binding(tmp_path):
    findings = _lint(tmp_path, "repro.sim.fake", """
        def emit(xs: list, ys: list) -> list:
            s = set(xs)
            s |= set(ys)
            return [x for x in s]
    """)
    assert _rules(findings) == ["DET002"]


# -- scope markers on decorated defs and multi-line with ----------------------

def test_conc001_locked_marker_on_decorator_line(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        def traced(fn):
            return fn

        class Service:
            @traced  # repro-lint: locked  dispatch holds the engine lock
            def apply(self, lsn: int) -> None:
                self.engine.wal_lsn = lsn
    """)
    assert findings == []


def test_conc001_marker_on_def_line_under_decorator(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        def traced(fn):
            return fn

        class Service:
            @traced
            def apply(self, lsn: int) -> None:  # repro-lint: locked  caller holds it
                self.engine.wal_lsn = lsn
    """)
    assert findings == []


def test_conc003_safe_marker_on_decorator_line(tmp_path):
    findings = _lint(tmp_path, "repro.obs.windows", """
        def traced(fn):
            return fn

        class Counter:
            @traced  # repro-lint: safe=CONC003  single-threaded rebuild
            def rebuild(self):
                self._counts[0] = 0.0
    """)
    assert findings == []


def test_conc001_decorated_function_without_marker_still_fires(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        def traced(fn):
            return fn

        class Service:
            @traced
            def apply(self, lsn: int) -> None:
                self.engine.wal_lsn = lsn
    """)
    assert _rules(findings) == ["CONC001"]


def test_conc001_multiline_parenthesized_with_is_recognized(tmp_path):
    findings = _lint(tmp_path, "repro.service.fake", """
        class Service:
            def apply(self, lsn: int) -> None:
                with (
                    self._engine_lock,
                    self._wal_lock,
                ):
                    self.engine.wal_lsn = lsn
    """)
    assert findings == []


def test_conc003_multiline_with_covers_trailing_statements(tmp_path):
    findings = _lint(tmp_path, "repro.obs.windows", """
        class Counter:
            def note(self, t):
                with (
                    self._lock
                ):
                    self._counts[0] += 1.0
                    self._values.append(t)
    """)
    assert findings == []
