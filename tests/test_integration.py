"""End-to-end checks of the paper's qualitative claims (§5).

Run at a reduced but still meaningful scale (1200 jobs, the full
128-node machine) so the suite stays fast; the full 3000-job runs live
in the benchmark harness and EXPERIMENTS.md.
"""

import pytest

from repro.analysis.compare import dominance_fraction, mean_improvement_pct
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_policies

BASE = ScenarioConfig(num_jobs=1200, num_nodes=128, seed=42)


@pytest.fixture(scope="module")
def accurate():
    return run_policies(BASE.replace(estimate_mode="accurate"), ["edf", "libra", "librarisk"])


@pytest.fixture(scope="module")
def trace():
    return run_policies(BASE.replace(estimate_mode="trace"), ["edf", "libra", "librarisk"])


def fulfilled(results, name):
    return results[name].metrics.pct_deadlines_fulfilled


def slowdown(results, name):
    return results[name].metrics.avg_slowdown


class TestAccurateEstimates:
    """Paper §5.1, panels (a)/(c) of Figures 1–3."""

    def test_libra_fulfils_more_than_edf(self, accurate):
        assert fulfilled(accurate, "libra") > fulfilled(accurate, "edf")

    def test_librarisk_matches_libra(self, accurate):
        assert fulfilled(accurate, "librarisk") == pytest.approx(
            fulfilled(accurate, "libra"), abs=1.0
        )

    def test_libra_and_librarisk_same_slowdown(self, accurate):
        assert slowdown(accurate, "librarisk") == pytest.approx(
            slowdown(accurate, "libra"), rel=0.02
        )

    def test_edf_has_lowest_slowdown(self, accurate):
        assert slowdown(accurate, "edf") < slowdown(accurate, "libra")

    def test_everything_ends_completed_or_rejected(self, accurate):
        for res in accurate.values():
            assert res.metrics.unfinished == 0


class TestTraceEstimates:
    """Paper §5.1, panels (b)/(d): the headline result."""

    def test_everyone_worse_than_with_accurate_estimates(self, accurate, trace):
        for name in ("edf", "libra", "librarisk"):
            assert fulfilled(trace, name) < fulfilled(accurate, name)

    def test_librarisk_fulfils_many_more_jobs_than_libra(self, trace):
        # The paper reports substantial improvements (tens of percent).
        improvement = fulfilled(trace, "librarisk") - fulfilled(trace, "libra")
        assert improvement > 10.0

    def test_librarisk_slowdown_below_libra(self, trace):
        assert slowdown(trace, "librarisk") < slowdown(trace, "libra")

    def test_edf_still_lowest_slowdown(self, trace):
        assert slowdown(trace, "edf") < slowdown(trace, "librarisk")


class TestVaryingWorkload:
    """Paper §5.2 / Figure 1: EDF wins only under the heaviest load."""

    @pytest.fixture(scope="class")
    def sweep_accurate(self):
        from repro.experiments.sweeps import sweep

        return sweep(
            BASE.replace(estimate_mode="accurate"),
            "arrival_delay_factor",
            [0.1, 0.5, 1.0],
            ["edf", "libra", "librarisk"],
        )

    def test_edf_beats_libra_at_heaviest_load(self, sweep_accurate):
        s = sweep_accurate.series("pct_deadlines_fulfilled")
        assert s["edf"][0] > s["libra"][0]

    def test_libra_wins_at_light_load(self, sweep_accurate):
        s = sweep_accurate.series("pct_deadlines_fulfilled")
        assert s["libra"][-1] > s["edf"][-1]

    def test_libra_improves_with_lighter_load(self, sweep_accurate):
        s = sweep_accurate.series("pct_deadlines_fulfilled")
        assert s["libra"] == sorted(s["libra"])


class TestVaryingHighUrgency:
    """Paper §5.4 / Figure 3: LibraRisk's advantage grows with urgency."""

    @pytest.fixture(scope="class")
    def sweep_urgency(self):
        from repro.experiments.sweeps import sweep

        def set_urgency(cfg, pct):
            return cfg.replace(high_urgency_fraction=pct / 100.0)

        return sweep(
            BASE.replace(estimate_mode="trace"),
            "urgency_pct",
            [20.0, 80.0],
            ["edf", "libra", "librarisk"],
            transform=set_urgency,
        )

    def test_libra_degrades_with_urgency(self, sweep_urgency):
        s = sweep_urgency.series("pct_deadlines_fulfilled")
        assert s["libra"][1] < s["libra"][0]

    def test_librarisk_improvement_grows_with_urgency(self, sweep_urgency):
        s = sweep_urgency.series("pct_deadlines_fulfilled")
        gain_low = s["librarisk"][0] - s["libra"][0]
        gain_high = s["librarisk"][1] - s["libra"][1]
        assert gain_high > gain_low

    def test_librarisk_dominates_both_at_all_urgencies(self, sweep_urgency):
        s = sweep_urgency.series("pct_deadlines_fulfilled")
        assert dominance_fraction(s["librarisk"], s["libra"]) == 1.0


class TestVaryingInaccuracy:
    """Paper §5.5 / Figure 4."""

    @pytest.fixture(scope="class")
    def sweep_inaccuracy(self):
        from repro.experiments.sweeps import sweep

        return sweep(
            BASE.replace(estimate_mode="inaccuracy"),
            "inaccuracy_pct",
            [0.0, 50.0, 100.0],
            ["libra", "librarisk"],
        )

    def test_fulfilment_degrades_with_inaccuracy(self, sweep_inaccuracy):
        s = sweep_inaccuracy.series("pct_deadlines_fulfilled")
        assert s["libra"][-1] < s["libra"][0]

    def test_librarisk_degrades_least(self, sweep_inaccuracy):
        s = sweep_inaccuracy.series("pct_deadlines_fulfilled")
        drop_libra = s["libra"][0] - s["libra"][-1]
        drop_risk = s["librarisk"][0] - s["librarisk"][-1]
        assert drop_risk < drop_libra

    def test_equal_at_zero_inaccuracy(self, sweep_inaccuracy):
        s = sweep_inaccuracy.series("pct_deadlines_fulfilled")
        assert s["librarisk"][0] == pytest.approx(s["libra"][0], abs=1.0)

    def test_librarisk_mean_improvement_substantial(self, sweep_inaccuracy):
        s = sweep_inaccuracy.series("pct_deadlines_fulfilled")
        assert mean_improvement_pct(s["librarisk"][1:], s["libra"][1:]) > 10.0
