"""Tests for workload perturbations (failure injection)."""

import numpy as np
import pytest

from repro.workload.perturbations import (
    corrupt_estimates,
    drop_jobs,
    inflate_runtimes,
    inject_arrival_storm,
)
from repro.workload.swf import STATUS_CANCELLED, SWFRecord


def recs(n=200):
    return [
        SWFRecord(job_number=i + 1, submit_time=float(i * 100), run_time=1000.0,
                  allocated_procs=2, requested_procs=2, requested_time=2000.0)
        for i in range(n)
    ]


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestCorruptEstimates:
    def test_fraction_corrupted(self, rng):
        out = corrupt_estimates(recs(), 0.3, rng)
        changed = sum(1 for a, b in zip(recs(), out) if a.requested_time != b.requested_time)
        assert changed == pytest.approx(60, abs=25)

    def test_corruption_spans_orders_of_magnitude(self, rng):
        out = corrupt_estimates(recs(2000), 1.0, rng, low_factor=0.01, high_factor=100.0)
        factors = np.array([r.requested_time / r.run_time for r in out])
        assert factors.min() < 0.1
        assert factors.max() > 10.0

    def test_zero_fraction_is_identity(self, rng):
        assert corrupt_estimates(recs(), 0.0, rng) == recs()

    def test_inputs_untouched(self, rng):
        original = recs()
        corrupt_estimates(original, 1.0, rng)
        assert original == recs()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            corrupt_estimates(recs(), 1.5, rng)
        with pytest.raises(ValueError):
            corrupt_estimates(recs(), 0.5, rng, low_factor=0.0)


class TestArrivalStorm:
    def test_window_compressed(self):
        out = inject_arrival_storm(recs(), start=5000.0, end=10_000.0, compression=0.1)
        inside = [r for r in out if 5000.0 <= r.submit_time < 5600.0]
        # Jobs originally at 5000..9900 now land within 5000 + 0.1*4900.
        assert len(inside) == len([r for r in recs() if 5000.0 <= r.submit_time < 10_000.0])

    def test_outside_window_untouched(self):
        out = inject_arrival_storm(recs(), start=5000.0, end=10_000.0)
        by_num = {r.job_number: r for r in out}
        for rec in recs():
            if not (5000.0 <= rec.submit_time < 10_000.0):
                assert by_num[rec.job_number].submit_time == rec.submit_time

    def test_result_sorted(self):
        out = inject_arrival_storm(recs(), start=3000.0, end=9000.0, compression=0.01)
        times = [r.submit_time for r in out]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_arrival_storm(recs(), start=10.0, end=5.0)
        with pytest.raises(ValueError):
            inject_arrival_storm(recs(), start=0.0, end=10.0, compression=0.0)


class TestDropJobs:
    def test_dropped_marked_cancelled(self, rng):
        out = drop_jobs(recs(), 0.25, rng)
        cancelled = [r for r in out if r.status == STATUS_CANCELLED]
        assert len(cancelled) == pytest.approx(50, abs=25)
        assert all(not r.usable for r in cancelled)

    def test_count_preserved(self, rng):
        assert len(drop_jobs(recs(), 0.5, rng)) == 200

    def test_pipeline_filters_cancelled(self, rng):
        from repro.workload.traces import usable_records

        out = drop_jobs(recs(), 0.5, rng)
        usable = usable_records(out)
        assert 0 < len(usable) < 200


class TestInflateRuntimes:
    def test_inflation_creates_overrunners(self, rng):
        # All base records are over-estimated 2x; inflating actuals up
        # to 3x must push some past their requests.
        out = inflate_runtimes(recs(1000), 1.0, rng, max_inflation=3.0)
        overrunners = [r for r in out if r.run_time > r.requested_time]
        assert len(overrunners) > 100

    def test_estimates_untouched(self, rng):
        out = inflate_runtimes(recs(), 1.0, rng)
        assert all(r.requested_time == 2000.0 for r in out)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            inflate_runtimes(recs(), 0.5, rng, max_inflation=1.0)


class TestEndToEndRobustness:
    @staticmethod
    def _run_corrupted(rng, low_factor, high_factor):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import load_base_records
        from repro.sim.rng import RngStreams
        from repro.workload.traces import WorkloadSpec, build_jobs
        from tests.conftest import run_jobs as run_policy_jobs

        cfg = ScenarioConfig(num_jobs=300)
        records = corrupt_estimates(
            load_base_records(cfg), 0.2, rng,
            low_factor=low_factor, high_factor=high_factor,
        )
        stats = {}
        for policy in ("libra", "librarisk"):
            jobs = build_jobs(records, WorkloadSpec(estimate_mode="trace"),
                              RngStreams(seed=42))
            rms, _, _ = run_policy_jobs(policy, jobs, num_nodes=64, rating=168.0)
            stats[policy] = {
                "met": sum(1 for j in rms.jobs if j.deadline_met),
                "late": sum(1 for j in rms.completed if not j.deadline_met),
            }
        return stats

    def test_librarisk_advantage_grows_under_upward_corruption(self, rng):
        """Failure injection, over-estimate direction: 20% of jobs get
        estimates inflated 2-100x.  This widens exactly the gap the
        paper measures — LibraRisk gambles through the garbage."""
        stats = self._run_corrupted(rng, low_factor=2.0, high_factor=100.0)
        assert stats["librarisk"]["met"] > stats["libra"]["met"] + 20

    def test_downward_corruption_makes_librarisk_conservative(self, rng):
        """Failure injection, under-estimate direction (outside the
        paper's sweep): wild UNDER-estimates flood nodes with overrun
        zombies, so LibraRisk turns conservative — it completes fewer
        jobs *late* than Libra even if it fulfils no more.  This
        documents the trade-off rather than assuming LibraRisk always
        wins."""
        stats = self._run_corrupted(rng, low_factor=0.01, high_factor=100.0)
        assert stats["librarisk"]["late"] < stats["libra"]["late"]
