"""Tests for per-user consistent estimate behaviour."""

import numpy as np
import pytest

from repro.workload.users import UserConsistentEstimateModel


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestProfiles:
    def test_profile_deterministic_per_user_and_seed(self):
        model = UserConsistentEstimateModel()
        a = model.profile_for(17, seed=3)
        b = model.profile_for(17, seed=3)
        assert a == b

    def test_different_seed_can_change_profile(self):
        model = UserConsistentEstimateModel()
        profiles = {model.profile_for(17, seed=s).kind for s in range(20)}
        assert len(profiles) > 1

    def test_behaviour_fractions_roughly_respected(self):
        model = UserConsistentEstimateModel(
            p_accurate=0.3, p_padder=0.4, p_max_requester=0.2
        )
        counts = model.behaviour_counts(range(3000), seed=1)
        total = sum(counts.values())
        assert counts["accurate"] / total == pytest.approx(0.3, abs=0.05)
        assert counts["padder"] / total == pytest.approx(0.4, abs=0.05)
        assert counts["overrunner"] / total == pytest.approx(0.1, abs=0.05)

    def test_p_overrunner_property(self):
        model = UserConsistentEstimateModel(p_accurate=0.2, p_padder=0.5,
                                            p_max_requester=0.2)
        assert model.p_overrunner == pytest.approx(0.1)

    @pytest.mark.parametrize("kwargs", [
        {"p_accurate": 0.6, "p_padder": 0.6},
        {"max_overrun_factor": 1.0},
        {"jitter": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            UserConsistentEstimateModel(**kwargs)


class TestDraw:
    def test_padder_jobs_share_their_factor(self, rng):
        model = UserConsistentEstimateModel(
            p_accurate=0.0, p_padder=1.0, p_max_requester=0.0, jitter=0.0
        )
        runtimes = np.array([100.0, 200.0, 50.0])
        est = model.draw(runtimes, [7, 7, 7], rng, seed=1)
        factors = est / runtimes
        # Same user, zero jitter -> identical personal factor.
        assert factors[0] == pytest.approx(factors[1])
        assert factors[0] == pytest.approx(factors[2])
        assert factors[0] > 1.0

    def test_different_padders_different_factors(self, rng):
        model = UserConsistentEstimateModel(
            p_accurate=0.0, p_padder=1.0, p_max_requester=0.0, jitter=0.0
        )
        runtimes = np.full(40, 100.0)
        est = model.draw(runtimes, list(range(40)), rng, seed=1)
        assert len(set(np.round(est, 6))) > 10

    def test_accurate_users_near_truth(self, rng):
        model = UserConsistentEstimateModel(
            p_accurate=1.0, p_padder=0.0, p_max_requester=0.0, jitter=0.1
        )
        runtimes = np.full(100, 1000.0)
        est = model.draw(runtimes, list(range(100)), rng, seed=1)
        assert np.all(np.abs(est / runtimes - 1.0) <= 0.06)

    def test_max_requesters_never_below_runtime(self, rng):
        model = UserConsistentEstimateModel(
            p_accurate=0.0, p_padder=0.0, p_max_requester=1.0
        )
        runtimes = np.array([10.0, 1e6])
        est = model.draw(runtimes, [1, 1], rng, seed=1)
        assert np.all(est >= runtimes)

    def test_overrunners_underestimate_boundedly(self, rng):
        model = UserConsistentEstimateModel(
            p_accurate=0.0, p_padder=0.0, p_max_requester=0.0,
            max_overrun_factor=1.5,
        )
        runtimes = np.full(200, 300.0)
        est = model.draw(runtimes, list(range(200)), rng, seed=1)
        ratio = runtimes / est
        assert np.all(ratio >= 1.0)
        assert np.all(ratio <= 1.5 + 1e-9)

    def test_alignment_checked(self, rng):
        model = UserConsistentEstimateModel()
        with pytest.raises(ValueError):
            model.draw(np.array([1.0]), [1, 2], rng)

    def test_estimates_floored_at_one_second(self, rng):
        model = UserConsistentEstimateModel(
            p_accurate=0.0, p_padder=0.0, p_max_requester=0.0,
        )
        est = model.draw(np.array([1.0]), [4], rng)
        assert est[0] >= 1.0
