"""Tests for the runtime-estimate models."""

import numpy as np
import pytest

from repro.workload.estimates import (
    CANONICAL_ESTIMATES,
    ModalOverestimateModel,
    accurate_estimates,
    interpolate_inaccuracy,
    overestimation_summary,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


@pytest.fixture
def runtimes(rng):
    return rng.lognormal(8.0, 1.5, size=5000)


class TestModalModel:
    def test_behaviour_fractions_respected(self, runtimes, rng):
        model = ModalOverestimateModel(p_exact=0.2, p_overrun=0.1)
        est = model.draw(runtimes, rng)
        factor = est / runtimes
        frac_exact = np.mean(np.abs(factor - 1.0) < 1e-12)
        frac_under = np.mean(factor < 1.0 - 1e-12)
        assert frac_exact == pytest.approx(0.2, abs=0.03)
        assert frac_under == pytest.approx(0.1, abs=0.03)

    def test_overestimates_land_on_canonical_values(self, runtimes, rng):
        model = ModalOverestimateModel(p_exact=0.0, p_overrun=0.0)
        est = model.draw(runtimes, rng)
        grid = set(CANONICAL_ESTIMATES)
        on_grid = np.mean([e in grid for e in est])
        # Values beyond the largest canonical keep their padded value,
        # so not 100 %, but the overwhelming majority snaps to the grid.
        assert on_grid > 0.8

    def test_overestimates_never_below_runtime(self, runtimes, rng):
        model = ModalOverestimateModel(p_exact=0.0, p_overrun=0.0)
        est = model.draw(runtimes, rng)
        assert np.all(est >= runtimes - 1e-9)

    def test_overrun_factor_bounded(self, runtimes, rng):
        model = ModalOverestimateModel(p_exact=0.0, p_overrun=1.0, max_overrun_factor=1.5)
        est = model.draw(runtimes, rng)
        factor = runtimes / est
        assert np.all(factor > 1.0)
        assert np.all(factor <= 1.5 + 1e-9)

    def test_estimates_positive(self, rng):
        model = ModalOverestimateModel()
        est = model.draw(np.array([0.5, 1.0, 2.0]), rng)
        assert np.all(est >= 1.0)

    def test_no_canonical_rounding_mode(self, runtimes, rng):
        model = ModalOverestimateModel(p_exact=0.0, p_overrun=0.0, use_canonical=False)
        est = model.draw(runtimes, rng)
        assert np.all(est > runtimes)

    @pytest.mark.parametrize("kwargs", [
        {"p_exact": -0.1},
        {"p_overrun": 1.5},
        {"p_exact": 0.7, "p_overrun": 0.5},
        {"max_overrun_factor": 1.0},
        {"use_canonical": True, "canonical": ()},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ModalOverestimateModel(**kwargs)


class TestAccurate:
    def test_identity(self):
        r = np.array([1.0, 2.0, 3.0])
        est = accurate_estimates(r)
        assert np.array_equal(est, r)

    def test_returns_copy(self):
        r = np.array([1.0, 2.0])
        est = accurate_estimates(r)
        est[0] = 99.0
        assert r[0] == 1.0


class TestInterpolation:
    def test_zero_pct_is_accurate(self):
        r = np.array([10.0, 20.0])
        t = np.array([100.0, 5.0])
        assert np.array_equal(interpolate_inaccuracy(r, t, 0.0), r)

    def test_hundred_pct_is_trace(self):
        r = np.array([10.0, 20.0])
        t = np.array([100.0, 5.0])
        assert np.array_equal(interpolate_inaccuracy(r, t, 100.0), t)

    def test_midpoint(self):
        r = np.array([10.0])
        t = np.array([110.0])
        assert interpolate_inaccuracy(r, t, 50.0)[0] == pytest.approx(60.0)

    def test_monotone_in_pct_for_overestimates(self):
        r = np.array([10.0])
        t = np.array([100.0])
        values = [interpolate_inaccuracy(r, t, p)[0] for p in (0, 25, 50, 75, 100)]
        assert values == sorted(values)

    def test_underestimates_interpolate_downwards(self):
        r = np.array([100.0])
        t = np.array([60.0])
        values = [interpolate_inaccuracy(r, t, p)[0] for p in (0, 50, 100)]
        assert values == sorted(values, reverse=True)

    def test_result_floored_at_one_second(self):
        r = np.array([0.5])
        t = np.array([0.1])
        assert interpolate_inaccuracy(r, t, 100.0)[0] == 1.0

    def test_out_of_range_pct(self):
        r = t = np.array([1.0])
        with pytest.raises(ValueError):
            interpolate_inaccuracy(r, t, -1.0)
        with pytest.raises(ValueError):
            interpolate_inaccuracy(r, t, 101.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            interpolate_inaccuracy(np.array([1.0]), np.array([1.0, 2.0]), 50.0)


class TestSummary:
    def test_summary_fields(self):
        r = np.array([10.0, 10.0, 10.0, 10.0])
        e = np.array([20.0, 10.0, 5.0, 40.0])
        s = overestimation_summary(r, e)
        assert s["frac_overestimated"] == pytest.approx(0.5)
        assert s["frac_exact"] == pytest.approx(0.25)
        assert s["frac_underestimated"] == pytest.approx(0.25)
        assert s["mean_factor"] == pytest.approx((2.0 + 1.0 + 0.5 + 4.0) / 4)
