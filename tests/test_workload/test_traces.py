"""Tests for trace subsetting, arrival scaling and the job pipeline."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.workload.swf import SWFRecord
from repro.workload.traces import (
    WorkloadSpec,
    build_jobs,
    describe_records,
    records_to_jobs,
    scale_arrivals,
    tail_subset,
    usable_records,
)


def rec(n, submit, run=100.0, procs=2, req_time=150.0):
    return SWFRecord(
        job_number=n, submit_time=submit, run_time=run,
        allocated_procs=procs, requested_procs=procs, requested_time=req_time,
    )


class TestTailSubset:
    def test_takes_last_n_by_submit_time(self):
        records = [rec(i, submit=float(i * 10)) for i in range(1, 11)]
        subset = tail_subset(records, 3)
        assert [r.job_number for r in subset] == [8, 9, 10]

    def test_rebased_to_zero(self):
        records = [rec(i, submit=float(1000 + i)) for i in range(5)]
        subset = tail_subset(records, 3)
        assert subset[0].submit_time == 0.0
        assert subset[1].submit_time == 1.0

    def test_unusable_records_dropped_first(self):
        records = [rec(1, 0.0), rec(2, 10.0, run=-1), rec(3, 20.0)]
        subset = tail_subset(records, 10)
        assert [r.job_number for r in subset] == [1, 3]

    def test_n_larger_than_trace(self):
        records = [rec(1, 0.0)]
        assert len(tail_subset(records, 100)) == 1

    def test_empty(self):
        assert tail_subset([], 5) == []

    def test_bad_n(self):
        with pytest.raises(ValueError):
            tail_subset([], 0)


class TestScaleArrivals:
    def test_identity_factor(self):
        records = [rec(1, 0.0), rec(2, 100.0)]
        assert scale_arrivals(records, 1.0) == records

    def test_compression(self):
        records = [rec(1, 0.0), rec(2, 100.0), rec(3, 300.0)]
        scaled = scale_arrivals(records, 0.1)
        assert [r.submit_time for r in scaled] == [0.0, 10.0, 30.0]

    def test_paper_example(self):
        # "a job with X seconds of inter arrival time from the trace now
        # has a simulated inter arrival time of 0.1 X seconds"
        records = [rec(1, 50.0), rec(2, 50.0 + 640.0)]
        scaled = scale_arrivals(records, 0.1)
        assert scaled[1].submit_time - scaled[0].submit_time == pytest.approx(64.0)

    def test_expansion(self):
        records = [rec(1, 0.0), rec(2, 10.0)]
        scaled = scale_arrivals(records, 2.0)
        assert scaled[1].submit_time == pytest.approx(20.0)

    def test_first_submit_preserved(self):
        records = [rec(1, 77.0), rec(2, 100.0)]
        scaled = scale_arrivals(records, 0.5)
        assert scaled[0].submit_time == 77.0

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            scale_arrivals([], 0.0)


class TestBuildJobs:
    def _records(self):
        return [rec(i, submit=float(i * 10), run=100.0, req_time=400.0) for i in range(1, 6)]

    def test_trace_mode_uses_requested_time(self):
        jobs = build_jobs(self._records(), WorkloadSpec(estimate_mode="trace"),
                          RngStreams(seed=1))
        assert all(j.estimated_runtime == 400.0 for j in jobs)

    def test_accurate_mode_uses_runtime(self):
        jobs = build_jobs(self._records(), WorkloadSpec(estimate_mode="accurate"),
                          RngStreams(seed=1))
        assert all(j.estimated_runtime == 100.0 for j in jobs)

    def test_inaccuracy_mode_interpolates(self):
        spec = WorkloadSpec(estimate_mode="inaccuracy", inaccuracy_pct=50.0)
        jobs = build_jobs(self._records(), spec, RngStreams(seed=1))
        assert all(j.estimated_runtime == pytest.approx(250.0) for j in jobs)

    def test_deadlines_independent_of_estimate_mode(self):
        # Panels (a) and (b) of every figure must see identical deadlines.
        a = build_jobs(self._records(), WorkloadSpec(estimate_mode="accurate"),
                       RngStreams(seed=9))
        b = build_jobs(self._records(), WorkloadSpec(estimate_mode="trace"),
                       RngStreams(seed=9))
        assert [j.deadline for j in a] == [j.deadline for j in b]
        assert [j.urgency for j in a] == [j.urgency for j in b]

    def test_deadline_exceeds_runtime(self):
        jobs = build_jobs(self._records(), WorkloadSpec(), RngStreams(seed=2))
        assert all(j.deadline > j.runtime for j in jobs)

    def test_missing_requested_time_falls_back_to_runtime(self):
        records = [rec(1, 0.0, req_time=-1)]
        jobs = build_jobs(records, WorkloadSpec(estimate_mode="trace"), RngStreams(seed=1))
        assert jobs[0].estimated_runtime == 100.0

    def test_arrival_factor_applied(self):
        spec = WorkloadSpec(arrival_delay_factor=0.5)
        jobs = build_jobs(self._records(), spec, RngStreams(seed=1))
        assert jobs[1].submit_time - jobs[0].submit_time == pytest.approx(5.0)

    def test_job_ids_follow_record_numbers(self):
        jobs = build_jobs(self._records(), WorkloadSpec(), RngStreams(seed=1))
        assert [j.job_id for j in jobs] == [1, 2, 3, 4, 5]

    def test_records_to_jobs_alignment_check(self):
        with pytest.raises(ValueError, match="align"):
            records_to_jobs([rec(1, 0.0)], np.array([1.0, 2.0]), np.array([1.0]), ["x"])


class TestWorkloadSpec:
    @pytest.mark.parametrize("kwargs", [
        {"arrival_delay_factor": 0.0},
        {"estimate_mode": "psychic"},
        {"inaccuracy_pct": 150.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestDescribe:
    def test_empty(self):
        assert describe_records([]) == {"num_jobs": 0}

    def test_fields_present(self):
        stats = describe_records([rec(1, 0.0), rec(2, 3600.0)])
        assert stats["num_jobs"] == 2
        assert stats["mean_interarrival_s"] == pytest.approx(3600.0)
        assert stats["mean_procs"] == 2.0
        assert "estimate_mean_factor" in stats

    def test_usable_records_helper(self):
        records = [rec(1, 0.0), rec(2, 1.0, run=-1)]
        assert len(usable_records(records)) == 1
