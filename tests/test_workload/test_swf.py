"""Tests for the SWF parser/writer."""

import pytest

from repro.workload.swf import (
    MISSING,
    STATUS_COMPLETED,
    SWFHeader,
    SWFParseError,
    SWFRecord,
    iter_swf_records,
    parse_swf,
    read_swf_file,
    write_swf_file,
)

SAMPLE = """\
; Version: 2.2
; Computer: IBM SP2
; Installation: SDSC
; MaxJobs: 73496
; MaxNodes: 128
; UnixStartTime: 893534157
; TimeZone: US/Pacific
; Note: cleaned trace
; custom free-form comment
1 0 10 100 8 -1 -1 8 120 -1 1 3 1 -1 1 -1 -1 -1
2 60 0 50 -1 -1 -1 16 3600 -1 1 4 1 -1 1 -1 -1 -1
3 120 5 -1 4 -1 -1 4 600 -1 0 5 1 -1 1 -1 -1 -1
"""


class TestParsing:
    def test_parses_records(self):
        header, records = parse_swf(SAMPLE)
        assert len(records) == 3
        r = records[0]
        assert r.job_number == 1
        assert r.submit_time == 0.0
        assert r.wait_time == 10.0
        assert r.run_time == 100.0
        assert r.allocated_procs == 8
        assert r.requested_time == 120.0
        assert r.status == STATUS_COMPLETED

    def test_header_directives(self):
        header, _ = parse_swf(SAMPLE)
        assert header.version == "2.2"
        assert header.computer == "IBM SP2"
        assert header.installation == "SDSC"
        assert header.max_jobs == 73496
        assert header.max_nodes == 128
        assert header.unix_start_time == 893534157
        assert header.timezone == "US/Pacific"
        assert header.note == "cleaned trace"
        assert "custom free-form comment" in header.extra

    def test_blank_lines_skipped(self):
        _, records = parse_swf("\n\n1 0 0 10 1 -1 -1 1 20 -1 1 1 1 -1 1 -1 -1 -1\n\n")
        assert len(records) == 1

    def test_wrong_field_count_raises(self):
        with pytest.raises(SWFParseError, match="expected 18 fields"):
            parse_swf("1 2 3\n")

    def test_bad_value_raises_with_field_name(self):
        line = "1 0 0 abc 1 -1 -1 1 20 -1 1 1 1 -1 1 -1 -1 -1\n"
        with pytest.raises(SWFParseError, match="run_time"):
            parse_swf(line)

    def test_float_submit_times_allowed(self):
        _, records = parse_swf("1 12.5 0 10 1 -1 -1 1 20 -1 1 1 1 -1 1 -1 -1 -1\n")
        assert records[0].submit_time == 12.5


class TestRecordViews:
    def test_procs_prefers_allocated(self):
        _, records = parse_swf(SAMPLE)
        assert records[0].procs == 8
        assert records[1].procs == 16  # allocated missing -> requested

    def test_estimate_is_requested_time(self):
        _, records = parse_swf(SAMPLE)
        assert records[0].estimate == 120.0

    def test_usable(self):
        _, records = parse_swf(SAMPLE)
        assert records[0].usable
        assert records[1].usable
        assert not records[2].usable  # run_time missing

    def test_unusable_without_procs(self):
        r = SWFRecord(job_number=1, submit_time=0.0, run_time=10.0)
        assert not r.usable


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        header, records = parse_swf(SAMPLE)
        path = tmp_path / "out.swf"
        count = write_swf_file(path, records, header=header)
        assert count == 3
        header2, records2 = read_swf_file(path)
        assert records2 == records
        assert header2.max_nodes == header.max_nodes
        assert header2.version == header.version

    def test_to_line_renders_ints_compactly(self):
        r = SWFRecord(job_number=1, submit_time=5.0, run_time=10.0)
        line = r.to_line()
        assert line.split()[:4] == ["1", "5", "-1", "10"]

    def test_iter_swf_records_streams(self, tmp_path):
        path = tmp_path / "t.swf"
        _, records = parse_swf(SAMPLE)
        write_swf_file(path, records)
        streamed = list(iter_swf_records(path))
        assert streamed == records


class TestHeaderRendering:
    def test_to_lines_round_trips_directives(self):
        header = SWFHeader(version="2.2", max_nodes=128, note="x")
        rebuilt = SWFHeader()
        for line in header.to_lines():
            rebuilt.absorb(line)
        assert rebuilt.version == "2.2"
        assert rebuilt.max_nodes == 128
        assert rebuilt.note == "x"

    def test_unknown_directive_kept_in_extra(self):
        header = SWFHeader()
        header.absorb("; Frobnication Level: 9")
        assert header.extra == ["Frobnication Level: 9"]

    def test_malformed_int_directive_falls_back_to_extra(self):
        header = SWFHeader()
        header.absorb("; MaxNodes: lots")
        assert header.max_nodes is None
        assert "MaxNodes: lots" in header.extra
