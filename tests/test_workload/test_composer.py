"""Tests for the workload composer."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.workload.composer import ProcessorModel, WorkloadComposition, compose_records
from repro.workload.models import HyperExponentialRuntimes, PoissonArrivals
from repro.workload.traces import WorkloadSpec, build_jobs, describe_records


class TestProcessorModel:
    def test_draw_respects_choices(self):
        model = ProcessorModel(choices=(2, 4), weights=(0.5, 0.5), max_procs=8)
        procs = model.draw(1000, np.random.default_rng(1))
        assert set(procs) <= {2, 4}

    def test_capped_filters_table(self):
        model = ProcessorModel.capped(16)
        assert max(model.choices) <= 16
        assert model.max_procs == 16

    def test_capped_tiny_machine(self):
        model = ProcessorModel.capped(1)
        assert model.choices == (1,)

    @pytest.mark.parametrize("kwargs", [
        {"choices": (1, 2), "weights": (1.0,)},
        {"choices": (), "weights": ()},
        {"choices": (256,), "weights": (1.0,)},
        {"choices": (1,), "weights": (-1.0,)},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProcessorModel(**kwargs)


class TestComposeRecords:
    def test_deterministic(self):
        comp = WorkloadComposition(num_jobs=100)
        a = compose_records(comp, RngStreams(seed=4))
        b = compose_records(comp, RngStreams(seed=4))
        assert a == b

    def test_custom_pieces_flow_through(self):
        comp = WorkloadComposition(
            num_jobs=500,
            arrivals=PoissonArrivals(100.0),
            runtimes=HyperExponentialRuntimes(short_mean=50.0, long_mean=5000.0,
                                              short_fraction=0.9),
            processors=ProcessorModel(choices=(1,), weights=(1.0,), max_procs=4),
        )
        records = compose_records(comp, RngStreams(seed=4))
        stats = describe_records(records)
        assert stats["max_procs"] == 1.0
        assert stats["mean_interarrival_s"] == pytest.approx(100.0, rel=0.3)

    def test_records_feed_the_job_pipeline(self):
        comp = WorkloadComposition(num_jobs=50)
        records = compose_records(comp, RngStreams(seed=4))
        jobs = build_jobs(records, WorkloadSpec(estimate_mode="trace"), RngStreams(seed=4))
        assert len(jobs) == 50
        assert all(j.deadline > 0 for j in jobs)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadComposition(num_jobs=0)
