"""Tests for the Parallel Workloads Archive registry."""

import pytest

from repro.workload.archive import (
    KNOWN_TRACES,
    TraceMismatch,
    load,
    locate,
    traces_with_estimates,
)
from repro.workload.swf import SWFHeader, SWFRecord, write_swf_file


def write_fake_trace(path, max_nodes=128):
    header = SWFHeader(version="2.2", computer="IBM SP2", max_nodes=max_nodes)
    records = [
        SWFRecord(job_number=i + 1, submit_time=float(i * 60), run_time=100.0,
                  allocated_procs=2, requested_procs=2, requested_time=200.0)
        for i in range(5)
    ]
    write_swf_file(path, records, header=header)
    return path


class TestRegistry:
    def test_paper_trace_present_with_rating(self):
        info = KNOWN_TRACES["sdsc-sp2"]
        assert info.max_nodes == 128
        assert info.node_rating == 168.0
        assert info.has_user_estimates

    def test_traces_with_estimates_excludes_estimate_free(self):
        keys = {t.key for t in traces_with_estimates()}
        assert "sdsc-sp2" in keys
        assert "sdsc-par95" not in keys


class TestLocate:
    def test_found(self, tmp_path):
        write_fake_trace(tmp_path / KNOWN_TRACES["sdsc-sp2"].filename)
        assert locate("sdsc-sp2", tmp_path) is not None

    def test_absent(self, tmp_path):
        assert locate("sdsc-sp2", tmp_path) is None

    def test_unknown_key(self, tmp_path):
        with pytest.raises(KeyError, match="known:"):
            locate("bogus", tmp_path)


class TestLoad:
    def test_load_matching_header(self, tmp_path):
        path = write_fake_trace(tmp_path / "t.swf", max_nodes=128)
        header, records = load("sdsc-sp2", path)
        assert header.max_nodes == 128
        assert len(records) == 5

    def test_mismatch_raises_in_strict_mode(self, tmp_path):
        path = write_fake_trace(tmp_path / "t.swf", max_nodes=999)
        with pytest.raises(TraceMismatch):
            load("sdsc-sp2", path)

    def test_mismatch_tolerated_when_lenient(self, tmp_path):
        path = write_fake_trace(tmp_path / "t.swf", max_nodes=999)
        header, _ = load("sdsc-sp2", path, strict=False)
        assert header.max_nodes == 999

    def test_unknown_key(self, tmp_path):
        with pytest.raises(KeyError):
            load("bogus", tmp_path / "t.swf")
