"""Tests for the urgency-class deadline model."""

import numpy as np
import pytest

from repro.cluster.job import UrgencyClass
from repro.workload.deadlines import DeadlineModel


@pytest.fixture
def runtimes():
    return np.full(20000, 100.0)


class TestAssignment:
    def test_deadlines_always_exceed_runtimes(self, runtimes):
        model = DeadlineModel()
        rng = np.random.default_rng(1)
        deadlines, _ = model.assign(runtimes, rng)
        assert np.all(deadlines >= runtimes * model.min_factor - 1e-9)

    def test_high_urgency_fraction(self, runtimes):
        model = DeadlineModel(high_urgency_fraction=0.3)
        _, classes = model.assign(runtimes, np.random.default_rng(1))
        frac = sum(1 for c in classes if c is UrgencyClass.HIGH) / len(classes)
        assert frac == pytest.approx(0.3, abs=0.02)

    def test_class_means_follow_ratio(self, runtimes):
        model = DeadlineModel(high_urgency_fraction=0.5, low_factor_mean=2.0, ratio=4.0)
        deadlines, classes = model.assign(runtimes, np.random.default_rng(2))
        factors = deadlines / runtimes
        high = np.array([f for f, c in zip(factors, classes) if c is UrgencyClass.HIGH])
        low = np.array([f for f, c in zip(factors, classes) if c is UrgencyClass.LOW])
        assert high.mean() == pytest.approx(2.0, rel=0.05)
        assert low.mean() == pytest.approx(8.0, rel=0.05)

    def test_ratio_one_makes_classes_identical(self, runtimes):
        model = DeadlineModel(high_urgency_fraction=0.5, ratio=1.0)
        deadlines, classes = model.assign(runtimes, np.random.default_rng(3))
        factors = deadlines / runtimes
        high = np.array([f for f, c in zip(factors, classes) if c is UrgencyClass.HIGH])
        low = np.array([f for f, c in zip(factors, classes) if c is UrgencyClass.LOW])
        assert high.mean() == pytest.approx(low.mean(), rel=0.05)

    def test_zero_fraction_all_low_urgency(self, runtimes):
        model = DeadlineModel(high_urgency_fraction=0.0)
        _, classes = model.assign(runtimes, np.random.default_rng(4))
        assert all(c is UrgencyClass.LOW for c in classes)

    def test_full_fraction_all_high_urgency(self, runtimes):
        model = DeadlineModel(high_urgency_fraction=1.0)
        _, classes = model.assign(runtimes, np.random.default_rng(5))
        assert all(c is UrgencyClass.HIGH for c in classes)

    def test_deterministic_given_rng_seed(self, runtimes):
        model = DeadlineModel()
        a, ca = model.assign(runtimes, np.random.default_rng(6))
        b, cb = model.assign(runtimes, np.random.default_rng(6))
        assert np.array_equal(a, b)
        assert ca == cb

    def test_cv_controls_spread(self, runtimes):
        tight = DeadlineModel(cv=0.01, high_urgency_fraction=0.0)
        wide = DeadlineModel(cv=0.5, high_urgency_fraction=0.0)
        rng = np.random.default_rng(7)
        d_tight, _ = tight.assign(runtimes, rng)
        d_wide, _ = wide.assign(runtimes, np.random.default_rng(7))
        assert d_tight.std() < d_wide.std()

    def test_deadlines_scale_with_runtime(self):
        model = DeadlineModel(cv=0.0)
        runtimes = np.array([10.0, 1000.0])
        deadlines, _ = model.assign(runtimes, np.random.default_rng(8))
        assert deadlines[1] / deadlines[0] == pytest.approx(100.0, rel=0.01)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"high_urgency_fraction": -0.1},
        {"high_urgency_fraction": 1.1},
        {"low_factor_mean": 1.0},
        {"ratio": 0.5},
        {"cv": -0.1},
        {"min_factor": 0.9},
    ])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            DeadlineModel(**kwargs)

    def test_high_factor_mean_property(self):
        model = DeadlineModel(low_factor_mean=2.0, ratio=4.0)
        assert model.high_factor_mean == 8.0
