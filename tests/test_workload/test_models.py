"""Tests for the pluggable workload models."""

import numpy as np
import pytest

from repro.workload.models import (
    SECONDS_PER_DAY,
    BoundedParetoRuntimes,
    DailyCycleArrivals,
    GammaArrivals,
    HyperExponentialRuntimes,
    LognormalRuntimes,
    PoissonArrivals,
    WeibullArrivals,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


N = 20_000


class TestArrivalProcesses:
    @pytest.mark.parametrize("process", [
        PoissonArrivals(1000.0),
        GammaArrivals(1000.0, shape=0.45),
        WeibullArrivals(1000.0, shape=0.7),
    ])
    def test_times_sorted_and_start_at_zero(self, process, rng):
        times = process.submit_times(500, rng)
        assert times[0] == 0.0
        assert np.all(np.diff(times) >= 0)

    @pytest.mark.parametrize("process", [
        PoissonArrivals(1000.0),
        GammaArrivals(1000.0),
        WeibullArrivals(1000.0),
    ])
    def test_mean_interarrival_matches_target(self, process, rng):
        times = process.submit_times(N, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1000.0, rel=0.1)

    def test_poisson_cv_near_one(self, rng):
        gaps = np.diff(PoissonArrivals(1000.0).submit_times(N, rng))
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_gamma_burstier_than_poisson(self, rng):
        gaps = np.diff(GammaArrivals(1000.0, shape=0.3).submit_times(N, rng))
        assert gaps.std() / gaps.mean() > 1.3

    @pytest.mark.parametrize("cls,kwargs", [
        (PoissonArrivals, {"mean_interarrival": 0.0}),
        (GammaArrivals, {"mean_interarrival": 100.0, "shape": 0.0}),
        (WeibullArrivals, {"mean_interarrival": -1.0}),
    ])
    def test_validation(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls(**kwargs)


class TestDailyCycle:
    def test_zero_depth_is_identity(self, rng):
        base = PoissonArrivals(600.0)
        wrapped = DailyCycleArrivals(base, depth=0.0)
        a = base.submit_times(200, np.random.default_rng(5))
        b = wrapped.submit_times(200, np.random.default_rng(5))
        assert np.allclose(a, b)

    def test_cycle_modulates_hourly_rate(self, rng):
        wrapped = DailyCycleArrivals(PoissonArrivals(120.0), depth=0.8)
        times = wrapped.submit_times(N, rng)
        # Bucket arrivals by hour-of-day; peak hours must see far more
        # traffic than trough hours.
        hours = ((times % SECONDS_PER_DAY) // 3600).astype(int)
        counts = np.bincount(hours, minlength=24)
        assert counts.max() > 1.8 * max(counts.min(), 1)

    def test_times_still_sorted(self, rng):
        wrapped = DailyCycleArrivals(GammaArrivals(500.0), depth=0.5, phase=0.3)
        times = wrapped.submit_times(2000, rng)
        assert np.all(np.diff(times) >= 0)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            DailyCycleArrivals(PoissonArrivals(1.0), depth=1.0)


class TestRuntimeDistributions:
    def test_lognormal_mean_and_bounds(self, rng):
        dist = LognormalRuntimes(mean=5000.0, sigma=1.5, minimum=10.0, maximum=100_000.0)
        r = dist.runtimes(N, rng)
        assert np.all((r >= 10.0) & (r <= 100_000.0))
        # Clamping biases the mean down a little; stay in the ballpark.
        assert r.mean() == pytest.approx(5000.0, rel=0.25)

    def test_hyperexponential_mixture(self, rng):
        dist = HyperExponentialRuntimes(short_mean=100.0, long_mean=50_000.0,
                                        short_fraction=0.8)
        r = dist.runtimes(N, rng)
        assert r.mean() == pytest.approx(dist.mean, rel=0.1)
        # Distinctly bimodal: lots of short jobs AND a real tail.
        assert np.mean(r < 500.0) > 0.5
        assert np.mean(r > 20_000.0) > 0.05

    def test_bounded_pareto_bounds(self, rng):
        dist = BoundedParetoRuntimes(alpha=1.1, low=60.0, high=10_000.0)
        r = dist.runtimes(N, rng)
        assert np.all((r >= 60.0 - 1e-6) & (r <= 10_000.0 + 1e-6))

    def test_bounded_pareto_heavy_tail(self, rng):
        r = BoundedParetoRuntimes(alpha=0.9, low=60.0, high=200_000.0).runtimes(N, rng)
        assert np.median(r) < r.mean() / 3.0

    @pytest.mark.parametrize("cls,kwargs", [
        (LognormalRuntimes, {"mean": -1.0}),
        (LognormalRuntimes, {"minimum": 10.0, "maximum": 1.0}),
        (HyperExponentialRuntimes, {"short_fraction": 1.5}),
        (BoundedParetoRuntimes, {"low": 10.0, "high": 5.0}),
        (BoundedParetoRuntimes, {"alpha": 0.0}),
    ])
    def test_validation(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls(**kwargs)
