"""Tests for the synthetic SDSC-SP2-like workload generator."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.workload.synthetic import SDSCSP2Model, generate_sdsc_like_records
from repro.workload.traces import describe_records


@pytest.fixture(scope="module")
def records():
    return generate_sdsc_like_records(SDSCSP2Model(), RngStreams(seed=42))


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_sdsc_like_records(SDSCSP2Model(num_jobs=100), RngStreams(seed=7))
        b = generate_sdsc_like_records(SDSCSP2Model(num_jobs=100), RngStreams(seed=7))
        assert a == b

    def test_different_seed_different_trace(self):
        a = generate_sdsc_like_records(SDSCSP2Model(num_jobs=100), RngStreams(seed=7))
        b = generate_sdsc_like_records(SDSCSP2Model(num_jobs=100), RngStreams(seed=8))
        assert a != b


class TestCalibration:
    """The generator must land near the paper's §4 subset statistics."""

    def test_job_count(self, records):
        assert len(records) == 3000

    def test_first_arrival_at_zero(self, records):
        assert records[0].submit_time == 0.0

    def test_submit_times_nondecreasing(self, records):
        times = [r.submit_time for r in records]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_mean_interarrival_near_target(self, records):
        stats = describe_records(records)
        # Paper: 2131 s; allow sampling slack.
        assert stats["mean_interarrival_s"] == pytest.approx(2131.0, rel=0.20)

    def test_mean_runtime_near_target(self, records):
        stats = describe_records(records)
        # Paper: about 2.7 hours.
        assert 1.5 <= stats["mean_runtime_h"] <= 4.0

    def test_mean_procs_near_target(self, records):
        stats = describe_records(records)
        # Paper: about 17 processors on average.
        assert 10.0 <= stats["mean_procs"] <= 25.0

    def test_procs_within_machine(self, records):
        assert all(1 <= r.procs <= 128 for r in records)

    def test_runtimes_clamped(self, records):
        model = SDSCSP2Model()
        assert all(model.min_runtime <= r.run_time <= model.max_runtime for r in records)

    def test_interarrivals_bursty(self, records):
        times = np.array([r.submit_time for r in records])
        gaps = np.diff(times)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.0  # burstier than Poisson

    def test_estimates_mostly_overestimated(self, records):
        stats = describe_records(records)
        assert stats["estimate_frac_overestimated"] > 0.6
        assert stats["estimate_mean_factor"] > 2.0

    def test_some_overrunners_exist(self, records):
        stats = describe_records(records)
        assert 0.03 <= stats["estimate_frac_underestimated"] <= 0.25

    def test_all_records_usable(self, records):
        assert all(r.usable for r in records)

    def test_expected_mean_procs_helper(self):
        model = SDSCSP2Model()
        assert 10.0 <= model.expected_mean_procs <= 25.0


class TestValidation:
    def test_bad_num_jobs(self):
        with pytest.raises(ValueError):
            SDSCSP2Model(num_jobs=0)

    def test_bad_means(self):
        with pytest.raises(ValueError):
            SDSCSP2Model(mean_interarrival=0.0)
        with pytest.raises(ValueError):
            SDSCSP2Model(mean_runtime=-1.0)

    def test_mismatched_proc_table(self):
        with pytest.raises(ValueError):
            SDSCSP2Model(proc_choices=(1, 2), proc_weights=(1.0,))

    def test_proc_choice_beyond_machine(self):
        with pytest.raises(ValueError):
            SDSCSP2Model(max_procs=64, proc_choices=(1, 128), proc_weights=(0.5, 0.5))

    def test_bad_odd_fraction(self):
        with pytest.raises(ValueError):
            SDSCSP2Model(odd_proc_fraction=1.0)
