"""Tests for the economy substrate (pricing, budgets, revenue)."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.rms import ResourceManagementSystem
from repro.economy.budget import LibraBudgetPolicy
from repro.economy.metrics import economic_summary
from repro.economy.pricing import BudgetModel, LibraPricing
from repro.sim.kernel import Simulator
from tests.conftest import make_job


class TestPricing:
    def test_two_term_formula(self):
        pricing = LibraPricing(alpha=1.0, beta=100.0)
        # per node: 1*200 + 100*(200/400) = 250; two nodes -> 500.
        assert pricing.price(200.0, 400.0, 2) == pytest.approx(500.0)

    def test_tighter_deadline_costs_more(self):
        pricing = LibraPricing(alpha=1.0, beta=100.0)
        assert pricing.price(200.0, 200.0, 1) > pricing.price(200.0, 800.0, 1)

    def test_price_scales_with_numproc(self):
        pricing = LibraPricing()
        assert pricing.price(100.0, 200.0, 4) == pytest.approx(
            4 * pricing.price(100.0, 200.0, 1)
        )

    def test_price_job_uses_estimate(self):
        pricing = LibraPricing(alpha=1.0, beta=0.0)
        job = make_job(runtime=10.0, estimate=100.0, deadline=400.0)
        assert pricing.price_job(job) == pytest.approx(100.0)

    def test_invalid_request(self):
        with pytest.raises(ValueError):
            LibraPricing().price(0.0, 100.0, 1)

    @pytest.mark.parametrize("kwargs", [
        {"alpha": -1.0},
        {"alpha": 0.0, "beta": 0.0},
    ])
    def test_invalid_coefficients(self, kwargs):
        with pytest.raises(ValueError):
            LibraPricing(**kwargs)


class TestBudgetModel:
    def test_budgets_track_prices(self):
        jobs = [make_job(runtime=100.0, estimate=100.0, deadline=400.0, job_id=i + 1)
                for i in range(200)]
        model = BudgetModel(mean_factor=1.5, cv=0.0)
        budgets = model.assign(jobs, np.random.default_rng(1))
        price = model.pricing.price_job(jobs[0])
        assert budgets[1] == pytest.approx(1.5 * price)

    def test_truncation_at_min_factor(self):
        jobs = [make_job(job_id=i + 1) for i in range(500)]
        model = BudgetModel(mean_factor=0.5, cv=2.0, min_factor=0.2)
        budgets = model.assign(jobs, np.random.default_rng(2))
        floor = 0.2 * model.pricing.price_job(jobs[0])
        assert min(budgets.values()) >= floor - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetModel(mean_factor=0.0)


class TestBudgetPolicy:
    def run(self, jobs, budgets=None, num_nodes=2):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, num_nodes, rating=1.0, discipline="time_shared")
        policy = LibraBudgetPolicy(pricing=LibraPricing(alpha=1.0, beta=0.0))
        if budgets:
            policy.set_budgets(budgets)
        rms = ResourceManagementSystem(sim, cluster, policy)
        rms.submit_all(jobs)
        sim.run()
        return rms, policy

    def test_over_budget_job_rejected(self):
        job = make_job(runtime=100.0, estimate=100.0, deadline=400.0, job_id=1)
        rms, _ = self.run([job], budgets={1: 50.0})  # price 100 > budget 50
        assert len(rms.rejected) == 1
        assert "budget" in rms.rejected[0].reject_reason

    def test_affordable_job_passes_to_libra_check(self):
        job = make_job(runtime=100.0, estimate=100.0, deadline=400.0, job_id=1)
        rms, policy = self.run([job], budgets={1: 150.0})
        assert len(rms.completed) == 1
        assert policy.quoted[1] == pytest.approx(100.0)

    def test_no_budget_table_degrades_to_libra(self):
        job = make_job(runtime=100.0, estimate=100.0, deadline=400.0, job_id=1)
        rms, policy = self.run([job])
        assert len(rms.completed) == 1

    def test_budget_pass_does_not_bypass_capacity(self):
        jobs = [
            make_job(runtime=90.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=90.0, deadline=100.0, submit=1.0, job_id=2),
        ]
        rms, _ = self.run(jobs, budgets={1: 1e9, 2: 1e9}, num_nodes=1)
        assert len(rms.rejected) == 1  # Eq. 2 still enforced


class TestEconomicSummary:
    def test_revenue_and_penalties(self):
        met = make_job(runtime=10.0, deadline=100.0, job_id=1)
        met.mark_submitted(); met.mark_running(0.0, [0]); met.mark_completed(10.0)
        late = make_job(runtime=10.0, deadline=100.0, job_id=2)
        late.mark_submitted(); late.mark_running(0.0, [0]); late.mark_completed(500.0)
        rejected = make_job(job_id=3)
        rejected.mark_submitted(); rejected.mark_rejected()

        summary = economic_summary(
            [met, late, rejected],
            quoted={1: 100.0, 2: 80.0},
            penalty_rate=0.5,
        )
        assert summary.revenue == pytest.approx(100.0)
        assert summary.penalties == pytest.approx(40.0)
        assert summary.profit == pytest.approx(60.0)
        assert summary.jobs_paid == 1
        assert summary.jobs_penalised == 1

    def test_unquoted_jobs_ignored(self):
        job = make_job(job_id=9)
        job.mark_submitted(); job.mark_running(0.0, [0]); job.mark_completed(1.0)
        summary = economic_summary([job], quoted={})
        assert summary.profit == 0.0

    def test_negative_penalty_rate_rejected(self):
        with pytest.raises(ValueError):
            economic_summary([], {}, penalty_rate=-0.1)

    def test_librarisk_earns_more_than_libra_under_trace_estimates(self):
        """Economic framing of the headline result: more fulfilled
        deadlines at similar penalty exposure means more profit."""
        from repro.cluster.cluster import Cluster as Cl
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import build_scenario_jobs
        from repro.scheduling.registry import make_policy

        base = ScenarioConfig(num_jobs=300, estimate_mode="trace")
        pricing = LibraPricing()
        profits = {}
        for name in ("libra", "librarisk"):
            jobs = build_scenario_jobs(base)
            sim = Simulator()
            cluster = Cl.homogeneous(sim, 128, discipline="time_shared")
            rms = ResourceManagementSystem(sim, cluster, make_policy(name))
            rms.submit_all(jobs)
            sim.run()
            quoted = {j.job_id: pricing.price_job(j) for j in rms.accepted}
            profits[name] = economic_summary(rms.jobs, quoted).profit
        assert profits["librarisk"] > profits["libra"]
