"""Tests for the Cluster aggregate."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import SpaceSharedNode, TimeSharedNode
from tests.conftest import make_job


class TestConstruction:
    def test_homogeneous_time_shared(self, sim):
        cluster = Cluster.homogeneous(sim, 4, rating=168.0, discipline="time_shared")
        assert len(cluster) == 4
        assert all(isinstance(n, TimeSharedNode) for n in cluster)
        assert cluster.reference_rating == 168.0

    def test_homogeneous_space_shared(self, sim):
        cluster = Cluster.homogeneous(sim, 3, discipline="space_shared")
        assert all(isinstance(n, SpaceSharedNode) for n in cluster)

    def test_unknown_discipline(self, sim):
        with pytest.raises(ValueError, match="unknown discipline"):
            Cluster.homogeneous(sim, 2, discipline="quantum")

    def test_zero_nodes_rejected(self, sim):
        with pytest.raises(ValueError):
            Cluster.homogeneous(sim, 0)

    def test_empty_node_list_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            Cluster([], reference_rating=1.0)

    def test_duplicate_node_ids_rejected(self, sim):
        nodes = [SpaceSharedNode(0, 1.0, sim), SpaceSharedNode(0, 1.0, sim)]
        with pytest.raises(ValueError, match="unique"):
            Cluster(nodes, reference_rating=1.0)

    def test_explicit_reference_rating(self, sim):
        cluster = Cluster.homogeneous(sim, 2, rating=100.0, reference_rating=50.0)
        assert cluster.reference_rating == 50.0

    def test_node_lookup(self, sim):
        cluster = Cluster.homogeneous(sim, 3)
        assert cluster.node(1).node_id == 1
        with pytest.raises(KeyError):
            cluster.node(99)


class TestWorkTranslation:
    def test_work_of_scales_by_reference_rating(self, sim):
        cluster = Cluster.homogeneous(sim, 1, rating=168.0)
        assert cluster.work_of(10.0) == pytest.approx(1680.0)

    def test_est_time_identity_on_homogeneous(self, sim):
        cluster = Cluster.homogeneous(sim, 1, rating=168.0)
        node = cluster.node(0)
        assert cluster.est_time_on(node, 10.0) == pytest.approx(10.0)

    def test_est_time_on_faster_node(self, sim):
        slow = TimeSharedNode(0, 100.0, sim)
        fast = TimeSharedNode(1, 200.0, sim)
        cluster = Cluster([slow, fast], reference_rating=100.0)
        # A 10 s (at reference) job takes 5 s at full speed on the fast node.
        assert cluster.est_time_on(fast, 10.0) == pytest.approx(5.0)
        assert cluster.est_time_on(slow, 10.0) == pytest.approx(10.0)


class TestAggregates:
    def test_total_rating(self, sim):
        cluster = Cluster.homogeneous(sim, 4, rating=100.0)
        assert cluster.total_rating == 400.0

    def test_idle_nodes(self, sim):
        cluster = Cluster.homogeneous(sim, 3, rating=1.0, discipline="space_shared")
        cluster.node(0).start_task(make_job(), work=10.0, now=0.0)
        assert {n.node_id for n in cluster.idle_nodes()} == {1, 2}

    def test_running_jobs_dedupes_multi_node_jobs(self, sim):
        cluster = Cluster.homogeneous(sim, 3, rating=1.0, discipline="time_shared")
        job = make_job(numproc=2, job_id=5)
        for nid in (0, 1):
            cluster.node(nid).add_task(job, work=10.0, est_work=10.0, now=0.0)
        assert cluster.running_jobs() == {5}

    def test_utilisation_aggregates_nodes(self, sim):
        cluster = Cluster.homogeneous(sim, 2, rating=1.0, discipline="space_shared")
        cluster.node(0).start_task(make_job(), work=50.0, now=0.0)
        sim.run()
        # 50 work over 2 nodes * 1 rating * 100 s horizon.
        assert cluster.utilisation(100.0) == pytest.approx(0.25)

    def test_utilisation_zero_horizon(self, sim):
        cluster = Cluster.homogeneous(sim, 2)
        assert cluster.utilisation(0.0) == 0.0

    def test_tasks_of(self, sim):
        cluster = Cluster.homogeneous(sim, 3, rating=1.0, discipline="time_shared")
        job = make_job(numproc=2, job_id=5)
        for nid in (0, 2):
            cluster.node(nid).add_task(job, work=10.0, est_work=10.0, now=0.0)
        tasks = cluster.tasks_of(job)
        assert len(tasks) == 2
        assert {t.node_id for t in tasks} == {0, 2}
