"""Tests for node failure/repair semantics."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import NodeFailureInjector
from repro.cluster.job import JobState
from repro.cluster.rms import ResourceManagementSystem
from repro.scheduling.registry import make_policy, policy_discipline
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from tests.conftest import make_job


def setup(policy_name, num_nodes=3):
    sim = Simulator()
    cluster = Cluster.homogeneous(
        sim, num_nodes, rating=1.0, discipline=policy_discipline(policy_name)
    )
    policy = make_policy(policy_name)
    rms = ResourceManagementSystem(sim, cluster, policy)
    return sim, cluster, policy, rms


class TestManualFailure:
    def test_failing_node_kills_its_job(self):
        sim, cluster, policy, rms = setup("libra")
        rms.submit_all([make_job(runtime=100.0, deadline=1000.0, job_id=1)])
        sim.run(until=10.0)
        victim_node = cluster.node(rms.accepted[0].assigned_nodes[0])
        policy.handle_node_failure(victim_node, 10.0)
        job = rms.jobs[0]
        assert job.state is JobState.FAILED
        assert rms.failed == [job]
        assert not victim_node.online
        sim.run()
        assert job.state is JobState.FAILED  # stays failed

    def test_multinode_job_loses_sibling_tasks(self):
        sim, cluster, policy, rms = setup("libra")
        rms.submit_all([make_job(runtime=100.0, deadline=1000.0, numproc=2, job_id=1)])
        sim.run(until=10.0)
        job = rms.accepted[0]
        a, b = job.assigned_nodes
        policy.handle_node_failure(cluster.node(a), 10.0)
        # The sibling task on the surviving node is gone too.
        assert not cluster.node(b).has_job(1)
        assert job.state is JobState.FAILED

    def test_offline_node_not_used_by_libra(self):
        sim, cluster, policy, rms = setup("libra", num_nodes=1)
        policy.handle_node_failure(cluster.node(0), 0.0)
        rms.submit_all([make_job(runtime=10.0, deadline=100.0, submit=1.0)])
        sim.run()
        assert len(rms.rejected) == 1

    def test_offline_node_not_used_by_librarisk(self):
        sim, cluster, policy, rms = setup("librarisk", num_nodes=1)
        policy.handle_node_failure(cluster.node(0), 0.0)
        rms.submit_all([make_job(runtime=10.0, deadline=100.0, submit=1.0)])
        sim.run()
        assert len(rms.rejected) == 1

    def test_offline_node_not_used_by_edf(self):
        sim, cluster, policy, rms = setup("edf", num_nodes=2)
        policy.handle_node_failure(cluster.node(0), 0.0)
        rms.submit_all([make_job(runtime=10.0, deadline=10_000.0, numproc=2, submit=1.0)])
        sim.run(until=500.0)
        # Needs 2 nodes, only 1 online: still queued.
        assert policy.queued_jobs == 1

    def test_repair_restores_capacity(self):
        sim, cluster, policy, rms = setup("edf", num_nodes=2)
        policy.handle_node_failure(cluster.node(0), 0.0)
        rms.submit_all([make_job(runtime=10.0, deadline=10_000.0, numproc=2, submit=1.0)])
        sim.run(until=50.0)
        policy.handle_node_repair(cluster.node(0), 50.0)
        sim.run()
        assert len(rms.completed) == 1
        assert rms.completed[0].start_time == pytest.approx(50.0)

    def test_queued_jobs_survive_failure(self):
        sim, cluster, policy, rms = setup("edf", num_nodes=1)
        rms.submit_all([
            make_job(runtime=100.0, deadline=100_000.0, submit=0.0, job_id=1),
            make_job(runtime=10.0, deadline=100_000.0, submit=1.0, job_id=2),
        ])
        sim.run(until=10.0)
        policy.handle_node_failure(cluster.node(0), 10.0)
        policy.handle_node_repair(cluster.node(0), 20.0)
        sim.run()
        by_id = {j.job_id: j for j in rms.jobs}
        assert by_id[1].state is JobState.FAILED
        assert by_id[2].state is JobState.COMPLETED

    def test_double_failure_rejected(self):
        sim, cluster, policy, _ = setup("libra")
        policy.handle_node_failure(cluster.node(0), 0.0)
        with pytest.raises(RuntimeError, match="already failed"):
            cluster.node(0).fail(1.0)

    def test_repair_of_online_node_rejected(self):
        sim, cluster, _, _ = setup("libra")
        with pytest.raises(RuntimeError, match="not failed"):
            cluster.node(0).repair(0.0)

    def test_timeshared_survivors_rebalance_after_sibling_removal(self):
        sim, cluster, policy, rms = setup("libra", num_nodes=2)
        # Two jobs on node 0 (best fit packs them), one with a task on
        # node 1 as well.
        rms.submit_all([
            make_job(runtime=40.0, deadline=100.0, numproc=2, submit=0.0, job_id=1),
            make_job(runtime=30.0, deadline=100.0, numproc=1, submit=1.0, job_id=2),
        ])
        sim.run(until=10.0)
        node_with_both = cluster.node(rms.accepted[1].assigned_nodes[0])
        other = cluster.node(1 - node_with_both.node_id)
        policy.handle_node_failure(other, 10.0)
        sim.run()
        by_id = {j.job_id: j for j in rms.jobs}
        # Job 1 (spanning both nodes) failed; job 2 survived on its node.
        assert by_id[1].state is JobState.FAILED
        assert by_id[2].state is JobState.COMPLETED
        assert by_id[2].deadline_met


class TestInjector:
    def run_with_failures(self, policy_name, mtbf, repair, num_jobs=40):
        sim, cluster, policy, rms = setup(policy_name, num_nodes=4)
        jobs = [
            make_job(runtime=50.0, deadline=500.0, submit=float(i * 20), job_id=i + 1)
            for i in range(num_jobs)
        ]
        horizon = num_jobs * 20.0 + 1000.0
        injector = NodeFailureInjector(
            sim, cluster, policy, RngStreams(seed=5),
            mtbf=mtbf, repair_time=repair, horizon=horizon,
        )
        rms.submit_all(jobs)
        injector.start()
        sim.run()
        return rms, injector, cluster

    def test_failures_occur_and_jobs_fail(self):
        rms, injector, _ = self.run_with_failures("libra", mtbf=300.0, repair=100.0)
        assert injector.failures_injected > 0
        assert len(rms.failed) > 0
        # Every job still reaches a terminal state.
        terminal = {JobState.COMPLETED, JobState.REJECTED, JobState.FAILED}
        assert all(j.state in terminal for j in rms.jobs)

    def test_metrics_account_for_failures(self):
        from repro.metrics import compute_metrics

        rms, _, cluster = self.run_with_failures("libra", mtbf=300.0, repair=100.0)
        m = compute_metrics(rms.jobs)
        assert m.failed == len(rms.failed)
        assert m.unfinished == 0
        assert m.accepted == m.completed + m.failed

    def test_rare_failures_leave_most_jobs_fine(self):
        rms, injector, _ = self.run_with_failures("edf", mtbf=1e9, repair=10.0)
        assert injector.failures_injected == 0
        assert len(rms.failed) == 0

    def test_deterministic_given_seed(self):
        a, _, _ = self.run_with_failures("libra", mtbf=300.0, repair=100.0)
        b, _, _ = self.run_with_failures("libra", mtbf=300.0, repair=100.0)
        assert [(j.job_id, j.state.value) for j in a.jobs] == \
               [(j.job_id, j.state.value) for j in b.jobs]

    def test_validation(self):
        sim, cluster, policy, _ = setup("libra")
        with pytest.raises(ValueError):
            NodeFailureInjector(sim, cluster, policy, RngStreams(seed=1),
                                mtbf=0.0, repair_time=1.0)
