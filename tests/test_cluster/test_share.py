"""Tests for the Eq. 1–2 share arithmetic and the rate policy."""

import math

import pytest

from repro.cluster.share import (
    ShareParams,
    admission_share,
    effective_rates,
    nominal_share,
    total_share,
)


class TestShareParams:
    def test_defaults_valid(self):
        p = ShareParams()
        assert 0.0 < p.overrun_floor_share <= 1.0
        assert p.redistribute_spare is False

    @pytest.mark.parametrize("floor", [0.0, -0.1, 1.5])
    def test_invalid_floor_rejected(self, floor):
        with pytest.raises(ValueError):
            ShareParams(overrun_floor_share=floor)


class TestNominalShare:
    def test_eq1_basic(self):
        # 50 s of estimated work, 100 s until deadline -> half the node.
        assert nominal_share(50.0, 100.0) == pytest.approx(0.5)

    def test_clamped_at_one(self):
        assert nominal_share(200.0, 100.0) == 1.0

    def test_overrun_gets_floor(self):
        p = ShareParams(overrun_floor_share=0.07)
        assert nominal_share(0.0, 100.0, p) == 0.07

    def test_expired_deadline_gets_floor(self):
        p = ShareParams(overrun_floor_share=0.07)
        assert nominal_share(50.0, -5.0, p) == 0.07
        assert nominal_share(50.0, 0.0, p) == 0.07

    def test_share_positive_for_tiny_work(self):
        assert nominal_share(1e-30, 100.0) > 0.0


class TestAdmissionShare:
    def test_unclamped(self):
        assert admission_share(200.0, 100.0) == pytest.approx(2.0)

    def test_expired_deadline_is_infinite(self):
        assert math.isinf(admission_share(50.0, 0.0))
        assert math.isinf(admission_share(50.0, -1.0))

    def test_zero_work_zero_share(self):
        assert admission_share(0.0, 100.0) == 0.0

    def test_negative_work_clamped(self):
        assert admission_share(-5.0, 100.0) == 0.0

    def test_total_share_sums(self):
        assert total_share([0.2, 0.3, 0.1]) == pytest.approx(0.6)
        assert total_share([]) == 0.0


class TestEffectiveRates:
    def test_exact_allocation_when_fits(self):
        assert effective_rates([0.2, 0.3]) == [0.2, 0.3]

    def test_overcommit_rescales_to_unit_sum(self):
        rates = effective_rates([1.0, 1.0])
        assert sum(rates) == pytest.approx(1.0)
        assert rates == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_overcommit_preserves_proportions(self):
        rates = effective_rates([0.9, 0.3])
        assert rates[0] / rates[1] == pytest.approx(3.0)
        assert sum(rates) == pytest.approx(1.0)

    def test_redistribute_spare_fills_node(self):
        p = ShareParams(redistribute_spare=True)
        rates = effective_rates([0.2, 0.2], p)
        assert sum(rates) == pytest.approx(1.0)
        assert rates[0] == pytest.approx(0.5)

    def test_no_redistribution_by_default(self):
        rates = effective_rates([0.2, 0.2])
        assert sum(rates) == pytest.approx(0.4)

    def test_empty_input(self):
        assert effective_rates([]) == []

    def test_all_zero_shares(self):
        assert effective_rates([0.0, 0.0]) == [0.0, 0.0]

    def test_rates_never_exceed_capacity(self):
        for shares in ([0.5], [0.7, 0.7, 0.7], [1.0] * 10):
            assert sum(effective_rates(shares)) <= 1.0 + 1e-12
