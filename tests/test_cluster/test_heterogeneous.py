"""Tests for heterogeneous clusters and runtime translation (§3)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.rms import ResourceManagementSystem
from repro.scheduling.registry import make_policy
from repro.sim.kernel import Simulator
from tests.conftest import make_job


def run_hetero(policy_name, jobs, ratings, discipline=None):
    sim = Simulator()
    from repro.scheduling.registry import policy_discipline

    cluster = Cluster.heterogeneous(
        sim, ratings, discipline=discipline or policy_discipline(policy_name)
    )
    rms = ResourceManagementSystem(sim, cluster, make_policy(policy_name))
    rms.submit_all(jobs)
    sim.run()
    return rms, sim, cluster


class TestFactory:
    def test_per_node_ratings(self, sim):
        cluster = Cluster.heterogeneous(sim, [100.0, 200.0, 400.0])
        assert [n.rating for n in cluster] == [100.0, 200.0, 400.0]

    def test_reference_defaults_to_minimum(self, sim):
        cluster = Cluster.heterogeneous(sim, [100.0, 200.0])
        assert cluster.reference_rating == 100.0

    def test_explicit_reference(self, sim):
        cluster = Cluster.heterogeneous(sim, [100.0, 200.0], reference_rating=150.0)
        assert cluster.reference_rating == 150.0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Cluster.heterogeneous(sim, [])
        with pytest.raises(ValueError):
            Cluster.heterogeneous(sim, [100.0, 0.0])
        with pytest.raises(ValueError):
            Cluster.heterogeneous(sim, [1.0], discipline="warp")


class TestTranslation:
    def test_est_time_shrinks_on_fast_node(self, sim):
        cluster = Cluster.heterogeneous(sim, [100.0, 400.0])
        slow, fast = cluster.node(0), cluster.node(1)
        assert cluster.est_time_on(slow, 100.0) == pytest.approx(100.0)
        assert cluster.est_time_on(fast, 100.0) == pytest.approx(25.0)

    def test_space_shared_job_finishes_faster_on_fast_node(self):
        # Run the identical job on a slow vs a fast space-shared node.
        results = {}
        for rating in (100.0, 200.0):
            sim = Simulator()
            cluster = Cluster.heterogeneous(
                sim, [rating], discipline="space_shared", reference_rating=100.0
            )
            rms = ResourceManagementSystem(sim, cluster, make_policy("edf"))
            rms.submit_all([make_job(runtime=100.0, deadline=1000.0)])
            sim.run()
            results[rating] = rms.completed[0].finish_time
        assert results[100.0] == pytest.approx(100.0)
        assert results[200.0] == pytest.approx(50.0)

    def test_libra_shares_account_for_node_speed(self):
        # On a node twice the reference speed the same job needs half
        # the share, so two such jobs fit where one fits at reference.
        jobs = [
            make_job(runtime=60.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=60.0, deadline=100.0, submit=1.0, job_id=2),
        ]
        rms, _, _ = run_hetero("libra", jobs, ratings=[200.0])
        # reference = 200 here (single node) -> est share 0.6 each, one
        # rejected; with an explicit slower reference both fit:
        sim = Simulator()
        cluster = Cluster.heterogeneous(sim, [200.0], reference_rating=100.0)
        rms2 = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        rms2.submit_all([
            make_job(runtime=60.0, deadline=100.0, submit=0.0, job_id=1),
            make_job(runtime=60.0, deadline=100.0, submit=1.0, job_id=2),
        ])
        sim.run()
        assert len(rms.rejected) == 1
        assert len(rms2.rejected) == 0
        assert all(j.deadline_met for j in rms2.completed)

    def test_librarisk_prefers_any_zero_risk_node_mix(self):
        jobs = [make_job(runtime=50.0, deadline=100.0, numproc=2)]
        rms, _, _ = run_hetero("librarisk", jobs, ratings=[100.0, 300.0, 100.0])
        assert len(rms.completed) == 1
        assert rms.completed[0].deadline_met
