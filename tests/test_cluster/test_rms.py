"""Tests for the RMS front-end."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.job import JobState
from repro.cluster.rms import ResourceManagementSystem
from repro.scheduling.registry import make_policy
from repro.sim.kernel import Simulator
from tests.conftest import make_job, run_jobs


class TestSubmission:
    def test_jobs_arrive_at_submit_times(self):
        jobs = [
            make_job(runtime=1.0, deadline=100.0, submit=5.0, job_id=1),
            make_job(runtime=1.0, deadline=100.0, submit=2.0, job_id=2),
        ]
        rms, sim, _ = run_jobs("libra", jobs, num_nodes=2)
        # Arrival order follows submit time, not list order.
        assert [j.job_id for j in rms.jobs] == [2, 1]

    def test_submit_all_returns_count(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 2, discipline="time_shared")
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        assert rms.submit_all([make_job(), make_job()]) == 2

    def test_single_submit_schedules_one_arrival(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 2, discipline="time_shared")
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        rms.submit(make_job(runtime=1.0, deadline=100.0, submit=3.0, job_id=1))
        assert sim.pending == 1
        sim.run()
        assert [j.job_id for j in rms.jobs] == [1]

    def test_submit_all_is_a_loop_over_submit(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 2, discipline="time_shared")
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        assert rms.submit_all(make_job(job_id=i) for i in (1, 2, 3)) == 3
        assert sim.pending == 3

    def test_out_of_order_submit_rejected_with_clear_error(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 2, discipline="time_shared")
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        rms.submit(make_job(runtime=1.0, deadline=100.0, submit=10.0, job_id=1))
        sim.run()  # clock now at t=10
        with pytest.raises(ValueError, match="out of order"):
            rms.submit(make_job(runtime=1.0, deadline=100.0, submit=4.0, job_id=2))

    def test_resubmission_rejected(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 2, discipline="time_shared")
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        job = make_job()
        job.mark_submitted()
        with pytest.raises(ValueError, match="cannot submit"):
            rms.submit_all([job])

    def test_policy_bound_once(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 2, discipline="time_shared")
        policy = make_policy("libra")
        ResourceManagementSystem(sim, cluster, policy)
        with pytest.raises(RuntimeError, match="already has a listener"):
            ResourceManagementSystem(sim, cluster, make_policy("libra"))


class TestBookkeeping:
    def test_accepted_and_completed_tracked(self):
        jobs = [make_job(runtime=10.0, deadline=100.0, submit=0.0)]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=1)
        assert len(rms.accepted) == 1
        assert len(rms.completed) == 1
        assert rms.completed[0].state is JobState.COMPLETED

    def test_rejected_tracked(self):
        # numproc larger than the cluster can never be satisfied.
        jobs = [make_job(numproc=5, deadline=100.0)]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=2)
        assert len(rms.rejected) == 1
        assert rms.rejected[0].state is JobState.REJECTED

    def test_acceptance_ratio(self):
        jobs = [
            make_job(runtime=10.0, deadline=100.0, job_id=1),
            make_job(numproc=9, deadline=100.0, job_id=2),
        ]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=2)
        assert rms.acceptance_ratio == pytest.approx(0.5)

    def test_acceptance_ratio_none_before_jobs(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, 2, discipline="time_shared")
        rms = ResourceManagementSystem(sim, cluster, make_policy("libra"))
        assert rms.acceptance_ratio is None

    def test_unfinished_accepted_empty_when_all_done(self):
        jobs = [make_job(runtime=10.0, deadline=100.0)]
        rms, _, _ = run_jobs("libra", jobs, num_nodes=1)
        assert rms.unfinished_accepted() == []
