"""Tests for the space-shared node (EDF's execution discipline)."""

import pytest

from repro.cluster.node import SpaceSharedNode
from tests.conftest import make_job


def make_node(sim, rating=1.0, listener=None):
    return SpaceSharedNode(0, rating, sim, listener=listener)


class TestExecution:
    def test_task_completes_after_work_over_rating(self, sim):
        done = []
        node = make_node(sim, rating=2.0, listener=lambda n, t, now: done.append(now))
        job = make_job(runtime=100.0)
        node.start_task(job, work=100.0, now=0.0)  # 100 work / rating 2 = 50 s
        sim.run()
        assert done == [50.0]
        assert node.idle

    def test_node_busy_while_running(self, sim):
        node = make_node(sim)
        node.start_task(make_job(), work=10.0, now=0.0)
        assert not node.available
        assert node.num_tasks == 1

    def test_second_task_rejected_while_busy(self, sim):
        node = make_node(sim)
        node.start_task(make_job(), work=10.0, now=0.0)
        with pytest.raises(RuntimeError, match="already busy"):
            node.start_task(make_job(), work=10.0, now=0.0)

    def test_sequential_tasks_after_completion(self, sim):
        done = []
        node = make_node(sim, listener=lambda n, t, now: done.append((t.job.job_id, now)))
        a, b = make_job(job_id=1), make_job(job_id=2)
        node.start_task(a, work=10.0, now=0.0)
        sim.run()
        node.start_task(b, work=5.0, now=sim.now)
        sim.run()
        assert done == [(1, 10.0), (2, 15.0)]

    def test_busy_time_accumulates_work(self, sim):
        node = make_node(sim, rating=4.0)
        node.start_task(make_job(), work=100.0, now=0.0)
        sim.run()
        assert node.busy_time == pytest.approx(100.0)

    def test_utilisation(self, sim):
        node = make_node(sim, rating=2.0)
        node.start_task(make_job(), work=100.0, now=0.0)  # busy 50 s
        sim.run()
        # over a 100 s horizon: 100 work / (2 rating * 100 s) = 0.5
        assert node.utilisation(100.0) == pytest.approx(0.5)

    def test_utilisation_zero_horizon(self, sim):
        node = make_node(sim)
        assert node.utilisation(0.0) == 0.0

    def test_listener_sees_empty_node(self, sim):
        states = []
        node = make_node(sim)
        node.listener = lambda n, t, now: states.append(n.idle)
        node.start_task(make_job(), work=1.0, now=0.0)
        sim.run()
        assert states == [True]  # task removed before notification


class TestValidation:
    def test_bad_rating_rejected(self, sim):
        with pytest.raises(ValueError):
            SpaceSharedNode(0, 0.0, sim)

    def test_has_job(self, sim):
        node = make_node(sim)
        job = make_job(job_id=9)
        node.start_task(job, work=10.0, now=0.0)
        assert node.has_job(9)
        assert not node.has_job(10)
