"""Tests for the Job model and its lifecycle state machine."""

import pytest

from repro.cluster.job import DELAY_TOLERANCE, Job, JobState, UrgencyClass
from tests.conftest import make_job


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("runtime", 0.0),
        ("runtime", -1.0),
        ("estimated_runtime", 0.0),
        ("numproc", 0),
        ("deadline", 0.0),
        ("deadline", -5.0),
        ("submit_time", -1.0),
    ])
    def test_invalid_arguments_rejected(self, field, value):
        kwargs = dict(runtime=10.0, estimated_runtime=10.0, numproc=1,
                      deadline=20.0, submit_time=0.0)
        kwargs[field] = value
        with pytest.raises(ValueError):
            Job(**kwargs)

    def test_auto_ids_are_unique(self):
        a, b = make_job(), make_job()
        assert a.job_id != b.job_id

    def test_explicit_id_respected(self):
        assert make_job(job_id=777).job_id == 777


class TestStateMachine:
    def test_happy_path(self):
        job = make_job(submit=10.0)
        assert job.state is JobState.CREATED
        job.mark_submitted()
        job.mark_queued()
        job.mark_running(15.0, [0, 1])
        assert job.start_time == 15.0
        assert job.assigned_nodes == [0, 1]
        job.mark_completed(50.0)
        assert job.finish_time == 50.0
        assert job.completed

    def test_submitted_straight_to_running(self):
        job = make_job()
        job.mark_submitted()
        job.mark_running(0.0, [0])
        assert job.state is JobState.RUNNING

    def test_rejection_from_submitted(self):
        job = make_job()
        job.mark_submitted()
        job.mark_rejected("no capacity")
        assert job.state is JobState.REJECTED
        assert job.reject_reason == "no capacity"
        assert not job.accepted

    def test_rejection_from_queued(self):
        job = make_job()
        job.mark_submitted()
        job.mark_queued()
        job.mark_rejected()
        assert job.state is JobState.REJECTED
        assert job.reject_reason is None

    @pytest.mark.parametrize("bad", [
        JobState.CREATED,
        JobState.COMPLETED,
        JobState.REJECTED,
    ])
    def test_illegal_transition_from_created(self, bad):
        job = make_job()
        with pytest.raises(ValueError, match="illegal transition"):
            job.transition(bad)

    def test_completed_is_terminal(self):
        job = make_job()
        job.mark_submitted()
        job.mark_running(0.0, [0])
        job.mark_completed(1.0)
        with pytest.raises(ValueError):
            job.mark_rejected()

    def test_cannot_complete_without_running(self):
        job = make_job()
        job.mark_submitted()
        with pytest.raises(ValueError):
            job.mark_completed(1.0)


class TestDeadlineQuantities:
    def test_absolute_deadline(self):
        job = make_job(submit=100.0, deadline=50.0)
        assert job.absolute_deadline == 150.0

    def test_remaining_deadline(self):
        job = make_job(submit=100.0, deadline=50.0)
        assert job.remaining_deadline(120.0) == 30.0
        assert job.remaining_deadline(160.0) == -10.0

    def test_delay_zero_when_on_time(self):
        job = make_job(submit=0.0, runtime=10.0, deadline=100.0)
        job.mark_submitted(); job.mark_running(0.0, [0]); job.mark_completed(50.0)
        assert job.delay == 0.0
        assert job.deadline_met is True

    def test_delay_positive_when_late(self):
        job = make_job(submit=0.0, deadline=100.0)
        job.mark_submitted(); job.mark_running(0.0, [0]); job.mark_completed(130.0)
        assert job.delay == pytest.approx(30.0)
        assert job.deadline_met is False

    def test_delay_tolerance_absorbs_float_noise(self):
        job = make_job(submit=0.0, deadline=100.0)
        job.mark_submitted(); job.mark_running(0.0, [0])
        job.mark_completed(100.0 + DELAY_TOLERANCE / 2)
        assert job.delay == 0.0
        assert job.deadline_met is True

    def test_delay_none_before_completion(self):
        job = make_job()
        assert job.delay is None
        assert job.response_time is None
        assert job.slowdown is None

    def test_deadline_met_for_rejected_job_is_false(self):
        job = make_job()
        job.mark_submitted()
        job.mark_rejected()
        assert job.deadline_met is False

    def test_deadline_met_while_running_is_none(self):
        job = make_job()
        job.mark_submitted()
        job.mark_running(0.0, [0])
        assert job.deadline_met is None


class TestDerivedMetrics:
    def test_response_time_includes_wait(self):
        job = make_job(submit=10.0, runtime=20.0, deadline=1000.0)
        job.mark_submitted(); job.mark_queued()
        job.mark_running(30.0, [0])
        job.mark_completed(50.0)
        assert job.response_time == 40.0

    def test_slowdown(self):
        job = make_job(submit=0.0, runtime=20.0, deadline=1000.0)
        job.mark_submitted(); job.mark_running(0.0, [0]); job.mark_completed(60.0)
        assert job.slowdown == pytest.approx(3.0)

    def test_overestimation_factor(self):
        job = make_job(runtime=10.0, estimate=35.0)
        assert job.overestimation_factor == pytest.approx(3.5)

    def test_urgency_default_low(self):
        assert make_job().urgency is UrgencyClass.LOW
