"""Tests for the proportional-share node — Libra's execution discipline.

All nodes here use ``rating=1.0`` so work units equal seconds and the
Eq. 1 arithmetic can be checked by hand.
"""

import math

import pytest

from repro.cluster.node import TimeSharedNode
from repro.cluster.share import ShareParams
from tests.conftest import make_job


def make_node(sim, rating=1.0, listener=None, **share_kwargs):
    params = ShareParams(**share_kwargs) if share_kwargs else ShareParams()
    return TimeSharedNode(0, rating, sim, listener=listener, share_params=params)


class TestSingleTask:
    def test_accurate_job_finishes_exactly_at_deadline(self, sim):
        done = []
        node = make_node(sim, listener=lambda n, t, now: done.append(now))
        job = make_job(runtime=50.0, estimate=50.0, deadline=100.0, submit=0.0)
        node.add_task(job, work=50.0, est_work=50.0, now=0.0)
        # Eq. 1: share = 50/100 = 0.5 -> actual 50 s of work at rate 0.5
        task = node.tasks[job.job_id]
        assert task.rate == pytest.approx(0.5)
        sim.run()
        assert done == [pytest.approx(100.0)]
        assert node.idle

    def test_overestimated_job_finishes_early(self, sim):
        done = []
        node = make_node(sim, listener=lambda n, t, now: done.append(now))
        job = make_job(runtime=20.0, estimate=50.0, deadline=100.0)
        node.add_task(job, work=20.0, est_work=50.0, now=0.0)
        sim.run()
        # rate 0.5 from the inflated estimate; actual work 20 -> t = 40.
        assert done == [pytest.approx(40.0)]

    def test_share_clamped_for_estimate_infeasible_job(self, sim):
        node = make_node(sim)
        job = make_job(runtime=50.0, estimate=300.0, deadline=100.0)
        node.add_task(job, work=50.0, est_work=300.0, now=0.0)
        assert node.tasks[job.job_id].rate == pytest.approx(1.0)
        sim.run()
        assert job.job_id not in node.tasks  # finished at t = 50 (full speed)
        assert sim.now == pytest.approx(50.0)

    def test_underestimated_job_enters_overrun_floor(self, sim):
        done = []
        node = make_node(
            sim, listener=lambda n, t, now: done.append(now), overrun_floor_share=0.1
        )
        job = make_job(runtime=80.0, estimate=40.0, deadline=100.0)
        node.add_task(job, work=80.0, est_work=40.0, now=0.0)
        sim.run()
        # Phase 1: share 40/100 = 0.4 until the estimate runs out at
        # t = 100 (consuming 40 of 80 work).  Phase 2: floor share 0.1
        # for the remaining 40 work -> 400 s more.
        assert done == [pytest.approx(500.0)]


class TestMultiTask:
    def test_two_fitting_jobs_meet_their_deadlines(self, sim):
        done = {}
        node = make_node(sim, listener=lambda n, t, now: done.__setitem__(t.job.job_id, now))
        a = make_job(runtime=30.0, deadline=100.0, job_id=1)
        b = make_job(runtime=40.0, deadline=200.0, job_id=2)
        node.add_task(a, work=30.0, est_work=30.0, now=0.0)
        node.add_task(b, work=40.0, est_work=40.0, now=0.0)
        # shares: 0.3 and 0.2; sum 0.5 <= 1, both run exactly on time.
        sim.run()
        assert done[1] == pytest.approx(100.0)
        assert done[2] == pytest.approx(200.0)

    def test_exact_allocation_leaves_spare_idle(self, sim):
        node = make_node(sim)
        job = make_job(runtime=50.0, deadline=100.0)
        node.add_task(job, work=50.0, est_work=50.0, now=0.0)
        sim.run()
        # Finishes at the deadline, not earlier, despite the idle half.
        assert sim.now == pytest.approx(100.0)

    def test_redistribute_spare_finishes_early(self, sim):
        node = make_node(sim, redistribute_spare=True)
        job = make_job(runtime=50.0, deadline=100.0)
        node.add_task(job, work=50.0, est_work=50.0, now=0.0)
        sim.run()
        assert sim.now == pytest.approx(50.0)  # whole node -> full speed

    def test_overcommit_rescales_rates(self, sim):
        node = make_node(sim)
        a = make_job(runtime=80.0, deadline=100.0, job_id=1)
        b = make_job(runtime=60.0, deadline=100.0, job_id=2)
        node.add_task(a, work=80.0, est_work=80.0, now=0.0)
        node.add_task(b, work=60.0, est_work=60.0, now=0.0)
        # Nominal 0.8 + 0.6 = 1.4 -> scaled by 1/1.4.
        ta, tb = node.tasks[1], node.tasks[2]
        assert ta.rate + tb.rate == pytest.approx(1.0)
        assert ta.rate / tb.rate == pytest.approx(80.0 / 60.0)

    def test_arrival_mid_flight_preserves_earlier_job_share(self, sim):
        done = {}
        node = make_node(sim, listener=lambda n, t, now: done.__setitem__(t.job.job_id, now))
        a = make_job(runtime=50.0, deadline=100.0, job_id=1)
        node.add_task(a, work=50.0, est_work=50.0, now=0.0)
        sim.run(until=40.0)
        b = make_job(runtime=10.0, deadline=50.0, submit=40.0, job_id=2)
        node.add_task(b, work=10.0, est_work=10.0, now=40.0)
        sim.run()
        # a: share 0.5 throughout (recomputed identically); b: 10/50=0.2.
        assert done[1] == pytest.approx(100.0)
        assert done[2] == pytest.approx(90.0)

    def test_work_ledgers_advance_on_sync(self, sim):
        node = make_node(sim)
        job = make_job(runtime=50.0, deadline=100.0)
        node.add_task(job, work=50.0, est_work=50.0, now=0.0)
        sim.run(until=20.0)
        node.sync(20.0)
        task = node.tasks[job.job_id]
        assert task.remaining_work == pytest.approx(40.0)  # 20 s at rate 0.5
        assert task.remaining_est_work == pytest.approx(40.0)

    def test_sync_backwards_raises(self, sim):
        node = make_node(sim)
        node.sync(10.0)
        with pytest.raises(ValueError):
            node.sync(5.0)

    def test_duplicate_job_rejected(self, sim):
        node = make_node(sim)
        job = make_job()
        node.add_task(job, work=10.0, est_work=10.0, now=0.0)
        with pytest.raises(RuntimeError, match="already has a task"):
            node.add_task(job, work=10.0, est_work=10.0, now=0.0)

    def test_busy_time_counts_executed_work_only(self, sim):
        node = make_node(sim)
        job = make_job(runtime=50.0, deadline=100.0)
        node.add_task(job, work=50.0, est_work=50.0, now=0.0)
        sim.run()
        assert node.busy_time == pytest.approx(50.0)
        assert node.utilisation(100.0) == pytest.approx(0.5)


class TestAdmissionViews:
    def test_total_admission_share_eq2(self, sim):
        node = make_node(sim)
        node.add_task(make_job(runtime=30.0, deadline=100.0, job_id=1),
                      work=30.0, est_work=30.0, now=0.0)
        node.add_task(make_job(runtime=20.0, deadline=50.0, job_id=2),
                      work=20.0, est_work=20.0, now=0.0)
        assert node.total_admission_share(0.0) == pytest.approx(0.3 + 0.4)

    def test_total_admission_share_with_extra(self, sim):
        node = make_node(sim)
        total = node.total_admission_share(0.0, extra=[(25.0, 100.0)])
        assert total == pytest.approx(0.25)

    def test_overrun_task_invisible_in_zero_mode(self, sim):
        node = make_node(sim)
        job = make_job(runtime=80.0, estimate=40.0, deadline=100.0)
        node.add_task(job, work=80.0, est_work=40.0, now=0.0)
        sim.run(until=150.0)
        node.sync(150.0)  # estimate exhausted at t=100 -> overrun
        assert node.tasks[job.job_id].overrun
        assert node.total_admission_share(150.0) == 0.0

    def test_overrun_task_counted_in_floor_mode(self, sim):
        node = make_node(sim, overrun_floor_share=0.1)
        job = make_job(runtime=80.0, estimate=40.0, deadline=100.0)
        node.add_task(job, work=80.0, est_work=40.0, now=0.0)
        sim.run(until=150.0)
        node.sync(150.0)
        assert node.total_admission_share(
            150.0, expired_job_share_mode="floor"
        ) == pytest.approx(0.1)

    def test_overrun_task_poisons_in_infinite_mode(self, sim):
        node = make_node(sim)
        job = make_job(runtime=80.0, estimate=40.0, deadline=100.0)
        node.add_task(job, work=80.0, est_work=40.0, now=0.0)
        sim.run(until=150.0)
        node.sync(150.0)
        assert math.isinf(node.total_admission_share(150.0, expired_job_share_mode="infinite"))

    def test_unknown_mode_rejected(self, sim):
        node = make_node(sim)
        with pytest.raises(ValueError):
            node.total_admission_share(0.0, expired_job_share_mode="bogus")


class TestPredictedDelays:
    def test_empty_node_with_fitting_job(self, sim):
        node = make_node(sim)
        job = make_job(runtime=50.0, deadline=100.0)
        delays = node.predicted_delays(0.0, extra=[(job, 50.0)])
        assert delays == [(job, 0.0)]

    def test_empty_node_with_infeasible_estimate(self, sim):
        node = make_node(sim)
        job = make_job(runtime=50.0, estimate=300.0, deadline=100.0)
        delays = node.predicted_delays(0.0, extra=[(job, 300.0)])
        # At full speed the estimate claims 300 s against a 100 s deadline.
        assert delays[0][1] == pytest.approx(200.0)

    def test_fitting_node_all_zero_fast_path(self, sim):
        node = make_node(sim)
        for i, (rt, dl) in enumerate([(30.0, 100.0), (20.0, 50.0)], start=1):
            node.add_task(make_job(runtime=rt, deadline=dl, job_id=i),
                          work=rt, est_work=rt, now=0.0)
        new = make_job(runtime=10.0, deadline=100.0)
        delays = node.predicted_delays(0.0, extra=[(new, 10.0)])
        assert all(d == 0.0 for _, d in delays)
        assert len(delays) == 3

    def test_overcommitted_node_staggers_delays(self, sim):
        """Regression: proportional rescale alone makes every Eq. 4 value
        equal (Σ for all jobs), hiding over-commitment from σ.  The
        forward projection must stagger them."""
        node = make_node(sim)
        a = make_job(runtime=80.0, deadline=100.0, job_id=1)
        b = make_job(runtime=60.0, deadline=120.0, job_id=2)
        node.add_task(a, work=80.0, est_work=80.0, now=0.0)
        node.add_task(b, work=60.0, est_work=60.0, now=0.0)
        delays = dict((j.job_id, d) for j, d in node.predicted_delays(0.0))
        # Σ = 0.8 + 0.5 = 1.3 > 1: at least one job predicted late,
        # and the two relative delays must NOT be the degenerate equal pair.
        assert max(delays.values()) > 0.0
        dd = {jid: (d + rem) / rem for (jid, d), rem in zip(delays.items(), [100.0, 120.0])}
        assert dd[1] != pytest.approx(dd[2])

    def test_projection_matches_actual_execution_when_estimates_accurate(self, sim):
        node = make_node(sim)
        a = make_job(runtime=80.0, deadline=100.0, job_id=1)
        b = make_job(runtime=60.0, deadline=120.0, job_id=2)
        predicted = {
            j.job_id: d
            for j, d in make_node(sim).predicted_delays(0.0, extra=[(a, 80.0), (b, 60.0)])
        }
        done = {}
        node.listener = lambda n, t, now: done.__setitem__(t.job.job_id, now)
        node.add_task(a, work=80.0, est_work=80.0, now=0.0)
        node.add_task(b, work=60.0, est_work=60.0, now=0.0)
        sim.run()
        for jid, job in ((1, a), (2, b)):
            actual_delay = max(0.0, done[jid] - job.absolute_deadline)
            assert predicted[jid] == pytest.approx(actual_delay, abs=1e-6)

    def test_overrun_task_contributes_accrued_delay(self, sim):
        node = make_node(sim)
        job = make_job(runtime=80.0, estimate=40.0, deadline=100.0)
        node.add_task(job, work=80.0, est_work=40.0, now=0.0)
        sim.run(until=150.0)
        node.sync(150.0)
        delays = dict((j.job_id, d) for j, d in node.predicted_delays(150.0))
        assert delays[job.job_id] == pytest.approx(50.0)  # 150 - 100

    def test_overrun_floor_slows_new_job_in_projection(self, sim):
        node = make_node(sim, overrun_floor_share=0.5)
        # share 10/20 = 0.5 -> estimate exhausted at t = 20, then the
        # 0.5 floor; still far from its 1000 s of actual work at t = 100.
        zombie = make_job(runtime=1000.0, estimate=10.0, deadline=20.0, job_id=1)
        node.add_task(zombie, work=1000.0, est_work=10.0, now=0.0)
        sim.run(until=100.0)
        node.sync(100.0)
        assert node.tasks[1].overrun
        # New job would need 0.8 of the node; with the 0.5 floor occupant
        # the sum rescales and the new job is predicted late.
        new = make_job(runtime=80.0, deadline=100.0, submit=100.0, job_id=2)
        delays = dict((j.job_id, d) for j, d in node.predicted_delays(100.0, extra=[(new, 80.0)]))
        assert delays[2] > 0.0

    def test_expired_deadline_running_job(self, sim):
        node = make_node(sim)
        job = make_job(runtime=500.0, estimate=500.0, deadline=100.0)
        node.add_task(job, work=500.0, est_work=500.0, now=0.0)
        sim.run(until=200.0)
        node.sync(200.0)
        delays = dict((j.job_id, d) for j, d in node.predicted_delays(200.0))
        assert delays[job.job_id] > 0.0

    def test_no_entries(self, sim):
        assert make_node(sim).predicted_delays(0.0) == []
