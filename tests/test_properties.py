"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.compare import crossover_points, dominance_fraction, trend
from repro.cluster.share import ShareParams, admission_share, effective_rates, nominal_share
from repro.scheduling.risk import assess_delays, deadline_delay
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.workload.estimates import interpolate_inaccuracy
from repro.workload.swf import SWFRecord, parse_swf
from repro.workload.traces import scale_arrivals

finite_pos = st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False)
small_pos = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestKernelProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=60))
    def test_events_fire_in_nondecreasing_time_order(self, times):
        sim = Simulator()
        fired: list[float] = []
        for t in times:
            sim.schedule_at(t, lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_same_time_events_fire_fifo(self, tags):
        sim = Simulator()
        fired: list[int] = []
        for tag in tags:
            sim.schedule_at(5.0, lambda ev, tag=tag: fired.append(tag))
        sim.run()
        assert fired == tags


class TestShareProperties:
    @given(small_pos, small_pos)
    def test_nominal_share_in_unit_interval(self, est, rem):
        s = nominal_share(est, rem)
        assert 0.0 < s <= 1.0

    @given(small_pos, small_pos)
    def test_nominal_matches_admission_when_feasible(self, est, rem):
        unclamped = admission_share(est, rem)
        assume(unclamped <= 1.0)
        assert nominal_share(est, rem) == pytest.approx(unclamped)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=30))
    def test_effective_rates_sum_bounded(self, shares):
        rates = effective_rates(shares)
        assert sum(rates) <= 1.0 + 1e-9
        assert all(r >= 0.0 for r in rates)

    @given(st.lists(st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
                    min_size=1, max_size=30))
    def test_rescaling_preserves_proportions(self, shares):
        rates = effective_rates(shares)
        # rate_i / rate_j == share_i / share_j for all pairs (spot-check ends).
        if len(shares) >= 2 and rates[0] > 0 and rates[-1] > 0:
            assert rates[0] / rates[-1] == pytest.approx(shares[0] / shares[-1], rel=1e-6)

    @given(st.lists(st.floats(min_value=1e-6, max_value=0.2, allow_nan=False),
                    min_size=1, max_size=4))
    def test_redistribute_spare_fills_capacity(self, shares):
        rates = effective_rates(shares, ShareParams(redistribute_spare=True))
        assert sum(rates) == pytest.approx(1.0)


class TestRiskProperties:
    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False), finite_pos)
    def test_deadline_delay_at_least_one(self, delay, rem):
        assert deadline_delay(delay, rem) >= 1.0

    @given(finite_pos, finite_pos)
    def test_deadline_delay_monotone_in_delay(self, delay, rem):
        assert deadline_delay(delay, rem) <= deadline_delay(delay * 2.0, rem)

    @given(st.floats(min_value=1e-3, max_value=1e6), finite_pos)
    def test_deadline_delay_antitone_in_remaining(self, delay, rem):
        assert deadline_delay(delay, rem) >= deadline_delay(delay, rem * 2.0)

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), finite_pos,
    ), max_size=20))
    def test_sigma_nonnegative(self, pairs):
        a = assess_delays(pairs)
        assert a.sigma >= 0.0 or math.isinf(a.sigma)

    @given(st.lists(st.tuples(st.just(0.0), finite_pos), min_size=1, max_size=20))
    def test_all_on_time_always_zero_risk(self, pairs):
        a = assess_delays(pairs)
        assert a.zero_risk and a.strictly_safe
        assert a.mu == pytest.approx(1.0)


#: Runtimes of at least one second — the interpolation floors estimates
#: at 1 s, and real traces record integer seconds.
runtime_pos = st.floats(min_value=1.0, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestEstimateProperties:
    @given(
        st.lists(runtime_pos, min_size=1, max_size=50),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    def test_interpolation_bounded_by_endpoints(self, runtimes, pct):
        r = np.array(runtimes)
        t = r * 3.0  # over-estimates
        est = interpolate_inaccuracy(r, t, pct)
        assert np.all(est >= r - 1e-9)
        assert np.all(est <= t + 1e-9)

    @given(st.lists(runtime_pos, min_size=1, max_size=30))
    def test_interpolation_endpoints_exact(self, runtimes):
        r = np.array(runtimes)
        t = r * 2.5
        assert np.allclose(interpolate_inaccuracy(r, t, 0.0), np.maximum(r, 1.0))
        assert np.allclose(interpolate_inaccuracy(r, t, 100.0), np.maximum(t, 1.0))


class TestSWFProperties:
    @given(st.lists(st.tuples(
        st.integers(min_value=1, max_value=10**6),       # job number
        st.floats(min_value=0, max_value=1e8, allow_nan=False),  # submit
        st.floats(min_value=1, max_value=1e6, allow_nan=False),  # runtime
        st.integers(min_value=1, max_value=128),         # procs
    ), max_size=30))
    def test_parse_write_round_trip(self, rows):
        records = [
            SWFRecord(job_number=n, submit_time=float(s), run_time=float(r),
                      allocated_procs=p, requested_procs=p, requested_time=float(r) * 2)
            for n, s, r, p in rows
        ]
        text = "\n".join(r.to_line() for r in records)
        _, parsed = parse_swf(text)
        assert len(parsed) == len(records)
        for orig, back in zip(records, parsed):
            assert back.job_number == orig.job_number
            assert back.submit_time == pytest.approx(orig.submit_time)
            assert back.run_time == pytest.approx(orig.run_time)
            assert back.procs == orig.procs


class TestArrivalScalingProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                 min_size=2, max_size=30),
        st.floats(min_value=0.05, max_value=4.0, allow_nan=False),
    )
    def test_interarrival_scaling_exact(self, submits, factor):
        submits = sorted(submits)
        records = [
            SWFRecord(job_number=i + 1, submit_time=s, run_time=10.0,
                      allocated_procs=1, requested_procs=1)
            for i, s in enumerate(submits)
        ]
        scaled = scale_arrivals(records, factor)
        for (a, b), (sa, sb) in zip(
            zip(records, records[1:]), zip(scaled, scaled[1:])
        ):
            orig_gap = b.submit_time - a.submit_time
            new_gap = sb.submit_time - sa.submit_time
            assert new_gap == pytest.approx(orig_gap * factor, rel=1e-9, abs=1e-6)

    @given(st.floats(min_value=0.05, max_value=4.0, allow_nan=False))
    def test_scaling_preserves_order(self, factor):
        records = [
            SWFRecord(job_number=i + 1, submit_time=float(i * 17 % 97), run_time=1.0,
                      allocated_procs=1, requested_procs=1)
            for i in range(20)
        ]
        scaled = scale_arrivals(records, factor)
        times = [r.submit_time for r in scaled]
        assert times == sorted(times)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    @settings(max_examples=25)
    def test_streams_reproducible_for_any_seed_and_name(self, seed, name):
        a = RngStreams(seed=seed).get(name).random(3)
        b = RngStreams(seed=seed).get(name).random(3)
        assert np.array_equal(a, b)


class TestAnalysisProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=30))
    def test_dominance_of_self_is_total(self, series):
        assert dominance_fraction(series, series) == 1.0

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=2, max_size=30))
    def test_crossovers_within_x_range(self, values):
        x = list(range(len(values)))
        other = [0.0] * len(values)
        for cx in crossover_points(x, values, other):
            assert x[0] <= cx <= x[-1]

    @given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                    min_size=1, max_size=20))
    def test_trend_classification_total(self, values):
        assert trend(values) in ("increasing", "decreasing", "flat", "mixed")
