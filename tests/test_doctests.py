"""Run the doctests embedded in module docstrings and APIs.

Keeps every ``>>>`` example in the documentation executable and true.
"""

import doctest

import pytest

import repro.core
import repro.scheduling.registry
import repro.sim.kernel
import repro.sim.rng

MODULES = [
    repro.core,
    repro.sim.kernel,
    repro.sim.rng,
    repro.scheduling.registry,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"


def test_package_quickstart_doctest():
    """The __init__ quickstart example must stay runnable."""
    import repro

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
