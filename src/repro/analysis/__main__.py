"""``python -m repro.analysis`` runs the determinism/concurrency linter."""

from __future__ import annotations

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
