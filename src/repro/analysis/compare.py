"""Pairwise series comparison primitives."""

from __future__ import annotations

from typing import Sequence


def _check(a: Sequence[float], b: Sequence[float]) -> None:
    if len(a) != len(b):
        raise ValueError(f"series lengths differ: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("series must be non-empty")


def improvement_pct(candidate: Sequence[float], baseline: Sequence[float]) -> list[float]:
    """Point-wise relative improvement of ``candidate`` over ``baseline`` (%).

    Positive means the candidate is higher.  A zero baseline point maps
    to 0 % when the candidate is also zero, else ``inf``.
    """
    _check(candidate, baseline)
    out = []
    for c, b in zip(candidate, baseline):
        if b == 0.0:
            out.append(0.0 if c == 0.0 else float("inf"))
        else:
            out.append(100.0 * (c - b) / b)
    return out


def mean_improvement_pct(candidate: Sequence[float], baseline: Sequence[float]) -> float:
    """Mean of the finite point-wise improvements."""
    vals = [v for v in improvement_pct(candidate, baseline) if v != float("inf")]
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


def dominance_fraction(
    candidate: Sequence[float],
    baseline: Sequence[float],
    higher_is_better: bool = True,
    tolerance: float = 0.0,
) -> float:
    """Fraction of sweep points at which the candidate wins (ties excluded
    unless within ``tolerance``, which counts as a win)."""
    _check(candidate, baseline)
    wins = 0
    for c, b in zip(candidate, baseline):
        delta = (c - b) if higher_is_better else (b - c)
        if delta >= -tolerance:
            wins += 1
    return wins / len(candidate)


def crossover_points(
    x_values: Sequence[float],
    a: Sequence[float],
    b: Sequence[float],
) -> list[float]:
    """Approximate x positions where series ``a`` and ``b`` cross.

    Linear interpolation between adjacent sweep points; exact ties at a
    grid point report that grid x.
    """
    _check(a, b)
    if len(x_values) != len(a):
        raise ValueError("x_values must align with the series")
    crossings: list[float] = []
    diffs = [ai - bi for ai, bi in zip(a, b)]
    for i in range(1, len(diffs)):
        d0, d1 = diffs[i - 1], diffs[i]
        if d0 == 0.0:
            crossings.append(float(x_values[i - 1]))
        elif d0 * d1 < 0.0:
            # Interpolate the zero of the difference.
            t = d0 / (d0 - d1)
            x = x_values[i - 1] + t * (x_values[i] - x_values[i - 1])
            crossings.append(float(x))
    if diffs[-1] == 0.0:
        crossings.append(float(x_values[-1]))
    return crossings


def trend(values: Sequence[float], tolerance: float = 0.0) -> str:
    """Classify a series as 'increasing', 'decreasing', 'flat' or 'mixed'.

    The classification is by net direction of consecutive steps with
    ``tolerance`` absorbing noise.
    """
    if len(values) < 2:
        return "flat"
    ups = downs = 0
    for prev, cur in zip(values, values[1:]):
        if cur > prev + tolerance:
            ups += 1
        elif cur < prev - tolerance:
            downs += 1
    if ups and not downs:
        return "increasing"
    if downs and not ups:
        return "decreasing"
    if not ups and not downs:
        return "flat"
    return "mixed"
