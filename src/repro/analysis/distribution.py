"""Distribution summaries: ECDFs, quantile tables, histogram rendering.

The paper reports means; distributions tell the fuller story (e.g.
Libra's slowdown mass sits near the deadline factor by construction).
These helpers turn value samples into comparable, printable summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

DEFAULT_QUANTILES = (0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99)


@dataclass(frozen=True)
class DistributionSummary:
    """Quantiles and moments of one sample."""

    name: str
    n: int
    mean: float
    std: float
    quantiles: dict[float, float]

    def as_row(self, qs: Sequence[float] = DEFAULT_QUANTILES) -> list:
        return [self.name, self.n, self.mean, self.std,
                *(self.quantiles[q] for q in qs)]


def summarize_distribution(
    name: str,
    values: Sequence[float],
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> DistributionSummary:
    """Quantile/moment summary of ``values``."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=float)
    if arr.size == 0:
        raise ValueError(f"no finite values for {name!r}")
    return DistributionSummary(
        name=name,
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        quantiles={q: float(np.quantile(arr, q)) for q in quantiles},
    )


def ecdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("empty sample")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def ecdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of the sample at or below ``x``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    return float(np.mean(arr <= x))


def histogram_ascii(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
) -> str:
    """A fixed-width ASCII histogram (one line per bin)."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() or 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * max(0, round(width * count / peak))
        lines.append(f"[{lo:10.4g}, {hi:10.4g})  {count:6d}  {bar}")
    return "\n".join(lines)


def compare_distributions(
    samples: Mapping[str, Sequence[float]],
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> str:
    """Side-by-side quantile table for several samples."""
    from repro.experiments.reporting import render_table

    headers = ["sample", "n", "mean", "std", *(f"p{int(q * 100)}" for q in quantiles)]
    rows = [
        summarize_distribution(name, vals, quantiles).as_row(quantiles)
        for name, vals in samples.items()
    ]
    return render_table(headers, rows)
