"""Runtime determinism sanitizer (``REPRO_SANITIZE=1``).

The static flow pass (:mod:`repro.analysis.flow`) proves that no
*resolvable* call chain leads from a decision-path root to a
nondeterminism source; this module enforces the same ban dynamically,
catching what static resolution cannot see (callbacks, monkeypatched
hooks, ``getattr`` dispatch).  When installed it monkeypatches the
banned sources — ``time`` wall clocks, the module-level ``random``
functions, ``os.urandom`` — to raise :class:`SanitizerViolation` with
a captured stack *if* touched inside an active decision-path span;
outside spans they pass straight through to the real functions, so
serving loops, profilers and load generators keep working.

Spans wrap the engine's ``sim.run`` calls (submit/advance/drain): all
admission decisions fire inside the kernel loop, so anything the
policies, nodes or observers read while deciding is covered.  Code
with a sanctioned reason to read a wall clock inside a span (the
profiler's admission timer, whose output is explicitly outside the
byte-identical guarantee) wraps the read in :func:`exempt`.

Seeded generators (``random.Random(seed)`` instances,
``numpy`` ``Generator`` streams from :mod:`repro.sim.rng`) are
untouched — determinism comes from the seed, not from avoiding the
module.  ``datetime.datetime.now`` cannot be patched (immutable C
type); the static DET001 rule covers it instead.

Enable with ``REPRO_SANITIZE=1`` (the test suite's ``conftest``
installs it session-wide; CI runs one tier-1 shard that way).
"""

from __future__ import annotations

import os
import random
import threading
import time
import traceback
from types import TracebackType
from typing import Any, Callable, Optional

ENV_FLAG = "REPRO_SANITIZE"

_TIME_ATTRS = (
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
)
_RANDOM_ATTRS = (
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "expovariate", "getrandbits",
    "normalvariate",
)


class SanitizerViolation(RuntimeError):
    """A banned nondeterminism source was read inside a decision span.

    The message carries the offending call and the full stack that
    reached it, so the finding is actionable without a debugger.
    """

    def __init__(self, source: str, stack: str) -> None:
        super().__init__(
            f"determinism sanitizer: {source} called inside an active "
            f"decision-path span; decision bytes must not depend on it "
            f"(wrap a sanctioned read in repro.analysis.sanitizer.exempt()).\n"
            f"Captured stack:\n{stack}"
        )
        self.source = source
        self.stack = stack


class _State(threading.local):
    """Per-thread span/exemption depths."""

    def __init__(self) -> None:
        self.span_depth = 0
        self.exempt_depth = 0


_state = _State()

#: name -> original callable, non-empty only while installed.
_originals: dict[str, Callable[..., Any]] = {}


class _Span:
    """Decision-path span: banned sources raise while one is active.

    A plain class, not ``@contextmanager`` — this sits on the serving
    hot path and must cost two integer bumps, nothing more.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        _state.span_depth += 1

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        _state.span_depth -= 1


class _Exempt:
    """Scoped exemption for sanctioned reads inside a span."""

    __slots__ = ()

    def __enter__(self) -> None:
        _state.exempt_depth += 1

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        _state.exempt_depth -= 1


_SPAN = _Span()
_EXEMPT = _Exempt()


def decision_span() -> _Span:
    """The span the engine holds around each ``sim.run``."""
    return _SPAN


def exempt() -> _Exempt:
    """Allow a sanctioned nondeterministic read inside a span."""
    return _EXEMPT


def in_span() -> bool:
    return _state.span_depth > 0 and _state.exempt_depth == 0


def _guard(
    name: str, original: Callable[..., Any]
) -> Callable[..., Any]:
    def guarded(*args: Any, **kwargs: Any) -> Any:
        if _state.span_depth > 0 and _state.exempt_depth == 0:
            stack = "".join(traceback.format_stack())
            raise SanitizerViolation(name, stack)
        return original(*args, **kwargs)

    # Impersonate the original so introspection-based consumers (e.g.
    # pytest-benchmark resolving its timer via __module__/__qualname__)
    # keep working while the guard is installed.
    guarded.__name__ = getattr(original, "__name__", name.rpartition(".")[2])
    guarded.__qualname__ = getattr(original, "__qualname__", guarded.__name__)
    guarded.__module__ = getattr(original, "__module__", name.rpartition(".")[0])
    return guarded


def installed() -> bool:
    return bool(_originals)


def install() -> None:
    """Patch the banned sources (idempotent)."""
    if _originals:
        return
    for attr in _TIME_ATTRS:
        original = getattr(time, attr, None)
        if original is None:  # pragma: no cover - platform-dependent
            continue
        _originals[f"time.{attr}"] = original
        setattr(time, attr, _guard(f"time.{attr}", original))
    for attr in _RANDOM_ATTRS:
        original = getattr(random, attr, None)
        if original is None:  # pragma: no cover - version-dependent
            continue
        _originals[f"random.{attr}"] = original
        setattr(random, attr, _guard(f"random.{attr}", original))
    _originals["os.urandom"] = os.urandom
    os.urandom = _guard("os.urandom", os.urandom)  # type: ignore[assignment]


def uninstall() -> None:
    """Restore every patched source (idempotent)."""
    for name, original in list(_originals.items()):
        module_name, _, attr = name.partition(".")
        module = {"time": time, "random": random, "os": os}[module_name]
        setattr(module, attr, original)
    _originals.clear()


def enabled_by_env() -> bool:
    return os.environ.get(ENV_FLAG, "").strip().lower() in (
        "1", "true", "yes", "on"
    )


def install_from_env() -> bool:
    """Install when ``REPRO_SANITIZE`` asks for it; returns whether on."""
    if enabled_by_env():
        install()
        return True
    return False


__all__ = [
    "ENV_FLAG",
    "SanitizerViolation",
    "decision_span",
    "enabled_by_env",
    "exempt",
    "in_span",
    "install",
    "install_from_env",
    "installed",
    "uninstall",
]
