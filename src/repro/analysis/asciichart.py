"""ASCII line charts for figure panels.

The benchmark harness prints series tables; for a quick visual check
of *shape* (who wins, where curves cross) an ASCII plot in the
terminal beats scanning numbers.  Pure string output, no plotting
dependencies, deterministic layout — so charts are testable.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Sequence

#: Marker characters assigned to series in insertion order.
MARKERS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(steps, max(0, round(frac * steps)))


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render series as an ASCII scatter-line chart.

    Columns are the sweep points spread across ``width``; each series
    gets a marker from :data:`MARKERS`; collisions show the later
    series' marker.  Returns a multi-line string with a legend.
    """
    if not x_values:
        raise ValueError("need at least one x value")
    if not series:
        raise ValueError("need at least one series")
    for name, vals in series.items():
        if len(vals) != len(x_values):
            raise ValueError(f"series {name!r} length {len(vals)} != {len(x_values)}")
    if len(series) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series supported")

    finite = [v for vals in series.values() for v in vals if math.isfinite(v)]
    if not finite:
        raise ValueError("series contain no finite values")
    lo = y_min if y_min is not None else min(finite)
    hi = y_max if y_max is not None else max(finite)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height + 1)]
    n = len(x_values)
    for (name, vals), marker in zip(series.items(), MARKERS):
        for i, v in enumerate(vals):
            if not math.isfinite(v):
                continue
            col = _scale(i, 0, max(n - 1, 1), width - 1)
            row = height - _scale(v, lo, hi, height)
            grid[row][col] = marker

    gutter = 9
    lines = []
    if y_label:
        lines.append(f"{y_label}")
    for r, row in enumerate(grid):
        if r == 0:
            tick = f"{hi:8.4g} "
        elif r == height:
            tick = f"{lo:8.4g} "
        else:
            tick = " " * gutter
        lines.append(tick + "|" + "".join(row))
    axis = " " * gutter + "+" + "-" * width
    lines.append(axis)
    x_lo, x_hi = f"{x_values[0]:g}", f"{x_values[-1]:g}"
    pad = max(1, width - len(x_lo) - len(x_hi))
    lines.append(" " * (gutter + 1) + x_lo + " " * pad + x_hi)
    if x_label:
        label_pad = max(0, gutter + 1 + (width - len(x_label)) // 2)
        lines.append(" " * label_pad + x_label)
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), MARKERS)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def panel_chart(panel: Any, width: int = 64, height: int = 14) -> str:
    """Chart a figure :class:`~repro.experiments.figures.Panel`."""
    head = f"({panel.label}) {panel.title}"
    body = ascii_chart(
        list(panel.x_values),
        panel.series,
        width=width,
        height=height,
        x_label=panel.x_label,
    )
    return head + "\n" + body
