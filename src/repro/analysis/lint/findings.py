"""Finding records emitted by the ``repro lint`` rule engine.

A :class:`Finding` pins one rule violation to a file and line.  Its
identity for baseline purposes is ``(path, rule, message)`` — line
numbers drift with every unrelated edit, so the baseline matches on
content, not position (see :mod:`repro.analysis.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    #: Path as reported (relative to the lint invocation's root).
    path: str
    #: 1-based source line of the offending node.
    line: int
    #: 0-based column of the offending node.
    col: int
    #: Rule id, e.g. ``"DET001"``.
    rule: str
    #: Human-readable description of the violation.
    message: str

    def key(self) -> tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.path, self.rule, self.message)

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """The classic ``path:line:col: RULE message`` compiler form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


__all__ = ["Finding"]
