"""``# repro-lint:`` pragma comments: suppressions and scope markers.

The linter reads control comments out of the token stream (so they
work anywhere Python allows a comment) with this grammar::

    # repro-lint: disable=DET003            suppress rule(s) on this line
    # repro-lint: disable=DET003,CONC001    several rules at once
    # repro-lint: disable=all               everything on this line
    # repro-lint: disable-file=DET003       suppress rule(s) in the whole file
    # repro-lint: module=repro.sim.fake     lint this file *as if* it were
                                            that module (test fixtures)
    # repro-lint: locked                    on a ``def`` line: the caller
                                            must hold the engine lock, so
                                            CONC001 treats the body as a
                                            lock-held scope
    # repro-lint: safe=CONC001              on a ``def`` line: the function
                                            is designated safe for the
                                            listed rule(s) (e.g. it runs
                                            before the object is shared
                                            between threads)
    # repro-lint: boundary=FLOW001          on a ``def`` line: the function
                                            is a declared nondeterminism
                                            boundary — the whole-program
                                            flow analysis does not
                                            propagate taint through it
                                            (e.g. the live WallClock,
                                            whose reads replay reproduces
                                            from logged timestamps)

Every suppression should carry a short justification after the pragma
(``# repro-lint: disable=DET003  exact tie-break, not a tolerance``);
the parser ignores trailing prose, humans should not.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Optional, Union

_PRAGMA = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")

#: Directives whose value is a rule list.
_RULE_LIST_DIRECTIVES = ("disable", "disable-file", "safe", "boundary")


@dataclass
class ScopeMarker:
    """A ``def``-line marker granting the function body an exemption."""

    #: True for ``locked`` — the enclosing function documents that its
    #: caller holds the relevant lock.
    locked: bool = False
    #: Rules the function is designated safe for (``safe=...``).
    safe: set[str] = field(default_factory=set)
    #: Flow rules for which the function is a declared analysis
    #: boundary (``boundary=...``): taint/protocol propagation stops at
    #: its call edge instead of descending into the body.
    boundary: set[str] = field(default_factory=set)


@dataclass
class Suppressions:
    """Everything the pragma comments of one file say."""

    #: line -> rule ids disabled on that line ("all" disables everything).
    line_disables: dict[int, set[str]] = field(default_factory=dict)
    #: Rules disabled for the entire file ("all" disables everything).
    file_disables: set[str] = field(default_factory=set)
    #: ``module=`` override, or ``None`` to derive the module from the path.
    module_override: Optional[str] = None
    #: line -> scope marker (looked up by the ``def`` statement's line).
    scope_markers: dict[int, ScopeMarker] = field(default_factory=dict)

    def is_line_suppressed(self, line: int, rule: str) -> bool:
        rules = self.line_disables.get(line)
        return rules is not None and (rule in rules or "all" in rules)

    def is_file_suppressed(self, rule: str) -> bool:
        return rule in self.file_disables or "all" in self.file_disables

    def is_suppressed(self, line: int, rule: str) -> bool:
        return self.is_file_suppressed(rule) or self.is_line_suppressed(line, rule)

    def marker_at(self, line: int) -> Optional[ScopeMarker]:
        return self.scope_markers.get(line)


def marker_for_def(
    sup: Suppressions, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Optional[ScopeMarker]:
    """The scope marker governing ``node``, if any.

    Decorated functions put the pragma wherever it reads best — on the
    ``def`` line or on any decorator line above it — so the lookup
    accepts both.  When several lines carry markers the union applies.
    """
    lines = [node.lineno]
    lines.extend(dec.lineno for dec in node.decorator_list)
    merged: Optional[ScopeMarker] = None
    for line in lines:
        marker = sup.scope_markers.get(line)
        if marker is None:
            continue
        if merged is None:
            merged = ScopeMarker()
        merged.locked = merged.locked or marker.locked
        merged.safe |= marker.safe
        merged.boundary |= marker.boundary
    return merged


def _parse_rules(value: str) -> set[str]:
    return {part.strip() for part in value.split(",") if part.strip()}


def _marker_for(sup: Suppressions, line: int) -> ScopeMarker:
    marker = sup.scope_markers.get(line)
    if marker is None:
        marker = ScopeMarker()
        sup.scope_markers[line] = marker
    return marker


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``# repro-lint:`` pragma from ``source``.

    Unreadable sources (tokenize errors) yield an empty
    :class:`Suppressions` — the parse error will surface as a lint
    engine error anyway, and pragmas in a broken file are moot.
    """
    sup = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return sup
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        body = match.group("body").strip()
        # The directive is the first whitespace-delimited word; trailing
        # prose is the human justification and is ignored.
        directive = body.split()[0] if body.split() else ""
        if directive == "locked":
            _marker_for(sup, line).locked = True
            continue
        key, _, value = directive.partition("=")
        if key == "module" and value:
            sup.module_override = value
        elif key == "disable" and value:
            sup.line_disables.setdefault(line, set()).update(_parse_rules(value))
        elif key == "disable-file" and value:
            sup.file_disables.update(_parse_rules(value))
        elif key == "safe" and value:
            _marker_for(sup, line).safe.update(_parse_rules(value))
        elif key == "boundary" and value:
            _marker_for(sup, line).boundary.update(_parse_rules(value))
        # Unknown directives are ignored (forward compatibility).
    return sup


__all__ = ["ScopeMarker", "Suppressions", "marker_for_def", "parse_suppressions"]
