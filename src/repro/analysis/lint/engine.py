"""The ``repro lint`` engine: walk files, run rules, filter suppressions.

The engine turns a list of paths into a :class:`LintResult`:

1. expand directories into ``*.py`` files (sorted, so output order is
   itself deterministic),
2. derive each file's dotted module name from its path (anchored at the
   ``repro`` package directory), honoring ``# repro-lint: module=``
   overrides for test fixtures,
3. parse, run every rule whose :meth:`Rule.applies` accepts the module,
4. drop findings suppressed by pragmas, and
5. tally per-rule statistics.

Unparseable files become ``parse-error`` entries rather than crashes:
a broken file in the tree should fail the lint run, not the linter.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules import ALL_RULES, FileContext, Rule
from repro.analysis.lint.suppressions import parse_suppressions


@dataclass
class LintError:
    """A file the engine could not lint (I/O or syntax error)."""

    path: str
    message: str

    def render(self) -> str:
        return f"{self.path}: error: {self.message}"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files_checked: int = 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand ``paths`` into a sorted stream of ``.py`` file paths."""
    seen: set[str] = set()
    collected: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        collected.append(os.path.join(dirpath, name))
        else:
            collected.append(path)
    for path in sorted(collected):
        norm = os.path.normpath(path)
        if norm not in seen:
            seen.add(norm)
            yield norm


def module_for_path(path: str) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    ``src/repro/sim/kernel.py`` -> ``repro.sim.kernel``; files outside a
    ``repro`` package root map to ``""`` (no rule applies to them unless
    a ``module=`` pragma says otherwise).
    """
    parts = os.path.normpath(path).split(os.sep)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return ""
    return ".".join(parts[anchor:])


def lint_file(
    path: str, rules: Sequence[Rule] = ALL_RULES
) -> tuple[list[Finding], Optional[LintError]]:
    """Lint one file; returns (kept findings, error or None)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return [], LintError(path=path, message=f"cannot read: {exc}")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [], LintError(
            path=path, message=f"syntax error on line {exc.lineno}: {exc.msg}"
        )
    suppressions = parse_suppressions(source)
    module = suppressions.module_override or module_for_path(path)
    ctx = FileContext(path=path, module=module, tree=tree, suppressions=suppressions)
    kept: list[Finding] = []
    for rule in rules:
        if not rule.applies(module):
            continue
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.line, finding.rule):
                kept.append(finding)
    return kept, None


def run_lint(
    paths: Sequence[str], rules: Sequence[Rule] = ALL_RULES
) -> LintResult:
    """Lint every Python file under ``paths``."""
    result = LintResult()
    for path in iter_python_files(paths):
        findings, error = lint_file(path, rules)
        result.files_checked += 1
        result.findings.extend(findings)
        if error is not None:
            result.errors.append(error)
    result.findings.sort()
    return result


__all__ = [
    "LintError",
    "LintResult",
    "iter_python_files",
    "lint_file",
    "module_for_path",
    "run_lint",
]
