"""``repro lint``: AST-based determinism & concurrency linter.

Submodules:

* :mod:`~repro.analysis.lint.rules` — the rule catalog (DET001-003,
  CONC001-002, API001);
* :mod:`~repro.analysis.lint.engine` — file walking and rule dispatch;
* :mod:`~repro.analysis.lint.suppressions` — ``# repro-lint:`` pragmas;
* :mod:`~repro.analysis.lint.baseline` — grandfathering / ratchet;
* :mod:`~repro.analysis.lint.cli` — the command-line front end.
"""

from __future__ import annotations

from repro.analysis.lint.engine import LintError, LintResult, run_lint
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules import ALL_RULES, RULES_BY_ID, Rule

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintError",
    "LintResult",
    "RULES_BY_ID",
    "Rule",
    "run_lint",
]
