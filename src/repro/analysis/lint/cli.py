"""Command-line front end for the determinism/concurrency linter.

Reachable three ways, all the same code path (:func:`add_arguments` is
the single source of truth for the flags, shared with the ``repro
lint`` subcommand)::

    repro lint src/
    python -m repro.analysis src/
    python -m repro.analysis.lint.cli src/

Exit codes: ``0`` clean (or every finding baselined), ``1`` new
findings or unlintable files, ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Optional, Sequence, TextIO

from repro.analysis.lint.baseline import (
    BaselineKey,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.lint.engine import LintResult, run_lint
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules import ALL_RULES
from repro.obs.exporters import write_jsonl
from repro.obs.metrics import MetricsRegistry

#: Epilog shared by the standalone parser and the ``repro lint`` subparser.
EPILOG = (
    "Suppress a finding with `# repro-lint: disable=RULE` plus a "
    "justification; see docs/STATIC_ANALYSIS.md for the rule catalog."
)

DESCRIPTION = (
    "AST-based determinism & concurrency linter for the repro codebase "
    "(rules DET001-003, CONC001-003, API001)."
)


def add_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the lint flags to ``parser`` (standalone or subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline JSON of grandfathered findings; only findings "
             "absent from it fail the run",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0 "
             "(adopting a rule on legacy code)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-rule finding counts (routed through the "
             "repro.obs metrics registry)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="with --stats: also write the counts as a JSON-lines "
             "metrics log readable by `repro inspect`",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the whole-program flow analysis (FLOW001-004: "
             "interprocedural taint, lock-order cycles, locked-scope "
             "coverage, WAL protocol) and merge its findings",
    )
    return parser


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    return add_arguments(argparse.ArgumentParser(
        prog=prog, description=DESCRIPTION, epilog=EPILOG,
    ))


def _list_rules(out: TextIO) -> None:
    for rule in ALL_RULES:
        out.write(f"{rule.id}: {rule.title}\n")
        for line in rule.rationale.split(". "):
            line = line.strip().rstrip(".")
            if line:
                out.write(f"    {line}.\n")
    from repro.analysis.flow.engine import FLOW_RULES
    for flow_rule in FLOW_RULES:
        out.write(f"{flow_rule.rule_id}: {flow_rule.name} (--flow)\n")
        out.write(f"    {flow_rule.description}.\n")


def build_stats_registry(result: LintResult) -> MetricsRegistry:
    """Per-rule finding counts as a :class:`MetricsRegistry`.

    Every rule gets a counter (zero included — a clean run is a data
    point too), so dashboards see a stable metric set across runs.
    """
    registry = MetricsRegistry()
    counts = result.counts_by_rule()
    rule_ids = [rule.id for rule in ALL_RULES]
    # A merged --flow run carries FLOW001-004 counts in the same result.
    from repro.analysis.flow.engine import FLOW_RULES
    rule_ids.extend(rule.rule_id for rule in FLOW_RULES)
    for rule_id in rule_ids:
        registry.counter(
            "lint_findings_total", "Lint findings by rule", rule=rule_id,
        ).inc(counts.get(rule_id, 0))
    registry.gauge(
        "lint_files_checked", "Files examined by the last lint run",
    ).set(result.files_checked)
    registry.counter(
        "lint_errors_total", "Files the linter could not parse",
    ).inc(len(result.errors))
    return registry


def _stats_records(registry: MetricsRegistry, paths: Sequence[str]) -> list[dict]:
    """A minimal metrics-log record stream for ``repro inspect``."""
    return [
        {"type": "meta", "scenario": "lint", "paths": list(paths)},
        {"type": "registry", "metrics": registry.collect()},
    ]


def _render_text(
    out: TextIO,
    result: LintResult,
    new: list[Finding],
    grandfathered: list[Finding],
) -> None:
    for finding in new:
        out.write(finding.render() + "\n")
    for error in result.errors:
        out.write(error.render() + "\n")
    summary = f"{len(new)} finding(s) in {result.files_checked} file(s)"
    if grandfathered:
        summary += f" ({len(grandfathered)} baselined)"
    if result.errors:
        summary += f", {len(result.errors)} file error(s)"
    out.write(summary + "\n")


def _render_json(
    out: TextIO,
    result: LintResult,
    new: list[Finding],
    grandfathered: list[Finding],
) -> None:
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in new],
        "baselined": [f.as_dict() for f in grandfathered],
        "errors": [{"path": e.path, "message": e.message} for e in result.errors],
        "counts_by_rule": result.counts_by_rule(),
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def run(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    out: Optional[TextIO] = None,
) -> int:
    """Execute a parsed lint invocation (shared with ``repro lint``)."""
    out = out if out is not None else sys.stdout

    if args.list_rules:
        _list_rules(out)
        return 0
    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")
    if args.metrics_out is not None and not args.stats:
        parser.error("--metrics-out requires --stats")

    result = run_lint(args.paths)
    if getattr(args, "flow", False):
        # Merge the whole-program pass: flow findings ride through the
        # same baseline partition and stats pipeline as per-function
        # findings (both streams are sorted, so the merge is too).
        from repro.analysis.flow.engine import run_flow
        flow_result = run_flow(args.paths)
        result.findings = sorted([*result.findings, *flow_result.findings])
        result.errors.extend(flow_result.errors)

    if args.write_baseline:
        write_baseline(args.baseline, result.findings)
        out.write(f"wrote {len(result.findings)} finding(s) to {args.baseline}\n")
        return 0

    baseline: Counter[BaselineKey] = Counter()
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"cannot load baseline: {exc}")
    new, grandfathered = partition(result.findings, baseline)

    if args.format == "json":
        _render_json(out, result, new, grandfathered)
    else:
        _render_text(out, result, new, grandfathered)

    if args.stats:
        registry = build_stats_registry(result)
        for metric in registry.collect():
            labels = ",".join(f"{k}={v}" for k, v in metric["labels"].items())
            label_part = f"{{{labels}}}" if labels else ""
            value = metric.get("value", metric.get("count"))
            out.write(f"stat {metric['name']}{label_part} {value}\n")
        if args.metrics_out is not None:
            write_jsonl(args.metrics_out, _stats_records(registry, args.paths))
            out.write(f"stats written to {args.metrics_out}\n")

    return 1 if (new or result.errors) else 0


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    parser = build_parser()
    return run(parser.parse_args(argv), parser, out=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
