"""Baseline files: grandfather existing findings, fail only on new ones.

A baseline is a JSON document recording the *content identity* of known
findings — ``(path, rule, message)``, deliberately without line numbers
so unrelated edits above a grandfathered finding do not break the
match.  Matching is multiset-based: two identical findings in a file
need two baseline entries, and fixing one of them retires one entry.

The intended workflow is a ratchet: write a baseline once when adopting
a rule on legacy code, then only ever shrink it.  ``repro lint``
reports baselined findings as suppressed and exits nonzero only for
findings absent from the baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.lint.findings import Finding

#: Current baseline schema version.
BASELINE_VERSION = 1

BaselineKey = tuple[str, str, str]


def load_baseline(path: str) -> Counter[BaselineKey]:
    """Read a baseline file into a multiset of finding keys."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a repro-lint baseline "
            f"(expected version {BASELINE_VERSION})"
        )
    keys: Counter[BaselineKey] = Counter()
    for entry in data.get("findings", []):
        keys[(entry["path"], entry["rule"], entry["message"])] += 1
    return keys


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as a fresh baseline (sorted, stable output).

    The sort key is explicit — (path, rule, message, line, col), i.e.
    the serialized identity first — so the emitted bytes are a pure
    function of the finding *set*: shuffling the input order (different
    filesystem walk orders, merged finding streams) cannot reorder the
    file and churn its diff.
    """
    entries = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in sorted(
            findings, key=lambda f: (f.path, f.rule, f.message, f.line, f.col)
        )
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def partition(
    findings: Sequence[Finding], baseline: Counter[BaselineKey]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, grandfathered) against ``baseline``.

    Each baseline entry absorbs at most one matching finding; any
    surplus findings with the same key are new.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.key()
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


__all__ = [
    "BASELINE_VERSION",
    "BaselineKey",
    "load_baseline",
    "partition",
    "write_baseline",
]
