"""The determinism & concurrency rule catalog of ``repro lint``.

Each rule is an AST check scoped to the packages where its invariant
actually holds (see :data:`ALL_RULES` and docs/STATIC_ANALYSIS.md for
the full catalog with rationale):

* **DET001** — no wall clock / ambient entropy in deterministic code.
* **DET002** — no iteration over unordered collections in deterministic
  code.
* **DET003** — no ``==``/``!=`` between float expressions in
  scheduling/sim code.
* **CONC001** — engine/WAL attributes only mutated under the lock in
  the service layer.
* **CONC002** — WAL append must precede the engine mutation it logs.
* **CONC003** — windowed-metric ring buffers only mutated under the
  metric lock.
* **API001** — public protocol/policy-base functions must be fully
  type-annotated.

Rules are heuristic by design: they pattern-match the idioms this
codebase uses rather than solving aliasing in general.  False
positives are handled with ``# repro-lint:`` pragmas
(:mod:`repro.analysis.lint.suppressions`), each of which should carry
a justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.suppressions import Suppressions, marker_for_def

#: Packages whose output must be a pure function of (config, seed).
DETERMINISTIC_PACKAGES = (
    "repro.sim",
    "repro.scheduling",
    "repro.metrics",
    "repro.economy",
)

#: Modules allowed to construct randomness: the one place entropy is
#: turned into named, seeded streams.
ENTROPY_SOURCE_MODULES = ("repro.sim.rng",)

#: Packages where float ``==``/``!=`` is a determinism hazard.
FLOAT_EQ_PACKAGES = ("repro.sim", "repro.scheduling")

#: The threaded service layer (CONC rules).
SERVICE_PACKAGE = "repro.service"

#: Service modules that *implement* the engine/WAL themselves; their
#: self-mutations are single-threaded by contract (callers lock).
CONC001_EXEMPT_MODULES = ("repro.service.engine",)

#: Modules (or whole packages) whose public functions must be fully
#: annotated (API001); matched by prefix like the package scopes above.
FULLY_ANNOTATED_MODULES = (
    "repro.service.protocol",
    "repro.service.sharding",
    "repro.scheduling.base",
)

#: Shared-metric modules whose instance state is mutated from HTTP
#: handler threads and the engine thread at once (CONC003).
CONC003_MODULES = ("repro.obs.metrics", "repro.obs.windows")

#: Attribute names that read as "this is a lock" in a ``with`` item.
_LOCKISH = ("lock", "mutex")

#: Engine methods that mutate engine state and therefore must be
#: preceded by the WAL append that logs them (CONC002).  ``poll`` is
#: deliberately absent: it chases the wall clock, which replay
#: reproduces from each record's logged ``t`` instead.
_ENGINE_MUTATORS = frozenset({"submit", "advance", "drain"})

#: Identifier vocabulary DET003 treats as float-valued.  A curated,
#: domain-specific list beats type inference here: these are the names
#: simulated seconds, shares and σ statistics travel under.
FLOAT_VOCABULARY = frozenset({
    "absolute_deadline", "busy_time", "deadline", "delay", "elapsed",
    "estimated_runtime", "finish_time", "horizon", "inf", "load",
    "max_delay", "mu", "now", "rate", "rating", "remaining",
    "remaining_deadline", "remaining_est_work", "remaining_work",
    "runtime", "share", "sigma", "slack", "start_time", "submit_time",
    "t", "time", "work",
})


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    #: Path as the engine will report it in findings.
    path: str
    #: Dotted module name (``""`` when the file is outside the package).
    module: str
    tree: ast.Module
    suppressions: Suppressions


class Rule:
    """Base class: one identifier, one invariant, one AST check."""

    id: str = "RULE000"
    title: str = ""
    rationale: str = ""

    def applies(self, module: str) -> bool:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


def _in_packages(module: str, packages: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in packages)


def _attr_chain(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


# -- DET001: wall clock / ambient entropy -------------------------------------

#: Modules whose import into deterministic code is itself the smell.
_ENTROPY_MODULES = frozenset({"time", "random", "secrets"})

#: ``time.<attr>`` calls that read the wall clock.
_WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime",
})

#: ``datetime``-family constructors of "now".
_DATETIME_NOW_ATTRS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    id = "DET001"
    title = "no wall clock or ambient entropy in deterministic code"
    rationale = (
        "repro.sim/scheduling/metrics/economy must be pure functions of "
        "(config, seed): replay==batch and cached==uncached parity both "
        "rest on it. Simulated time comes from the kernel clock; "
        "randomness comes from the named repro.sim.rng streams."
    )

    def applies(self, module: str) -> bool:
        return (
            _in_packages(module, DETERMINISTIC_PACKAGES)
            and module not in ENTROPY_SOURCE_MODULES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _ENTROPY_MODULES:
                        yield self.finding(
                            ctx, node,
                            f"import of {alias.name!r} in deterministic code; "
                            f"use the injected simulation clock or "
                            f"repro.sim.rng streams",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _ENTROPY_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"import from {node.module!r} in deterministic code; "
                        f"use the injected simulation clock or "
                        f"repro.sim.rng streams",
                    )
                elif root == "os":
                    for alias in node.names:
                        if alias.name == "urandom":
                            yield self.finding(
                                ctx, node,
                                "import of os.urandom in deterministic code; "
                                "use repro.sim.rng streams",
                            )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        chain = _attr_chain(node.func)
        if not chain:
            return
        root, leaf = chain[0], chain[-1]
        if root == "time" and leaf in _WALL_CLOCK_ATTRS:
            yield self.finding(
                ctx, node,
                f"wall-clock call {'.'.join(chain)}(); deterministic code "
                f"must take simulated time as an argument",
            )
        elif leaf in _DATETIME_NOW_ATTRS and "datetime" in chain[:-1]:
            yield self.finding(
                ctx, node,
                f"wall-clock call {'.'.join(chain)}(); deterministic code "
                f"must take simulated time as an argument",
            )
        elif leaf == "urandom" and root == "os":
            yield self.finding(
                ctx, node,
                "os.urandom() is ambient entropy; use repro.sim.rng streams",
            )
        elif root == "random" and len(chain) > 1:
            yield self.finding(
                ctx, node,
                f"bare {'.'.join(chain)}() draws from the global, unseeded "
                f"stream; use repro.sim.rng streams",
            )
        elif root in ("np", "numpy") and len(chain) > 2 and chain[1] == "random":
            yield self.finding(
                ctx, node,
                f"{'.'.join(chain)}() bypasses the named stream discipline; "
                f"use repro.sim.rng streams",
            )


# -- DET002: iteration over unordered collections -----------------------------

class UnorderedIterationRule(Rule):
    id = "DET002"
    title = "no iteration over unordered collections in deterministic code"
    rationale = (
        "set iteration order depends on insertion history and (for str "
        "keys) the per-process hash seed, so a loop over a set can emit "
        "events or decisions in a run-dependent order. Iterate "
        "sorted(...) instead. dict.keys() is insertion-ordered but "
        "flagged too: iterate the dict itself, or sorted(d) when the "
        "insertion order is itself run-dependent."
    )

    def applies(self, module: str) -> bool:
        return _in_packages(
            module, DETERMINISTIC_PACKAGES + (SERVICE_PACKAGE,)
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_scope(ctx, ctx.tree, parent_setish=[])

    def _check_scope(
        self,
        ctx: FileContext,
        scope: ast.AST,
        parent_setish: list[dict[str, bool]],
    ) -> Iterator[Finding]:
        """Check one scope (module or function) and recurse into nested ones.

        ``parent_setish`` is the chain of enclosing scopes' binding maps:
        name -> True when *every* binding of that name in the scope is a
        set-valued expression (a rebind through ``sorted(...)`` or any
        other non-set value clears it, so the common fix pattern is not
        re-flagged).
        """
        setish = self._collect_setish(scope)
        scopes = [*parent_setish, setish]
        for node in self._scope_walk(scope):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                reason = self._unordered_reason(it, scopes)
                if reason is not None:
                    yield self.finding(
                        ctx, it,
                        f"iteration over {reason}; wrap the iterable in "
                        f"sorted(...) to pin a deterministic order",
                    )
        for node in self._scope_walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node, scopes)

    @staticmethod
    def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """``ast.walk`` bounded at nested function scopes."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop(0)
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))

    def _collect_setish(self, scope: ast.AST) -> dict[str, bool]:
        """Names of this scope whose every binding is set-valued."""
        setish: dict[str, bool] = {}

        def bind(name: str, is_set: bool) -> None:
            setish[name] = is_set and setish.get(name, True)

        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                bind(arg.arg, False)  # param values are opaque
        for node in self._scope_walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bind(target.id, self._is_set_expr(node.value))
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    bind(node.target.id, self._is_set_expr(node.value))
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    # `s |= {...}` keeps a set a set; any other augment
                    # poisons (we no longer know the shape).
                    bind(node.target.id, isinstance(node.op, (
                        ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor
                    )))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        bind(target.id, False)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    for target in ast.walk(node.optional_vars):
                        if isinstance(target, ast.Name):
                            bind(target.id, False)
        return setish

    def _is_set_expr(self, node: ast.expr) -> bool:
        """True for expressions that statically evaluate to a set."""
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _unordered_reason(
        self,
        node: ast.expr,
        scopes: Optional[list[dict[str, bool]]] = None,
    ) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Name) and scopes:
            # Innermost binding wins, mirroring Python scoping.
            for scope_map in reversed(scopes):
                if node.id in scope_map:
                    if scope_map[node.id]:
                        return (
                            f"'{node.id}', a name bound to a "
                            f"set/frozenset value"
                        )
                    return None
            return None
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                if node.func.id in ("set", "frozenset"):
                    return f"{node.func.id}(...)"
                return None  # sorted(...), list(...), etc. are fine
            if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
                return ".keys() (iterate the mapping itself, or sorted(...))"
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._unordered_reason(node.left)
            right = self._unordered_reason(node.right)
            if left is not None or right is not None:
                return "set algebra"
        return None


# -- DET003: float equality ----------------------------------------------------

class FloatEqualityRule(Rule):
    id = "DET003"
    title = "no ==/!= between float expressions in scheduling/sim code"
    rationale = (
        "float equality silently encodes an exactness assumption; when "
        "it is wrong the schedule diverges between runs or platforms. "
        "Use the repro.sim.numerics helpers — exact_eq/exact_zero for "
        "deliberate bitwise comparisons, approx_eq for tolerances, "
        "math.isinf/math.isfinite for sentinel checks — or integers for "
        "exact time."
    )

    def applies(self, module: str) -> bool:
        return (
            _in_packages(module, FLOAT_EQ_PACKAGES)
            and module != "repro.sim.numerics"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            hint = next(
                (h for h in map(self._float_hint, operands) if h is not None),
                None,
            )
            if hint is not None:
                yield self.finding(
                    ctx, node,
                    f"float equality comparison ({hint}); use the "
                    f"repro.sim.numerics helpers (exact_eq/exact_zero/"
                    f"approx_eq) or math.isinf/isfinite instead",
                )

    def _float_hint(self, node: ast.expr) -> Optional[str]:
        """A short description when ``node`` looks float-valued."""
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"literal {node.value!r}"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "float":
                return "float(...) call"
            return None
        if isinstance(node, ast.UnaryOp):
            return self._float_hint(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return "true-division result"
            left = self._float_hint(node.left)
            if left is not None:
                return left
            return self._float_hint(node.right)
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            bare = name.lower().lstrip("_")
            if bare in FLOAT_VOCABULARY:
                return f"operand {name!r}"
        return None


# -- CONC001: engine/WAL mutation must hold the lock ---------------------------

@dataclass
class _Scope:
    """One enclosing function/with context while walking CONC001."""

    locked: bool = False
    safe_rules: set[str] = field(default_factory=set)


class LockedMutationRule(Rule):
    id = "CONC001"
    title = "engine/WAL attributes only mutated under the lock"
    rationale = (
        "HTTP handler threads share one AdmissionEngine and one "
        "WriteAheadLog behind AdmissionService._engine_lock; an attribute "
        "write outside a `with ...lock:` block (or a function marked "
        "`# repro-lint: locked` whose caller holds it, or `# repro-lint: "
        "safe=CONC001` for pre-publication construction) is a data race."
    )

    def applies(self, module: str) -> bool:
        return (
            _in_packages(module, (SERVICE_PACKAGE,))
            and module not in CONC001_EXEMPT_MODULES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree, locked=False, safe=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, locked: bool, safe: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_locked, child_safe = locked, safe
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def does not inherit the enclosing lock: it
                # may escape (thread target, callback) and run later.
                child_locked = False
                child_safe = False
                marker = marker_for_def(ctx.suppressions, child)
                if marker is not None:
                    child_locked = marker.locked
                    child_safe = self.id in marker.safe
            elif isinstance(child, ast.With):
                if any(self._is_lockish(item.context_expr) for item in child.items):
                    child_locked = True
            elif isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if not (child_locked or child_safe):
                    yield from self._check_assignment(ctx, child)
            yield from self._walk(ctx, child, child_locked, child_safe)

    def _check_assignment(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in self._flatten(targets):
            chain = _attr_chain(target)
            if chain is None or len(chain) < 2:
                continue
            # An intermediate `engine`/`wal` segment means the target is
            # an attribute *of* the shared object (self.engine.x, wal.y);
            # rebinding the reference itself (self.engine = ...) is
            # construction, not shared-state mutation.
            if any(seg in ("engine", "wal") for seg in chain[:-1]):
                yield self.finding(
                    ctx, node,
                    f"mutation of {'.'.join(chain)} outside a lock-held "
                    f"scope; wrap in `with self._engine_lock:` or mark the "
                    f"function `# repro-lint: locked`/`safe=CONC001` with "
                    f"a justification",
                )

    def _flatten(self, targets: list[ast.expr]) -> Iterator[ast.expr]:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from self._flatten(list(target.elts))
            else:
                yield target

    def _is_lockish(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call):
            # `lock.acquire()` style context managers, `self._lock.__enter__()`
            return self._is_lockish(expr.func)
        name: Optional[str] = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        if name is None:
            return False
        lowered = name.lower()
        return any(word in lowered for word in _LOCKISH)


# -- CONC002: WAL append-before-apply -----------------------------------------

class WalOrderingRule(Rule):
    id = "CONC002"
    title = "WAL append must precede the engine mutation it logs"
    rationale = (
        "The crash-safety contract is append-before-apply: a decision "
        "may only be acked once its record is durable. In any handler "
        "that both appends to the WAL and mutates the engine, an engine "
        "submit/advance/drain reachable before the first append is a "
        "window where a crash loses an applied mutation."
    )

    def applies(self, module: str) -> bool:
        return _in_packages(module, (SERVICE_PACKAGE,))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        appends: list[int] = []
        mutators: list[tuple[int, ast.AST, str]] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                continue  # nested defs are checked on their own
            chain = None
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
            if chain is None:
                continue
            leaf = chain[-1]
            if leaf == "_wal_append" or (
                leaf == "append" and "wal" in [seg.lower() for seg in chain[:-1]]
            ):
                appends.append(node.lineno)
            elif leaf in _ENGINE_MUTATORS and any(
                seg == "engine" for seg in chain[:-1]
            ):
                mutators.append((node.lineno, node, ".".join(chain)))
        if not appends:
            return  # function does not log; CONC002 has nothing to say
        first_append = min(appends)
        for lineno, node, dotted in mutators:
            if lineno < first_append:
                yield self.finding(
                    ctx, node,
                    f"{dotted} is reachable at line {lineno} before the "
                    f"first WAL append at line {first_append}; a crash "
                    f"between them loses an applied mutation "
                    f"(append-before-apply)",
                )


# -- CONC003: metric ring buffers only mutated under the metric lock -----------

#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "popleft", "pop", "clear", "extend",
    "extendleft", "update", "setdefault", "insert", "remove", "rotate",
})


class MetricLockRule(Rule):
    id = "CONC003"
    title = "windowed-metric ring buffers only mutated under the metric lock"
    rationale = (
        "The sliding-window counters and ring-buffer histograms in "
        "repro.obs are written by the engine thread on every decision "
        "and read by HTTP scrape/stats threads; a bucket write or deque "
        "append outside `with self._lock:` tears the window (lost "
        "counts, quantiles over a half-rotated ring). __init__ is "
        "exempt: construction happens before the object is published."
    )

    def applies(self, module: str) -> bool:
        return module in CONC003_MODULES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree, locked=False, safe=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, locked: bool, safe: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_locked, child_safe = locked, safe
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Same non-inheritance as CONC001: a nested def may
                # escape the lock-held scope and run on another thread.
                child_locked = False
                child_safe = child.name == "__init__"
                marker = marker_for_def(ctx.suppressions, child)
                if marker is not None:
                    child_locked = marker.locked
                    child_safe = child_safe or self.id in marker.safe
            elif isinstance(child, ast.With):
                if any(self._is_lockish(item.context_expr) for item in child.items):
                    child_locked = True
            elif isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if not (child_locked or child_safe):
                    yield from self._check_assignment(ctx, child)
            elif isinstance(child, ast.Call):
                if not (child_locked or child_safe):
                    yield from self._check_call(ctx, child)
            yield from self._walk(ctx, child, child_locked, child_safe)

    def _check_assignment(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            chain = self._receiver_chain(target)
            if chain is None or len(chain) < 2 or chain[0] != "self":
                continue
            yield self.finding(
                ctx, node,
                f"mutation of {'.'.join(chain)} outside the metric lock; "
                f"wrap in `with self._lock:` or mark the function "
                f"`# repro-lint: locked`/`safe=CONC003` with a "
                f"justification",
            )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in _MUTATING_METHODS:
            return
        chain = self._receiver_chain(node.func.value)
        if chain is None or not chain or chain[0] != "self":
            return
        yield self.finding(
            ctx, node,
            f"in-place mutation {'.'.join(chain)}.{node.func.attr}(...) "
            f"outside the metric lock; wrap in `with self._lock:` or "
            f"mark the function `# repro-lint: locked`/`safe=CONC003` "
            f"with a justification",
        )

    def _receiver_chain(self, node: ast.expr) -> Optional[list[str]]:
        """Like :func:`_attr_chain` but sees through subscripts.

        ``self._buckets[i] += n`` mutates the ring through a Subscript
        target; the receiver that needs the lock is ``self._buckets``.
        """
        while isinstance(node, ast.Subscript):
            node = node.value
        return _attr_chain(node)

    def _is_lockish(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call):
            return self._is_lockish(expr.func)
        name: Optional[str] = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        if name is None:
            return False
        lowered = name.lower()
        return any(word in lowered for word in _LOCKISH)


# -- API001: full annotations on public API -----------------------------------

class PublicAnnotationRule(Rule):
    id = "API001"
    title = "public protocol/policy-base functions fully type-annotated"
    rationale = (
        "repro.service.protocol, repro.service.sharding and "
        "repro.scheduling.base are the contracts everything else plugs "
        "into; complete annotations keep mypy strict mode meaningful "
        "there and make wire-schema drift a type error instead of a "
        "runtime surprise."
    )

    def applies(self, module: str) -> bool:
        return _in_packages(module, FULLY_ANNOTATED_MODULES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_body(ctx, ctx.tree.body, in_class=False)

    def _check_body(
        self, ctx: FileContext, body: list[ast.stmt], in_class: bool
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield from self._check_body(ctx, node.body, in_class=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                yield from self._check_signature(ctx, node, in_class)

    def _check_signature(
        self, ctx: FileContext, func: ast.FunctionDef, in_class: bool
    ) -> Iterator[Finding]:
        args = func.args
        positional = [*args.posonlyargs, *args.args]
        if in_class and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            a.arg
            for a in [*positional, *args.kwonlyargs, args.vararg, args.kwarg]
            if a is not None and a.annotation is None
        ]
        if missing:
            yield self.finding(
                ctx, func,
                f"public function {func.name!r} has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if func.returns is None:
            yield self.finding(
                ctx, func,
                f"public function {func.name!r} has no return annotation",
            )


#: Every rule, in catalog order.
ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    UnorderedIterationRule(),
    FloatEqualityRule(),
    LockedMutationRule(),
    WalOrderingRule(),
    MetricLockRule(),
    PublicAnnotationRule(),
)

#: id -> rule instance.
RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "CONC001_EXEMPT_MODULES",
    "CONC003_MODULES",
    "DETERMINISTIC_PACKAGES",
    "ENTROPY_SOURCE_MODULES",
    "FLOAT_EQ_PACKAGES",
    "FLOAT_VOCABULARY",
    "FULLY_ANNOTATED_MODULES",
    "FileContext",
    "FloatEqualityRule",
    "LockedMutationRule",
    "MetricLockRule",
    "PublicAnnotationRule",
    "RULES_BY_ID",
    "Rule",
    "SERVICE_PACKAGE",
    "UnorderedIterationRule",
    "WalOrderingRule",
    "WallClockRule",
]
