"""A deterministic module/call-graph builder over ``src/repro``.

The graph is intentionally *lightweight*: it resolves the call idioms
this codebase actually uses (module functions, imported names, ``self``
methods, annotated parameters/attributes, local constructor calls) and
falls back to by-name candidate matching only for receivers it cannot
type — capped and filtered so generic container methods never alias
into domain calls.  Everything is walked and emitted in sorted order,
so two builds of the same tree are identical object-for-object; the
flow rules layered on top inherit byte-identical output from that.

The builder reuses the lint engine's file walker, module naming and
pragma parser, so ``# repro-lint: module=`` fixtures and ``locked`` /
``safe=`` / ``boundary=`` markers mean the same thing in both passes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from repro.analysis.lint.engine import iter_python_files, module_for_path
from repro.analysis.lint.suppressions import (
    Suppressions,
    marker_for_def,
    parse_suppressions,
)

FunctionDefNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Attribute names that read as "this is a lock" in a ``with`` item
#: (mirrors the lint rules' heuristic).
_LOCKISH = ("lock", "mutex")

#: Method names too generic for by-name fallback resolution: a call to
#: ``x.append(...)`` on an untyped receiver must never alias into
#: ``WriteAheadLog.append``.
_GENERIC_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "close", "copy", "count",
    "decode", "discard", "encode", "extend", "extendleft", "flush",
    "format", "get", "index", "insert", "items", "join", "keys", "open",
    "pop", "popleft", "put", "read", "readline", "remove", "rotate",
    "send", "set", "setdefault", "sort", "split", "start", "strip",
    "update", "values", "wait", "write",
})

#: By-name fallback gives up beyond this many candidates — an attribute
#: shared by more classes than this is a generic verb, not a call edge.
_FALLBACK_CAP = 8


@dataclass(frozen=True)
class SourceSite:
    """One direct nondeterminism source inside a function body."""

    line: int
    col: int
    #: Source family: ``wall-clock``, ``entropy``, ``env-read``,
    #: ``unordered-iteration`` or ``thread-timing``.
    kind: str
    #: Rendered expression, e.g. ``time.monotonic()``.
    detail: str


@dataclass(frozen=True)
class LockSite:
    """One lexical lock acquisition (``with <lockish>:``)."""

    line: int
    col: int
    #: Normalized lock identity, e.g.
    #: ``repro.service.server.AdmissionService._engine_lock``.
    lock: str
    #: Locks already held lexically when this one is acquired (lock-order
    #: edges: each held lock precedes this one).
    held: tuple[str, ...] = ()


@dataclass(frozen=True)
class CallSite:
    """One call expression with its resolution and lock context."""

    line: int
    col: int
    #: Rendered call target, e.g. ``self.wal.append``.
    raw: str
    #: Resolved callee qualnames (empty when unresolvable).
    callees: tuple[str, ...]
    #: Normalized ids of locks held lexically at this site.
    locks_held: tuple[str, ...]


@dataclass(frozen=True)
class MutationSite:
    """One engine/WAL shared-state attribute write."""

    line: int
    col: int
    #: Rendered assignment target, e.g. ``self.engine.wal_lsn``.
    target: str
    #: True when a lock is held lexically at the write.
    locked: bool


@dataclass
class FunctionInfo:
    """One function/method of the analyzed program."""

    qualname: str
    module: str
    cls: Optional[str]
    name: str
    path: str
    lineno: int
    calls: list[CallSite] = field(default_factory=list)
    acquires: list[LockSite] = field(default_factory=list)
    sources: list[SourceSite] = field(default_factory=list)
    mutations: list[MutationSite] = field(default_factory=list)
    #: ``# repro-lint: locked`` — body relies on the caller's lock.
    locked_marker: bool = False
    #: Rules from ``# repro-lint: safe=...``.
    safe_rules: frozenset[str] = frozenset()
    #: Rules from ``# repro-lint: boundary=...``.
    boundary_rules: frozenset[str] = frozenset()

    def display(self) -> str:
        """Short human form used in finding chains."""
        return self.qualname


@dataclass
class ClassInfo:
    """One class definition: methods, bases and inferred attr types."""

    name: str
    qualname: str
    module: str
    #: Raw (dotted) base-class spellings, in definition order.
    bases: list[str] = field(default_factory=list)
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute name -> dotted class spelling inferred from
    #: ``__init__``/class-level annotations.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its import environment."""

    name: str
    path: str
    tree: ast.Module
    suppressions: Suppressions
    #: ``import x.y as z`` -> {"z": "x.y"} (and {"x": "x"} for plain).
    imports: dict[str, str] = field(default_factory=dict)
    #: ``from m import a as b`` -> {"b": ("m", "a")}.
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level function name -> qualname.
    functions: dict[str, str] = field(default_factory=dict)
    #: names bound by module-level assignments (`_lock = Lock()`).
    global_names: set[str] = field(default_factory=set)


@dataclass
class CallGraphError:
    """A file the builder could not parse."""

    path: str
    message: str


class CallGraph:
    """The whole-program index the flow rules run over."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.errors: list[CallGraphError] = []
        self.files_checked: int = 0
        #: method/function simple name -> sorted list of qualnames.
        self._by_name: dict[str, list[str]] = {}
        #: qualname -> sorted tuple of resolved callee qualnames.
        self._edges: dict[str, tuple[str, ...]] = {}
        #: qualname -> sorted tuple of caller qualnames.
        self._redges: dict[str, tuple[str, ...]] = {}

    # -- queries -----------------------------------------------------------
    def callees(self, qualname: str) -> tuple[str, ...]:
        return self._edges.get(qualname, ())

    def callers(self, qualname: str) -> tuple[str, ...]:
        return self._redges.get(qualname, ())

    def functions_by_name(self, name: str) -> list[str]:
        return list(self._by_name.get(name, []))

    def sorted_functions(self) -> list[FunctionInfo]:
        return [self.functions[q] for q in sorted(self.functions)]

    def edge_count(self) -> int:
        return sum(len(v) for v in self._edges.values())

    def class_for(self, dotted: str, module: ModuleInfo) -> Optional[ClassInfo]:
        """Resolve a dotted class spelling inside ``module``."""
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if not rest:
            if head in module.classes:
                return module.classes[head]
            target = module.from_imports.get(head)
            if target is not None:
                mod = self.modules.get(target[0])
                if mod is not None:
                    return mod.classes.get(target[1])
            return None
        # module-qualified: resolve the module prefix, then the class.
        prefix = module.imports.get(head)
        if prefix is None and head in ("repro",):
            prefix = head
        if prefix is not None:
            mod_name = ".".join([prefix, *rest[:-1]])
            mod = self.modules.get(mod_name)
            if mod is not None:
                return mod.classes.get(rest[-1])
        return None

    def method_of(self, cls: ClassInfo, name: str) -> Optional[str]:
        """Look ``name`` up in ``cls`` and (recursively) its bases."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                resolved = self.class_for(base, module)
                if resolved is not None:
                    stack.append(resolved)
        return None


def _attr_chain(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """The dotted class spelling named by an annotation, if any.

    Sees through ``Optional[T]``, ``T | None``, string annotations and
    quoted forward references; gives up on generics with several type
    arguments (a container, not a receiver type).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        try:
            parsed = ast.parse(text, mode="eval")
        except SyntaxError:
            return None
        return _annotation_class(parsed.body)
    if isinstance(node, ast.Name):
        return None if node.id in ("None", "Any") else node.id
    if isinstance(node, ast.Attribute):
        chain = _attr_chain(node)
        return ".".join(chain) if chain else None
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        if head_name == "Optional":
            return _annotation_class(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_class(node.left)
        right = _annotation_class(node.right)
        if left is not None and right is None:
            return left
        if right is not None and left is None:
            return right
        return None
    return None


def _is_lockish_name(name: str) -> bool:
    lowered = name.lower()
    return any(word in lowered for word in _LOCKISH)


def _render_chain(chain: Sequence[str]) -> str:
    return ".".join(chain)


# -- nondeterminism source detection ------------------------------------------

_WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime",
})
_DATETIME_NOW_ATTRS = frozenset({"now", "utcnow", "today"})
_THREAD_TIMING_RECEIVERS = ("thread", "worker", "proc")


class _FunctionWalker:
    """Single pass over one function body collecting all flow facts."""

    def __init__(
        self,
        graph: "_Builder",
        module: ModuleInfo,
        cls: Optional[ClassInfo],
        info: FunctionInfo,
        node: FunctionDefNode,
    ) -> None:
        self.graph = graph
        self.module = module
        self.cls = cls
        self.info = info
        self.node = node
        #: Local name -> dotted class spelling (annotated params,
        #: constructor assignments).
        self.env: dict[str, str] = {}
        #: Local name -> bound to a set-valued expression (every binding
        #: seen so far set-ish / any binding non-set-ish poisons it).
        self._seed_env(node)

    def _seed_env(self, node: FunctionDefNode) -> None:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            cls_name = _annotation_class(arg.annotation)
            if cls_name is not None:
                self.env[arg.arg] = cls_name

    # -- main walk ---------------------------------------------------------
    def walk(self) -> None:
        self._walk_body(self.node, locks=())

    def _walk_body(self, node: ast.AST, locks: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are their own graph nodes
            if isinstance(child, ast.ClassDef):
                continue  # nested classes handled at registration time
            child_locks = locks
            if isinstance(child, ast.With):
                for item in child.items:
                    lock = self._lock_id(item.context_expr)
                    if lock is not None:
                        self.info.acquires.append(LockSite(
                            line=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                            lock=lock,
                            held=child_locks,
                        ))
                        child_locks = (*child_locks, lock)
            elif isinstance(child, ast.Assign):
                self._note_assignment(child, locks)
            elif isinstance(child, ast.AnnAssign):
                self._note_ann_assignment(child, locks)
            elif isinstance(child, ast.AugAssign):
                self._note_mutation_target(child.target, child, locks)
            elif isinstance(child, ast.Call):
                self._note_call(child, locks)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                self._note_iteration(child.iter)
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp,
                                    ast.GeneratorExp)):
                for gen in child.generators:
                    self._note_iteration(gen.iter)
            self._walk_body(child, child_locks)

    # -- locks -------------------------------------------------------------
    def _lock_id(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Call):
            return self._lock_id(expr.func)
        rendered: list[str] = []
        node: ast.expr = expr
        while True:
            if isinstance(node, ast.Subscript):
                rendered.append("[]")
                node = node.value
            elif isinstance(node, ast.Attribute):
                rendered.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Name):
                rendered.append(node.id)
                break
            else:
                return None
        rendered.reverse()
        leaf = next((p for p in reversed(rendered) if p != "[]"), "")
        if not _is_lockish_name(leaf):
            return None
        if rendered[0] == "self":
            owner = self.cls.qualname if self.cls is not None else self.info.qualname
            return owner + "." + ".".join(rendered[1:])
        if len(rendered) == 1:
            if rendered[0] in self.module.global_names:
                # A module-level lock object: shared across every
                # function in the module, so scope it to the module.
                return self.module.name + "." + rendered[0]
            # A bare local lock: scoped to this function (aliasing a
            # shared lock through a local is invisible to the builder).
            return self.info.qualname + ".<local>." + rendered[0]
        return self.module.name + "." + ".".join(rendered)

    # -- assignments / mutations -------------------------------------------
    def _note_assignment(self, node: ast.Assign, locks: tuple[str, ...]) -> None:
        value_cls = self._value_class(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name) and value_cls is not None:
                self.env[target.id] = value_cls
            self._note_mutation_target(target, node, locks)
        # The value expression is visited by the generic recursion; any
        # call inside it is noted there.

    def _note_ann_assignment(self, node: ast.AnnAssign, locks: tuple[str, ...]) -> None:
        if isinstance(node.target, ast.Name):
            cls_name = _annotation_class(node.annotation)
            if cls_name is not None:
                self.env[node.target.id] = cls_name
        self._note_mutation_target(node.target, node, locks)

    def _note_mutation_target(
        self, target: ast.expr, node: ast.AST, locks: tuple[str, ...]
    ) -> None:
        while isinstance(target, ast.Subscript):
            target = target.value
        chain = _attr_chain(target)
        if chain is None or len(chain) < 2:
            return
        # Same shape CONC001 checks per-function: a write whose target
        # path passes *through* an engine/wal segment is shared-state
        # mutation; rebinding the reference itself is construction.
        if any(seg in ("engine", "wal") for seg in chain[:-1]):
            self.info.mutations.append(MutationSite(
                line=getattr(node, "lineno", target.lineno),
                col=getattr(node, "col_offset", target.col_offset),
                target=_render_chain(chain),
                locked=bool(locks),
            ))

    def _value_class(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if chain is not None:
                dotted = _render_chain(chain)
                if self.graph.graph.class_for(dotted, self.module) is not None:
                    return dotted
            return None
        if isinstance(value, ast.Name):
            return self.env.get(value.id)
        if isinstance(value, ast.Attribute):
            chain = _attr_chain(value)
            if chain is not None and chain[0] == "self" and len(chain) == 2:
                if self.cls is not None:
                    return self.cls.attr_types.get(chain[1])
        return None

    # -- calls -------------------------------------------------------------
    def _note_call(self, node: ast.Call, locks: tuple[str, ...]) -> None:
        chain = _attr_chain(node.func)
        raw = _render_chain(chain) if chain else "<dynamic>"
        self._note_source_call(node, chain)
        callees = self.graph.resolve_call(self, node)
        if callees or chain:
            self.info.calls.append(CallSite(
                line=node.lineno,
                col=node.col_offset,
                raw=raw,
                callees=tuple(sorted(set(callees))),
                locks_held=locks,
            ))

    # -- nondeterminism sources --------------------------------------------
    def _note_source_call(
        self, node: ast.Call, chain: Optional[list[str]]
    ) -> None:
        if chain is None:
            return
        root, leaf = chain[0], chain[-1]
        dotted = _render_chain(chain)
        # `from time import monotonic` style: the bare name still reads
        # the wall clock; resolve through the module's import table.
        origin = self.module.from_imports.get(root)
        if origin is not None and len(chain) == 1:
            root_module, attr = origin
            if root_module == "time" and attr in _WALL_CLOCK_ATTRS:
                self._source(node, "wall-clock", f"time.{attr}()")
                return
            if root_module == "os" and attr == "urandom":
                self._source(node, "entropy", "os.urandom()")
                return
            if root_module == "os" and attr == "getenv":
                self._source(node, "env-read", "os.getenv()")
                return
        alias_target = self.module.imports.get(root)
        effective_root = alias_target if alias_target is not None else root
        if effective_root == "time" and len(chain) > 1 and leaf in _WALL_CLOCK_ATTRS:
            self._source(node, "wall-clock", dotted + "()")
        elif effective_root == "time" and leaf == "sleep":
            self._source(node, "thread-timing", dotted + "()")
        elif leaf in _DATETIME_NOW_ATTRS and "datetime" in chain[:-1]:
            self._source(node, "wall-clock", dotted + "()")
        elif effective_root == "os" and leaf == "urandom":
            self._source(node, "entropy", dotted + "()")
        elif effective_root == "os" and leaf == "getenv":
            self._source(node, "env-read", dotted + "()")
        elif effective_root == "os" and len(chain) > 2 and chain[1] == "environ":
            self._source(node, "env-read", dotted + "()")
        elif effective_root in ("random", "secrets") and len(chain) > 1:
            self._source(node, "entropy", dotted + "()")
        elif (
            effective_root in ("np", "numpy")
            and len(chain) > 2
            and chain[1] == "random"
        ):
            self._source(node, "entropy", dotted + "()")
        elif leaf == "wait" and len(chain) > 1:
            self._source(node, "thread-timing", dotted + "()")
        elif leaf == "join" and len(chain) > 1 and any(
            hint in seg.lower()
            for seg in chain[:-1]
            for hint in _THREAD_TIMING_RECEIVERS
        ):
            self._source(node, "thread-timing", dotted + "()")

    def _note_iteration(self, it: ast.expr) -> None:
        reason = self._unordered_reason(it)
        if reason is not None:
            self._source(it, "unordered-iteration", reason)

    def _unordered_reason(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "iteration over a set literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                if node.func.id in ("set", "frozenset"):
                    return f"iteration over {node.func.id}(...)"
                return None
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._unordered_reason(node.left)
            right = self._unordered_reason(node.right)
            if left is not None or right is not None:
                return "iteration over set algebra"
        return None

    def _source(self, node: ast.AST, kind: str, detail: str) -> None:
        self.info.sources.append(SourceSite(
            line=getattr(node, "lineno", self.info.lineno),
            col=getattr(node, "col_offset", 0),
            kind=kind,
            detail=detail,
        ))


class _Builder:
    """Drives the two passes that populate a :class:`CallGraph`."""

    def __init__(self) -> None:
        self.graph = CallGraph()
        #: (module, cls, info, ast node) for the resolution pass.
        self._pending: list[tuple[
            ModuleInfo, Optional[ClassInfo], FunctionInfo, FunctionDefNode
        ]] = []

    # -- pass 1: registration ----------------------------------------------
    def add_file(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            self.graph.errors.append(
                CallGraphError(path=path, message=f"cannot read: {exc}")
            )
            return
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.graph.errors.append(CallGraphError(
                path=path,
                message=f"syntax error on line {exc.lineno}: {exc.msg}",
            ))
            return
        self.graph.files_checked += 1
        suppressions = parse_suppressions(source)
        module_name = suppressions.module_override or module_for_path(path)
        if not module_name:
            return
        module = ModuleInfo(
            name=module_name, path=path, tree=tree, suppressions=suppressions
        )
        self.graph.modules[module_name] = module
        self._collect_imports(module)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(module, None, node, prefix=module_name)
            elif isinstance(node, ast.ClassDef):
                self._register_class(module, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        module.global_names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    module.global_names.add(node.target.id)

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    module.imports[name] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None and "." in alias.name:
                        # `import a.b.c` binds `a`, but the full dotted
                        # path is usable through it; remember the root.
                        module.imports[alias.name.split(".")[0]] = (
                            alias.name.split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.from_imports[bound] = (node.module, alias.name)

    def _register_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(name=node.name, qualname=qualname, module=module.name)
        for base in node.bases:
            chain = _attr_chain(base)
            if chain is not None:
                info.bases.append(_render_chain(chain))
        module.classes[node.name] = info
        self.graph.classes[qualname] = info
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[child.name] = f"{qualname}.{child.name}"
                self._register_function(module, info, child, prefix=qualname)
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                cls_name = _annotation_class(child.annotation)
                if cls_name is not None:
                    info.attr_types[child.target.id] = cls_name
        self._infer_attr_types(module, info, node)

    def _infer_attr_types(
        self, module: ModuleInfo, info: ClassInfo, node: ast.ClassDef
    ) -> None:
        """``self.X = <annotated param | Class(...)>`` in any method."""
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params: dict[str, str] = {}
            for arg in [*method.args.posonlyargs, *method.args.args,
                        *method.args.kwonlyargs]:
                cls_name = _annotation_class(arg.annotation)
                if cls_name is not None:
                    params[arg.arg] = cls_name
            for stmt in ast.walk(method):
                targets: list[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = list(stmt.targets), stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                    value = stmt.value
                for target in targets:
                    chain = _attr_chain(target)
                    if chain is None or len(chain) != 2 or chain[0] != "self":
                        continue
                    attr = chain[1]
                    inferred: Optional[str] = None
                    if isinstance(stmt, ast.AnnAssign):
                        inferred = _annotation_class(stmt.annotation)
                    if inferred is None and isinstance(value, ast.Name):
                        inferred = params.get(value.id)
                    if inferred is None and isinstance(value, ast.Call):
                        call_chain = _attr_chain(value.func)
                        if call_chain is not None:
                            dotted = _render_chain(call_chain)
                            if self._names_a_class(module, dotted):
                                inferred = dotted
                    if inferred is not None and attr not in info.attr_types:
                        info.attr_types[attr] = inferred

    def _names_a_class(self, module: ModuleInfo, dotted: str) -> bool:
        parts = dotted.split(".")
        if len(parts) == 1:
            if parts[0] in module.classes:
                return True
            origin = module.from_imports.get(parts[0])
            # Pass 1 may not have seen the target module yet; accept any
            # CapWord from-import as a class and re-validate at
            # resolution time.
            return origin is not None and parts[0][:1].isupper()
        return parts[-1][:1].isupper()

    def _register_function(
        self,
        module: ModuleInfo,
        cls: Optional[ClassInfo],
        node: FunctionDefNode,
        prefix: str,
    ) -> None:
        qualname = f"{prefix}.{node.name}"
        marker = marker_for_def(module.suppressions, node)
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            cls=cls.qualname if cls is not None else None,
            name=node.name,
            path=module.path,
            lineno=node.lineno,
            locked_marker=marker.locked if marker is not None else False,
            safe_rules=frozenset(marker.safe) if marker is not None else frozenset(),
            boundary_rules=(
                frozenset(marker.boundary) if marker is not None else frozenset()
            ),
        )
        self.graph.functions[qualname] = info
        if cls is None:
            module.functions[node.name] = qualname
        self._pending.append((module, cls, info, node))
        # Nested defs become their own nodes under `<locals>`.
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._direct_parent_function(node, child):
                    self._register_function(
                        module, cls, child, prefix=f"{qualname}.<locals>"
                    )

    def _direct_parent_function(
        self, parent: FunctionDefNode, child: FunctionDefNode
    ) -> bool:
        """True when no other def nests between ``parent`` and ``child``."""
        for mid in ast.walk(parent):
            if mid in (parent, child):
                continue
            if isinstance(mid, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(mid):
                    if sub is child:
                        return False
        return True

    # -- pass 2: body walks + resolution -----------------------------------
    def finish(self) -> CallGraph:
        by_name: dict[str, set[str]] = {}
        for qualname, info in self.graph.functions.items():
            by_name.setdefault(info.name, set()).add(qualname)
        self.graph._by_name = {
            name: sorted(quals) for name, quals in sorted(by_name.items())
        }
        for module, cls, info, node in self._pending:
            _FunctionWalker(self, module, cls, info, node).walk()
        edges: dict[str, set[str]] = {}
        redges: dict[str, set[str]] = {}
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            targets: set[str] = set()
            for call in info.calls:
                for callee in call.callees:
                    if callee in self.graph.functions:
                        targets.add(callee)
                        redges.setdefault(callee, set()).add(qualname)
            edges[qualname] = targets
        self.graph._edges = {
            q: tuple(sorted(t)) for q, t in sorted(edges.items())
        }
        self.graph._redges = {
            q: tuple(sorted(t)) for q, t in sorted(redges.items())
        }
        return self.graph

    # -- call resolution ----------------------------------------------------
    def resolve_call(self, walker: _FunctionWalker, node: ast.Call) -> list[str]:
        func = node.func
        module = walker.module
        graph = self.graph
        if isinstance(func, ast.Name):
            return self._resolve_bare_name(walker, func.id)
        chain = _attr_chain(func)
        if chain is None:
            # `super().method()` and other call-result receivers.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and walker.cls is not None
            ):
                for base in walker.cls.bases:
                    resolved_cls = graph.class_for(base, module)
                    if resolved_cls is not None:
                        method = graph.method_of(resolved_cls, func.attr)
                        if method is not None:
                            return [method]
                return []
            return []
        # Module-alias prefixed: `checkpoint_mod.save`, `wal_mod.WriteAheadLog.open`.
        alias_target = module.imports.get(chain[0])
        if alias_target is not None and alias_target in graph.modules:
            return self._resolve_in_module(
                graph.modules[alias_target], chain[1:]
            )
        if alias_target is None and chain[0] in graph.modules:
            return self._resolve_in_module(graph.modules[chain[0]], chain[1:])
        # Dotted absolute path: `repro.x.y.f(...)` (rare but cheap).
        if chain[0] == "repro" and len(chain) > 2:
            for split in range(len(chain) - 1, 1, -1):
                mod_name = ".".join(chain[:split])
                if mod_name in graph.modules:
                    return self._resolve_in_module(
                        graph.modules[mod_name], chain[split:]
                    )
        # `self.method()` / `self.attr.method()` / `cls.method()`.
        if chain[0] in ("self", "cls") and walker.cls is not None:
            if len(chain) == 2:
                method = graph.method_of(walker.cls, chain[1])
                return [method] if method is not None else (
                    self._fallback(chain[1])
                )
            if len(chain) == 3:
                attr_cls_name = walker.cls.attr_types.get(chain[1])
                resolved = self._resolve_on_class(
                    module, attr_cls_name, chain[2]
                )
                if resolved:
                    return resolved
                return self._fallback(chain[2])
            return self._fallback(chain[-1])
        # Typed local receiver: `engine.submit()` with `engine: AdmissionEngine`.
        receiver_cls_name = walker.env.get(chain[0])
        if receiver_cls_name is not None and len(chain) == 2:
            resolved = self._resolve_on_class(module, receiver_cls_name, chain[1])
            if resolved:
                return resolved
        # From-imported submodule used as a receiver: `from repro.pkg
        # import lib` then `lib.other()`.
        origin = module.from_imports.get(chain[0])
        if origin is not None:
            submodule = graph.modules.get(origin[0] + "." + origin[1])
            if submodule is not None:
                return self._resolve_in_module(submodule, chain[1:])
        # From-imported class used as a receiver: `WriteAheadLog.open(...)`.
        if origin is not None:
            target_module = graph.modules.get(origin[0])
            if target_module is not None:
                return self._resolve_in_module(
                    target_module, [origin[1], *chain[1:]]
                )
        if chain[0] in module.classes and len(chain) >= 2:
            return self._resolve_in_module(module, chain)
        return self._fallback(chain[-1])

    def _resolve_bare_name(self, walker: _FunctionWalker, name: str) -> list[str]:
        module = walker.module
        graph = self.graph
        # A nested def defined in this very function.
        nested = f"{walker.info.qualname}.<locals>.{name}"
        if nested in graph.functions:
            return [nested]
        if name in module.functions:
            return [module.functions[name]]
        if name in module.classes:
            init = graph.method_of(module.classes[name], "__init__")
            return [init] if init is not None else []
        origin = module.from_imports.get(name)
        if origin is not None:
            target_module = graph.modules.get(origin[0])
            if target_module is not None:
                return self._resolve_in_module(target_module, [origin[1]])
        return []

    def _resolve_in_module(
        self, module: ModuleInfo, chain: Sequence[str]
    ) -> list[str]:
        graph = self.graph
        if not chain:
            return []
        head = chain[0]
        if len(chain) == 1:
            if head in module.functions:
                return [module.functions[head]]
            if head in module.classes:
                init = graph.method_of(module.classes[head], "__init__")
                return [init] if init is not None else []
            origin = module.from_imports.get(head)
            if origin is not None:
                target = graph.modules.get(origin[0])
                if target is not None and target is not module:
                    return self._resolve_in_module(target, [origin[1]])
            return []
        if head in module.classes:
            cls = module.classes[head]
            if len(chain) == 2:
                method = graph.method_of(cls, chain[1])
                return [method] if method is not None else []
            return []
        # A submodule path under a package alias (`sharding.partition.plan`).
        sub = f"{module.name}.{head}"
        if sub in graph.modules:
            return self._resolve_in_module(graph.modules[sub], chain[1:])
        return []

    def _resolve_on_class(
        self, module: ModuleInfo, cls_name: Optional[str], method: str
    ) -> list[str]:
        if cls_name is None:
            return []
        cls = self.graph.class_for(cls_name, module)
        if cls is None:
            return []
        resolved = self.graph.method_of(cls, method)
        return [resolved] if resolved is not None else []

    def _fallback(self, name: str) -> list[str]:
        """By-name candidates for an untypable receiver, capped/filtered."""
        if name in _GENERIC_METHODS:
            return []
        candidates = [
            q for q in self.graph._by_name.get(name, ())
            if self.graph.functions[q].cls is not None
        ]
        if not candidates or len(candidates) > _FALLBACK_CAP:
            return []
        return candidates


def build_callgraph(paths: Sequence[str]) -> CallGraph:
    """Parse every Python file under ``paths`` into one :class:`CallGraph`."""
    builder = _Builder()
    for path in iter_python_files(paths):
        builder.add_file(path)
    return builder.finish()


__all__ = [
    "CallGraph",
    "CallGraphError",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LockSite",
    "ModuleInfo",
    "MutationSite",
    "SourceSite",
    "build_callgraph",
]
