"""Driver for the whole-program flow rules (FLOW001–FLOW004).

``run_flow`` builds one deterministic call graph over the given paths
and runs every flow rule against it, filtering findings through the
same ``# repro-lint:`` line/file suppressions the per-function linter
honors.  The result is sorted and contains no timing or environment
data, so serializing it twice over the same tree yields byte-identical
output — the property the CI determinism gate asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.locks import (
    check_lock_coverage,
    check_lock_order,
    lock_stats,
)
from repro.analysis.flow.taint import check_taint
from repro.analysis.flow.walproto import check_wal_protocol
from repro.analysis.lint.engine import LintError
from repro.analysis.lint.findings import Finding


@dataclass(frozen=True)
class FlowRule:
    """Catalog entry for one flow rule (mirrors the lint rule shape)."""

    rule_id: str
    name: str
    description: str


FLOW_RULES: tuple[FlowRule, ...] = (
    FlowRule(
        rule_id="FLOW001",
        name="interprocedural-nondeterminism",
        description=(
            "nondeterminism source (wall clock, entropy, env read, "
            "unordered iteration, thread timing) reachable from a "
            "decision-path root through the call graph"
        ),
    ),
    FlowRule(
        rule_id="FLOW002",
        name="lock-order-cycle",
        description=(
            "cycle in the interprocedural lock-order graph (threads can "
            "take the locks in opposite orders and deadlock)"
        ),
    ),
    FlowRule(
        rule_id="FLOW003",
        name="unlocked-call-into-locked-scope",
        description=(
            "call into a '# repro-lint: locked' function through a site "
            "where no entry path holds a lock"
        ),
    ),
    FlowRule(
        rule_id="FLOW004",
        name="wal-protocol-violation",
        description=(
            "WAL protocol ordering violated: append-before-apply, "
            "recover-before-serve or compact-under-lock"
        ),
    ),
)

FLOW_RULE_IDS: frozenset[str] = frozenset(r.rule_id for r in FLOW_RULES)


@dataclass
class FlowResult:
    """Everything one flow-analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files_checked: int = 0
    #: Call-graph shape counters (modules/functions/call_edges/...);
    #: stable across runs, safe to serialize.
    stats: dict[str, int] = field(default_factory=dict)

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def _suppressed(graph: CallGraph, finding: Finding) -> bool:
    for module in graph.modules.values():
        if module.path == finding.path:
            return module.suppressions.is_suppressed(
                finding.line, finding.rule
            )
    return False


def run_flow(paths: Sequence[str]) -> FlowResult:
    """Build the call graph under ``paths`` and run every flow rule."""
    graph = build_callgraph(paths)
    findings: list[Finding] = []
    findings.extend(check_taint(graph))
    findings.extend(check_lock_order(graph))
    findings.extend(check_lock_coverage(graph))
    findings.extend(check_wal_protocol(graph))
    kept = sorted(f for f in findings if not _suppressed(graph, f))
    sites, order_edges = lock_stats(graph)
    result = FlowResult(
        findings=kept,
        errors=[
            LintError(path=e.path, message=e.message)
            for e in sorted(graph.errors, key=lambda e: (e.path, e.message))
        ],
        files_checked=graph.files_checked,
        stats={
            "modules": len(graph.modules),
            "functions": len(graph.functions),
            "call_edges": graph.edge_count(),
            "lock_sites": sites,
            "lock_order_edges": order_edges,
        },
    )
    return result


__all__ = ["FLOW_RULES", "FLOW_RULE_IDS", "FlowResult", "FlowRule", "run_flow"]
