"""Command-line front end for the whole-program flow analysis.

Reachable as ``repro flowcheck`` or ``python -m
repro.analysis.flow.cli``; ``repro lint --flow`` runs the same rules
merged into a lint pass.

Exit codes: ``0`` clean, ``1`` findings or unparsable files, ``2``
usage errors, ``3`` the call-graph build blew the ``--max-build-seconds``
budget.  Timing goes to *stderr* only — stdout (text or JSON) is a
pure function of the analyzed tree, byte-identical across runs, and
the CI determinism gate diffs it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence, TextIO

from repro.analysis.flow.engine import FLOW_RULES, FlowResult, run_flow
from repro.obs.exporters import write_jsonl
from repro.obs.metrics import MetricsRegistry

DESCRIPTION = (
    "Whole-program determinism flow analysis for the repro codebase: "
    "interprocedural nondeterminism taint (FLOW001), lock-order cycles "
    "(FLOW002), unlocked calls into locked scopes (FLOW003) and WAL "
    "protocol violations (FLOW004)."
)

EPILOG = (
    "Findings carry the full source->sink call chain; see the 'Flow "
    "analysis' section of docs/STATIC_ANALYSIS.md."
)


def add_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the flowcheck flags (standalone or ``repro`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print call-graph shape and per-rule counts",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="with --stats: also write the counts as a JSON-lines "
             "metrics log readable by `repro inspect`",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the flow rule catalog and exit",
    )
    parser.add_argument(
        "--max-build-seconds", type=float, default=None, metavar="S",
        help="fail (exit 3) when building+checking the call graph takes "
             "longer than S seconds (CI latency budget); the measured "
             "time is reported on stderr either way",
    )
    return parser


def build_parser(prog: str = "repro flowcheck") -> argparse.ArgumentParser:
    return add_arguments(argparse.ArgumentParser(
        prog=prog, description=DESCRIPTION, epilog=EPILOG,
    ))


def build_stats_registry(result: FlowResult) -> MetricsRegistry:
    """Flow counters as a :class:`MetricsRegistry` (stable metric set)."""
    registry = MetricsRegistry()
    counts = result.counts_by_rule()
    for rule in FLOW_RULES:
        registry.counter(
            "flow_findings_total", "Flow findings by rule", rule=rule.rule_id,
        ).inc(counts.get(rule.rule_id, 0))
    for key in sorted(result.stats):
        registry.gauge(
            f"flow_graph_{key}", f"Call-graph {key.replace('_', ' ')}",
        ).set(result.stats[key])
    registry.gauge(
        "flow_files_checked", "Files examined by the last flow run",
    ).set(result.files_checked)
    registry.counter(
        "flow_errors_total", "Files the flow analysis could not parse",
    ).inc(len(result.errors))
    return registry


def _render_text(out: TextIO, result: FlowResult) -> None:
    for finding in result.findings:
        out.write(finding.render() + "\n")
    for error in result.errors:
        out.write(error.render() + "\n")
    summary = (
        f"{len(result.findings)} flow finding(s) in "
        f"{result.files_checked} file(s)"
    )
    if result.errors:
        summary += f", {len(result.errors)} file error(s)"
    out.write(summary + "\n")


def _render_json(out: TextIO, result: FlowResult) -> None:
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.findings],
        "errors": [
            {"path": e.path, "message": e.message} for e in result.errors
        ],
        "counts_by_rule": result.counts_by_rule(),
        "graph": dict(sorted(result.stats.items())),
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def run(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> int:
    """Execute a parsed flowcheck invocation."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr

    if args.list_rules:
        for rule in FLOW_RULES:
            out.write(f"{rule.rule_id}: {rule.name}\n")
            out.write(f"    {rule.description}\n")
        return 0
    if args.metrics_out is not None and not args.stats:
        parser.error("--metrics-out requires --stats")

    t0 = time.perf_counter()
    result = run_flow(args.paths)
    elapsed = time.perf_counter() - t0
    err.write(f"flowcheck: analyzed {result.files_checked} file(s) "
              f"in {elapsed:.2f}s\n")

    if args.format == "json":
        _render_json(out, result)
    else:
        _render_text(out, result)

    if args.stats:
        registry = build_stats_registry(result)
        for metric in registry.collect():
            labels = ",".join(f"{k}={v}" for k, v in metric["labels"].items())
            label_part = f"{{{labels}}}" if labels else ""
            value = metric.get("value", metric.get("count"))
            out.write(f"stat {metric['name']}{label_part} {value}\n")
        if args.metrics_out is not None:
            write_jsonl(args.metrics_out, [
                {"type": "meta", "scenario": "flowcheck",
                 "paths": list(args.paths)},
                {"type": "registry", "metrics": registry.collect()},
            ])
            out.write(f"stats written to {args.metrics_out}\n")

    if args.max_build_seconds is not None and elapsed > args.max_build_seconds:
        err.write(
            f"flowcheck: build budget exceeded: {elapsed:.2f}s > "
            f"{args.max_build_seconds:.2f}s\n"
        )
        return 3
    return 1 if (result.findings or result.errors) else 0


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    parser = build_parser()
    return run(parser.parse_args(argv), parser, out=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
