"""FLOW004 — the WAL protocol state machine, checked interprocedurally.

The durability contract (PR 3/6) is a small protocol:

* **append-before-apply** — a serving path must write the admission
  payload to the WAL *before* mutating the engine, or a crash between
  the two loses an acknowledged decision;
* **recover-before-serve** — a process that opens a WAL and serves
  must replay it first, or it serves state that contradicts the log it
  is about to append to;
* **compact-under-lock** — segment compaction rewrites the live WAL
  and may only run while the engine lock is held.

The spec below *declares* which call-graph functions realize each
protocol op; the checker then verifies the orderings over the call
graph rather than one function at a time.  ``AdmissionEngine.poll`` is
an exempt op: it chases the live wall clock by design (replay
reproduces its effects from logged timestamps — the same reasoning
that exempts it from CONC002), so closures are not computed through
it.  ``# repro-lint: safe=FLOW004`` on a ``def`` exempts that function
(e.g. offline tooling operating on a cold WAL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.lint.findings import Finding

RULE_ID = "FLOW004"


@dataclass(frozen=True)
class ProtocolSpec:
    """Which functions realize each WAL protocol operation."""

    append: tuple[str, ...] = (
        "repro.service.wal.WriteAheadLog.append",
    )
    apply: tuple[str, ...] = (
        "repro.service.engine.AdmissionEngine.submit",
        "repro.service.engine.AdmissionEngine.advance",
        "repro.service.engine.AdmissionEngine.drain",
    )
    recover: tuple[str, ...] = (
        "repro.service.wal.recover",
        "repro.service.checkpoint.restore",
    )
    serve: tuple[str, ...] = (
        "repro.service.server.ServiceServer.start",
        "repro.service.server.ServiceServer.serve_forever",
    )
    compact: tuple[str, ...] = (
        "repro.service.wal.WriteAheadLog.compact",
    )
    open_wal: tuple[str, ...] = (
        "repro.service.wal.WriteAheadLog.open",
    )
    #: Ops whose closure is intentionally opaque to the checker.
    exempt: tuple[str, ...] = (
        "repro.service.engine.AdmissionEngine.poll",
    )

    def op_of(self, qualname: str) -> Optional[str]:
        for op in ("append", "apply", "recover", "serve", "compact",
                   "open_wal"):
            if qualname in getattr(self, op):
                return op
        return None

    def all_ops(self) -> frozenset[str]:
        return frozenset(
            q
            for op in ("append", "apply", "recover", "serve", "compact",
                       "open_wal")
            for q in getattr(self, op)
        )


DEFAULT_SPEC = ProtocolSpec()


def _is_exempt(info: FunctionInfo) -> bool:
    return RULE_ID in info.safe_rules or RULE_ID in info.boundary_rules


def _transitive_ops(
    graph: CallGraph, spec: ProtocolSpec
) -> dict[str, frozenset[str]]:
    """Protocol ops each function reaches (op names, not qualnames).

    The closure does not descend through exempt op functions, through
    op functions themselves (their body is the op's *implementation*),
    or through ``safe=FLOW004``-marked functions.
    """
    ops: dict[str, set[str]] = {q: set() for q in graph.functions}
    for qualname in sorted(graph.functions):
        for callee in graph.callees(qualname):
            op = spec.op_of(callee)
            if op is not None:
                ops[qualname].add(op)
    changed = True
    while changed:
        changed = False
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if _is_exempt(info):
                continue
            bucket = ops[qualname]
            before = len(bucket)
            for callee in graph.callees(qualname):
                if callee in spec.exempt or spec.op_of(callee) is not None:
                    continue
                callee_info = graph.functions.get(callee)
                if callee_info is not None and _is_exempt(callee_info):
                    continue
                bucket |= ops.get(callee, set())
            if len(bucket) != before:
                changed = True
    return {q: frozenset(s) for q, s in ops.items()}


def _site_ops(
    graph: CallGraph,
    spec: ProtocolSpec,
    trans: dict[str, frozenset[str]],
    callees: tuple[str, ...],
) -> frozenset[str]:
    """Ops one call site reaches (the callee's op plus its closure)."""
    reached: set[str] = set()
    for callee in callees:
        op = spec.op_of(callee)
        if op is not None:
            reached.add(op)
            continue
        if callee in spec.exempt:
            continue
        info = graph.functions.get(callee)
        if info is not None and _is_exempt(info):
            continue
        reached |= trans.get(callee, frozenset())
    return frozenset(reached)


def check_wal_protocol(
    graph: CallGraph, spec: ProtocolSpec = DEFAULT_SPEC
) -> list[Finding]:
    """FLOW004: verify the three protocol orderings over the call graph."""
    findings: list[Finding] = []
    trans = _transitive_ops(graph, spec)
    op_functions = spec.all_ops()
    for info in graph.sorted_functions():
        if info.qualname in op_functions or info.qualname in spec.exempt:
            continue
        if _is_exempt(info):
            continue
        reached = trans.get(info.qualname, frozenset())
        if not reached:
            continue
        # First line at which each op becomes reachable from this body.
        first_line: dict[str, int] = {}
        per_site: list[tuple[int, frozenset[str]]] = []
        for call in info.calls:
            site_ops = _site_ops(graph, spec, trans, call.callees)
            if site_ops:
                per_site.append((call.line, site_ops))
            for op in site_ops:
                if op not in first_line or call.line < first_line[op]:
                    first_line[op] = call.line

        # (1) append-before-apply: a function that both appends and
        # applies must not reach an apply strictly before any append.
        # Replay paths (closures containing `recover`) re-apply durable
        # records by design and are skipped.
        if (
            "append" in first_line
            and "apply" in first_line
            and "recover" not in reached
            and first_line["apply"] < first_line["append"]
        ):
            findings.append(Finding(
                path=info.path,
                line=first_line["apply"],
                col=0,
                rule=RULE_ID,
                message=(
                    f"{info.qualname} reaches engine apply (line "
                    f"{first_line['apply']}) before WAL append (line "
                    f"{first_line['append']}): a crash between them loses "
                    "an acknowledged decision; append the payload first"
                ),
            ))

        # (2) recover-before-serve: opening a WAL and serving without a
        # prior recover serves state that contradicts the log.
        if "serve" in first_line and "open_wal" in first_line:
            recover_line = first_line.get("recover")
            if recover_line is None or recover_line > first_line["serve"]:
                findings.append(Finding(
                    path=info.path,
                    line=first_line["serve"],
                    col=0,
                    rule=RULE_ID,
                    message=(
                        f"{info.qualname} opens a WAL and serves (line "
                        f"{first_line['serve']}) without recovering first; "
                        "replay the log before taking traffic"
                    ),
                ))

    # (3) compact-under-lock: every site reaching `compact` must hold a
    # lock or sit in a locked-marked/safe function.
    for info in graph.sorted_functions():
        if _is_exempt(info) or info.locked_marker:
            continue
        for call in info.calls:
            if not any(c in spec.compact for c in call.callees):
                continue
            if call.locks_held:
                continue
            findings.append(Finding(
                path=info.path,
                line=call.line,
                col=call.col,
                rule=RULE_ID,
                message=(
                    f"{info.qualname} compacts the WAL with no lock held; "
                    "compaction rewrites live segments and must run under "
                    "the engine lock (or mark the function "
                    "'# repro-lint: safe=FLOW004' for cold offline WALs)"
                ),
            ))
    return findings


__all__ = ["DEFAULT_SPEC", "ProtocolSpec", "RULE_ID", "check_wal_protocol"]
