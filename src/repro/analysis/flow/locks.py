"""FLOW002/FLOW003 — the interprocedural lock-order and coverage graph.

**FLOW002** assembles a lock-*order* digraph: an edge ``A -> B`` means
some execution path acquires ``B`` while holding ``A`` — either
lexically (nested ``with``) or through a call chain (a call site made
under ``A`` whose callee transitively acquires ``B``).  A cycle in
that graph is a potential deadlock between threads taking the locks in
opposite orders; every edge of the reported cycle carries a concrete
``function:line`` witness.

**FLOW003** closes the loop on the ``# repro-lint: locked`` contract.
The per-function CONC001 rule trusts the marker ("my caller holds the
lock"); this pass *verifies* it at every resolved call site: the site
must hold a lock lexically, or sit in a function that is itself
``locked``/``safe=CONC001``-marked or provably only entered under a
lock.  An uncovered site is a path that mutates engine/WAL/metric
state with no lock held.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules import CONC001_EXEMPT_MODULES

ORDER_RULE_ID = "FLOW002"
COVERAGE_RULE_ID = "FLOW003"


@dataclass(frozen=True)
class _Edge:
    first: str
    second: str
    #: Witness: where the second acquisition happens while the first is
    #: held, e.g. ``repro.service.server.AdmissionService._dispatch:412``.
    witness: str


def _transitive_acquires(graph: CallGraph) -> dict[str, frozenset[str]]:
    """Lock ids each function may acquire, directly or via callees.

    Iterated to a fixpoint (the graph has recursion); local
    function-scoped locks (``<local>`` ids) never escape a function and
    are excluded — they cannot participate in cross-thread ordering.
    """
    acquired: dict[str, set[str]] = {}
    for info in graph.sorted_functions():
        acquired[info.qualname] = {
            site.lock for site in info.acquires if ".<local>." not in site.lock
        }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(acquired):
            bucket = acquired[qualname]
            before = len(bucket)
            for callee in graph.callees(qualname):
                bucket |= acquired.get(callee, set())
            if len(bucket) != before:
                changed = True
    return {q: frozenset(locks) for q, locks in acquired.items()}


def _order_edges(graph: CallGraph) -> list[_Edge]:
    trans = _transitive_acquires(graph)
    edges: dict[tuple[str, str], str] = {}

    def note(first: str, second: str, witness: str) -> None:
        if first == second:
            # Re-acquiring the same *normalized* identity usually means a
            # different instance of the same class (e.g. two shard
            # parking locks); the self-deadlock case is better caught at
            # runtime, so self-edges are not order edges.
            return
        key = (first, second)
        if key not in edges or witness < edges[key]:
            edges[key] = witness

    for info in graph.sorted_functions():
        for site in info.acquires:
            if ".<local>." in site.lock:
                continue
            for held in site.held:
                if ".<local>." in held:
                    continue
                note(held, site.lock, f"{info.qualname}:{site.line}")
        for call in info.calls:
            if not call.locks_held:
                continue
            reachable: set[str] = set()
            for callee in call.callees:
                reachable |= trans.get(callee, frozenset())
            for held in call.locks_held:
                if ".<local>." in held:
                    continue
                for target in sorted(reachable):
                    if target not in call.locks_held:
                        note(held, target, f"{info.qualname}:{call.line}")
    return [
        _Edge(first=k[0], second=k[1], witness=w)
        for k, w in sorted(edges.items())
    ]


def _cycles(edges: list[_Edge]) -> list[list[_Edge]]:
    """Every elementary lock-order cycle, smallest-first.

    Locks graphs here are tiny (a handful of identities), so a simple
    DFS from each node over sorted adjacency is plenty — and fully
    deterministic.
    """
    adjacency: dict[str, list[_Edge]] = {}
    for edge in edges:
        adjacency.setdefault(edge.first, []).append(edge)
    found: list[list[_Edge]] = []
    seen_keys: set[tuple[str, ...]] = set()
    for start in sorted(adjacency):
        stack: list[tuple[str, list[_Edge]]] = [(start, [])]
        while stack:
            node, path = stack.pop()
            for edge in reversed(adjacency.get(node, [])):
                if edge.second == start:
                    cycle = [*path, edge]
                    # Canonical form: rotate so the smallest lock leads;
                    # dedupe rotations discovered from other start nodes.
                    names = [e.first for e in cycle]
                    pivot = names.index(min(names))
                    canon = tuple(names[pivot:] + names[:pivot])
                    if canon not in seen_keys:
                        seen_keys.add(canon)
                        found.append(cycle[pivot:] + cycle[:pivot])
                elif all(e.first != edge.second for e in path) and (
                    edge.second != node
                ) and len(path) < 8:
                    if edge.second > start:
                        # Only explore nodes after `start` — each cycle
                        # is found exactly once, from its smallest node.
                        stack.append((edge.second, [*path, edge]))
    found.sort(key=lambda cycle: [e.first for e in cycle])
    return found


def check_lock_order(graph: CallGraph) -> list[Finding]:
    """FLOW002: cycles in the interprocedural lock-order graph."""
    findings: list[Finding] = []
    for cycle in _cycles(_order_edges(graph)):
        ring = " -> ".join([*(e.first for e in cycle), cycle[0].first])
        evidence = "; ".join(
            f"{e.first} -> {e.second} at {e.witness}" for e in cycle
        )
        anchor = cycle[0].witness
        anchor_fn = anchor.rsplit(":", 1)[0]
        info = graph.functions.get(anchor_fn)
        findings.append(Finding(
            path=info.path if info is not None else "<unknown>",
            line=int(anchor.rsplit(":", 1)[1]),
            col=0,
            rule=ORDER_RULE_ID,
            message=(
                f"lock-order cycle {ring} (potential deadlock): {evidence}; "
                "acquire these locks in one global order"
            ),
        ))
    return findings


def _entered_under_lock(
    graph: CallGraph, qualname: str, visiting: frozenset[str]
) -> bool:
    """True when every resolved path into ``qualname`` holds a lock."""
    if qualname in visiting:
        return True  # a cycle back into the chain adds no new entry path
    info = graph.functions.get(qualname)
    if info is None:
        return False
    if info.locked_marker or "CONC001" in info.safe_rules:
        return True
    if info.module in CONC001_EXEMPT_MODULES:
        return True
    callers = graph.callers(qualname)
    if not callers:
        return False
    scope = visiting | {qualname}
    for caller in callers:
        caller_info = graph.functions.get(caller)
        if caller_info is None:
            return False
        for call in caller_info.calls:
            if qualname not in call.callees:
                continue
            if call.locks_held:
                continue
            if not _entered_under_lock(graph, caller, scope):
                return False
    return True


def check_lock_coverage(graph: CallGraph) -> list[Finding]:
    """FLOW003: every call into a ``locked``-marked function holds a lock."""
    findings: list[Finding] = []
    locked = [
        info for info in graph.sorted_functions()
        if info.locked_marker and info.module not in CONC001_EXEMPT_MODULES
    ]
    for target in locked:
        mutated = sorted({m.target for m in target.mutations})
        evidence = (
            f" (it mutates {', '.join(mutated)})" if mutated else ""
        )
        for caller_name in graph.callers(target.qualname):
            caller = graph.functions.get(caller_name)
            if caller is None:
                continue
            for call in caller.calls:
                if target.qualname not in call.callees:
                    continue
                if call.locks_held:
                    continue
                if _entered_under_lock(graph, caller_name, frozenset()):
                    continue
                findings.append(Finding(
                    path=caller.path,
                    line=call.line,
                    col=call.col,
                    rule=COVERAGE_RULE_ID,
                    message=(
                        f"call into locked-marked {target.qualname} from "
                        f"{caller_name} with no lock held on any entry "
                        f"path{evidence}; take the owning lock or mark "
                        "the caller '# repro-lint: locked'"
                    ),
                ))
    return findings


def lock_stats(graph: CallGraph) -> tuple[int, int]:
    """(acquisition sites, order edges) for the flow stats block."""
    sites = sum(len(info.acquires) for info in graph.functions.values())
    return sites, len(_order_edges(graph))


__all__ = [
    "COVERAGE_RULE_ID",
    "ORDER_RULE_ID",
    "check_lock_coverage",
    "check_lock_order",
    "lock_stats",
]
