"""FLOW001 — interprocedural nondeterminism taint.

A *decision-path root* (policy admission, engine submit/advance/drain,
WAL append, checkpoint/trace serialization) must never reach a
nondeterminism source — wall clock, ambient entropy, env read,
unordered iteration, thread timing — through any chain of calls:
whatever those sources return would flow into decisions, WAL payloads
or exports that the repo promises are byte-identical across runs.

The check walks *backward* from every source site over the reverse
call graph looking for the nearest reachable root; the finding is
anchored at the source call and carries the full root→…→source chain
so the reader can audit every hop.  ``# repro-lint: boundary=FLOW001``
on a ``def`` (or its decorator) declares the function a sanctioned
boundary: sources inside it are allowed and taint does not propagate
through its call edge — the pragma's trailing prose should say why the
reads cannot reach decision bytes (e.g. the live ``WallClock``, whose
readings replay reproduces from logged timestamps).
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Optional

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.lint.findings import Finding

RULE_ID = "FLOW001"

#: Decision-path roots: functions whose transitive closure must be
#: deterministic.  ``fnmatch`` patterns over function qualnames.
SINK_PATTERNS: tuple[tuple[str, str], ...] = (
    ("policy admission", "repro.scheduling.*.on_job_submitted"),
    ("RMS submit", "repro.cluster.rms.ResourceManagementSystem.submit"),
    ("engine submit", "repro.service.engine.AdmissionEngine.submit"),
    ("engine advance", "repro.service.engine.AdmissionEngine.advance"),
    ("engine drain", "repro.service.engine.AdmissionEngine.drain"),
    ("WAL append", "repro.service.wal.WriteAheadLog.append"),
    ("checkpoint snapshot", "repro.service.checkpoint.snapshot"),
    ("checkpoint save", "repro.service.checkpoint.save"),
    ("trace serialization", "repro.obs.tracing.build_trace"),
)

#: Modules whose "entropy" calls are the sanctioned seeded streams —
#: the one place ``random`` may legitimately appear.
SOURCE_EXEMPT_MODULES: tuple[str, ...] = ("repro.sim.rng",)


def _sink_label(qualname: str) -> Optional[str]:
    for label, pattern in SINK_PATTERNS:
        if fnmatchcase(qualname, pattern):
            return label
    return None


def _is_boundary(info: FunctionInfo) -> bool:
    return RULE_ID in info.boundary_rules


def _nearest_root(
    graph: CallGraph, start: str
) -> Optional[tuple[str, list[str]]]:
    """Shortest caller chain from ``start`` up to a decision-path root.

    Returns ``(sink_label, [root, ..., start])`` or ``None``.  BFS over
    sorted reverse edges with lexicographic parent assignment, so the
    reported chain is deterministic; boundary-marked functions stop the
    walk (their call edges are declared clean).
    """
    label = _sink_label(start)
    if label is not None:
        return label, [start]
    parents: dict[str, str] = {}
    frontier = [start]
    seen = {start}
    while frontier:
        next_frontier: list[str] = []
        hits: list[str] = []
        for node in frontier:
            for caller in graph.callers(node):
                if caller in seen:
                    continue
                info = graph.functions.get(caller)
                if info is not None and _is_boundary(info):
                    continue
                seen.add(caller)
                parents[caller] = node
                hit_label = _sink_label(caller)
                if hit_label is not None:
                    hits.append(caller)
                else:
                    next_frontier.append(caller)
        if hits:
            root = sorted(hits)[0]
            chain = [root]
            while chain[-1] != start:
                chain.append(parents[chain[-1]])
            return _sink_label(root) or "", chain
        frontier = sorted(next_frontier)
    return None


def check_taint(graph: CallGraph) -> list[Finding]:
    """Every nondeterminism source reachable from a decision-path root."""
    findings: list[Finding] = []
    for info in graph.sorted_functions():
        if not info.sources:
            continue
        if info.module in SOURCE_EXEMPT_MODULES:
            continue
        if _is_boundary(info):
            continue
        reached = _nearest_root(graph, info.qualname)
        if reached is None:
            continue
        label, chain = reached
        rendered = " -> ".join(chain)
        for source in info.sources:
            findings.append(Finding(
                path=info.path,
                line=source.line,
                col=source.col,
                rule=RULE_ID,
                message=(
                    f"{source.kind} source {source.detail} is reachable "
                    f"from decision-path root '{label}' via {rendered}; "
                    "decision bytes must not depend on it "
                    "(fix the chain or declare a justified "
                    "'# repro-lint: boundary=FLOW001')"
                ),
            ))
    return findings


__all__ = ["RULE_ID", "SINK_PATTERNS", "SOURCE_EXEMPT_MODULES", "check_taint"]
