"""Whole-program determinism flow analysis (``repro flowcheck``).

The per-function rules of :mod:`repro.analysis.lint` stop at function
boundaries; this package checks the *transitive* versions of the same
invariants over a deterministic call graph of ``src/repro``:

* **FLOW001** — interprocedural nondeterminism taint: a decision-path
  root (policy admission, engine submit/advance/drain, WAL append,
  checkpoint/trace serialization) must not reach a wall-clock read,
  ambient entropy, env read, unordered iteration or thread-timing call
  through any chain of calls.
* **FLOW002** — cycles in the interprocedural lock-order graph
  (potential deadlock between service/obs/sharding locks).
* **FLOW003** — a ``# repro-lint: locked`` function (one whose body
  mutates shared engine/WAL/metric state relying on the caller's lock)
  reachable through a call site where no lock is held.
* **FLOW004** — WAL protocol violations against the declared spec:
  append-before-apply, recover-before-serve, compact-under-lock.

Static findings are cross-validated at runtime by
:mod:`repro.analysis.sanitizer` (``REPRO_SANITIZE=1``), which patches
the banned sources to raise inside active decision-path spans.
"""

from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.engine import (
    FLOW_RULE_IDS,
    FLOW_RULES,
    FlowResult,
    run_flow,
)

__all__ = [
    "CallGraph",
    "FLOW_RULES",
    "FLOW_RULE_IDS",
    "FlowResult",
    "build_callgraph",
    "run_flow",
]
