"""Statistical helpers for replicated experiments.

The paper evaluates on a single trace (one realisation); this library
additionally supports running every scenario under multiple seeds and
summarising with means and confidence intervals, so claims like
"LibraRisk fulfils more deadlines than Libra" can be checked for
robustness rather than read off one lucky draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Two-sided critical values of Student's t for common confidence
#: levels, indexed by degrees of freedom (1..30; beyond that the
#: normal approximation is used).
_T_95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]
_Z_95 = 1.960


@dataclass(frozen=True)
class Summary:
    """Mean with a 95 % confidence half-width over replications."""

    mean: float
    stddev: float
    ci95: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def overlaps(self, other: "Summary") -> bool:
        """True iff the two 95 % intervals overlap."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.ci95:.2f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean, sample std-dev, and 95 % CI half-width of ``values``."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(mean=mean, stddev=0.0, ci95=0.0, n=1)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(var)
    dof = n - 1
    t = _T_95[dof - 1] if dof <= len(_T_95) else _Z_95
    return Summary(mean=mean, stddev=stddev, ci95=t * stddev / math.sqrt(n), n=n)


def paired_difference(a: Sequence[float], b: Sequence[float]) -> Summary:
    """Summary of the paired differences ``a_i − b_i``.

    Replications with the same seed share their workload, so paired
    differences are the right way to compare two policies: the
    workload-to-workload variance cancels.
    """
    if len(a) != len(b):
        raise ValueError(f"paired samples must align: {len(a)} vs {len(b)}")
    return summarize([x - y for x, y in zip(a, b)])


def significantly_greater(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff the paired difference a−b is positive at 95 % confidence."""
    diff = paired_difference(a, b)
    return diff.low > 0.0
