"""Series analysis helpers: wins, crossovers, improvement factors.

Used by EXPERIMENTS.md's paper-versus-measured checks and by the test
suite to assert the qualitative *shape* of each figure (who wins, by
roughly what factor, where the curves cross) without pinning absolute
numbers to a particular synthetic-trace seed.
"""

from repro.analysis.asciichart import ascii_chart, panel_chart
from repro.analysis.stats import Summary, paired_difference, significantly_greater, summarize
from repro.analysis.compare import (
    crossover_points,
    dominance_fraction,
    improvement_pct,
    mean_improvement_pct,
    trend,
)

__all__ = [
    "Summary",
    "ascii_chart",
    "crossover_points",
    "dominance_fraction",
    "improvement_pct",
    "mean_improvement_pct",
    "paired_difference",
    "panel_chart",
    "significantly_greater",
    "summarize",
    "trend",
]
