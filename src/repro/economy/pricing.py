"""Libra's pricing function and a budget (willingness-to-pay) model.

Libra (Sherwani et al. 2004) prices a job with two terms per
requested node::

    price = numproc × (alpha · E  +  beta · E / D)

where ``E`` is the *estimated* runtime and ``D`` the deadline.  The
``alpha`` term charges raw resource usage; the ``beta`` term charges
urgency — the same estimated work costs more the tighter its deadline
(``E/D`` is exactly the Eq. 1 share the job demands).  Prices are in
abstract currency units per rating-second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.job import Job


@dataclass(frozen=True)
class LibraPricing:
    """The two-coefficient Libra price function."""

    #: Currency per estimated runtime second (resource-usage charge).
    alpha: float = 1.0
    #: Currency per unit of demanded share (urgency charge).
    beta: float = 2000.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be >= 0")
        if self.alpha == 0 and self.beta == 0:
            raise ValueError("at least one coefficient must be positive")

    def price(self, estimated_runtime: float, deadline: float, numproc: int) -> float:
        """Price of a job given its request (> 0 for valid requests)."""
        if estimated_runtime <= 0 or deadline <= 0 or numproc < 1:
            raise ValueError("invalid job request")
        per_node = self.alpha * estimated_runtime + self.beta * (estimated_runtime / deadline)
        return numproc * per_node

    def price_job(self, job: Job) -> float:
        return self.price(job.estimated_runtime, job.deadline, job.numproc)


@dataclass(frozen=True)
class BudgetModel:
    """Assigns each job a budget as a factor of its quoted price.

    ``budget = price × factor`` with the factor drawn from a normal
    distribution truncated at ``min_factor``; a mean factor above 1
    means users are on average willing to pay the asking price.
    """

    pricing: LibraPricing = LibraPricing()
    mean_factor: float = 1.2
    cv: float = 0.3
    min_factor: float = 0.1

    def __post_init__(self) -> None:
        if self.mean_factor <= 0 or self.min_factor <= 0:
            raise ValueError("factors must be > 0")
        if self.cv < 0:
            raise ValueError("cv must be >= 0")

    def assign(self, jobs, rng: np.random.Generator) -> dict[int, float]:
        """Budget per job id, deterministic in the supplied generator."""
        factors = rng.normal(self.mean_factor, self.cv * self.mean_factor, size=len(jobs))
        factors = np.maximum(factors, self.min_factor)
        return {
            job.job_id: self.pricing.price_job(job) * float(f)
            for job, f in zip(jobs, factors)
        }
