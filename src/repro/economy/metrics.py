"""Revenue and penalty accounting for budget-aware scenarios.

Follows the related work's framing ([5] Irwin et al., [12] Popovici &
Wilkes): the provider earns each accepted job's quoted price when it
meets its deadline and pays a penalty when an accepted job misses it —
so over-admission is not free, which is exactly the risk LibraRisk
manages on the deadline side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.job import Job


@dataclass(frozen=True)
class EconomicSummary:
    """Provider-side money flows for one scenario."""

    revenue: float          # prices of accepted jobs that met deadlines
    penalties: float        # paid for accepted jobs that missed/failed
    jobs_paid: int
    jobs_penalised: int

    @property
    def profit(self) -> float:
        return self.revenue - self.penalties

    def as_dict(self) -> dict[str, float]:
        return {
            "revenue": self.revenue,
            "penalties": self.penalties,
            "profit": self.profit,
            "jobs_paid": float(self.jobs_paid),
            "jobs_penalised": float(self.jobs_penalised),
        }


def economic_summary(
    jobs: Sequence[Job],
    quoted: Mapping[int, float],
    penalty_rate: float = 0.5,
) -> EconomicSummary:
    """Account revenue/penalties over a finished scenario.

    Parameters
    ----------
    jobs:
        All submitted jobs.
    quoted:
        Price per accepted job id (from
        :class:`~repro.economy.budget.LibraBudgetPolicy.quoted` or any
        pricing pass).
    penalty_rate:
        Penalty for an accepted-but-violated job, as a fraction of its
        quoted price.
    """
    if penalty_rate < 0:
        raise ValueError("penalty_rate must be >= 0")
    revenue = 0.0
    penalties = 0.0
    paid = penalised = 0
    for job in jobs:
        price = quoted.get(job.job_id)
        if price is None or not job.accepted:
            continue
        if job.completed and job.deadline_met:
            revenue += price
            paid += 1
        else:
            penalties += penalty_rate * price
            penalised += 1
    return EconomicSummary(
        revenue=revenue, penalties=penalties, jobs_paid=paid, jobs_penalised=penalised
    )
