"""Budget-constrained Libra admission (the computational-economy Libra).

Admission requires both of the original Libra's tests:

1. the **budget** test — the cluster's quoted price must not exceed
   the job's budget (jobs without an assigned budget are treated as
   unconstrained, so the policy degrades gracefully to plain Libra);
2. the **deadline** test — Libra's Eq. 2 proportional-share capacity
   check, inherited unchanged.

Revenue accounting is left to :mod:`repro.economy.metrics`; the policy
records the quoted price of every accepted job.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.job import Job
from repro.economy.pricing import LibraPricing
from repro.scheduling.libra import LibraPolicy


class LibraBudgetPolicy(LibraPolicy):
    """Libra with the economy's price-versus-budget admission test."""

    name = "libra-budget"
    discipline = "time_shared"

    def __init__(
        self,
        pricing: Optional[LibraPricing] = None,
        budgets: Optional[Mapping[int, float]] = None,
        expired_job_share_mode: str = "zero",
    ) -> None:
        super().__init__(expired_job_share_mode=expired_job_share_mode)
        self.pricing = pricing or LibraPricing()
        self.budgets: Mapping[int, float] = budgets or {}
        #: job_id -> price quoted at acceptance (for revenue accounting).
        self.quoted: dict[int, float] = {}

    def set_budgets(self, budgets: Mapping[int, float]) -> None:
        """Install (or replace) the per-job budget table."""
        self.budgets = budgets

    def on_job_submitted(self, job: Job, now: float) -> None:
        price = self.pricing.price_job(job)
        budget = self.budgets.get(job.job_id)
        if budget is not None and price > budget:
            self._reject(job, f"price {price:.0f} exceeds budget {budget:.0f}")
            return
        before = len(self.rms.accepted) if self.rms is not None else 0
        super().on_job_submitted(job, now)
        if self.rms is not None and len(self.rms.accepted) > before:
            self.quoted[job.job_id] = price
