"""Economy substrate: Libra's pricing model and budget-aware admission.

The Libra scheduler this paper builds on (Sherwani et al., SPE 2004,
reference [14]) is a *computational-economy* scheduler: every job
carries a budget as well as a deadline, the cluster prices each job as
a function of its resource demand and urgency, and admission requires
both the deadline to be feasible *and* the price to fit the budget.
The ICPP'06 paper strips the economics to isolate the deadline
question; this package restores that substrate as an extension:

* :class:`~repro.economy.pricing.LibraPricing` — the two-term price
  (a resource-usage term plus a deadline-urgency term);
* :class:`~repro.economy.pricing.BudgetModel` — assigns per-job
  budgets as a factored willingness-to-pay;
* :class:`~repro.economy.budget.LibraBudgetPolicy` — Libra admission
  with the budget check;
* :func:`~repro.economy.metrics.economic_summary` — revenue/penalty
  accounting in the style of the related work ([5], [12]).
"""

from repro.economy.pricing import BudgetModel, LibraPricing
from repro.economy.budget import LibraBudgetPolicy
from repro.economy.metrics import EconomicSummary, economic_summary

__all__ = [
    "BudgetModel",
    "EconomicSummary",
    "LibraBudgetPolicy",
    "LibraPricing",
    "economic_summary",
]
