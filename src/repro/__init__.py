"""repro — reproduction of Yeo & Buyya, ICPP 2006.

"Managing Risk of Inaccurate Runtime Estimates for Deadline Constrained
Job Admission Control in Clusters."

The package implements, from scratch:

* a deterministic discrete-event simulator (:mod:`repro.sim`);
* a cluster model with space-shared and proportional-share nodes
  (:mod:`repro.cluster`);
* a workload substrate — SWF trace handling, a synthetic SDSC-SP2-like
  generator, estimate and deadline models (:mod:`repro.workload`);
* the paper's three admission controls — EDF, Libra and **LibraRisk**
  — plus extension baselines (:mod:`repro.scheduling`);
* the paper's metrics (:mod:`repro.metrics`) and the experiment
  harness that regenerates every figure (:mod:`repro.experiments`);
* an observability layer — metrics registry, admission-decision
  tracing, profiling hooks and exporters (:mod:`repro.obs`);
* an online admission-control service — incremental engine, JSON
  protocol, HTTP server, checkpoint/restore and trace replay
  (:mod:`repro.service`).

Quickstart
----------
>>> from repro.experiments import ScenarioConfig, run_scenario
>>> result = run_scenario(ScenarioConfig(policy="librarisk", num_jobs=300))
>>> 0.0 <= result.metrics.pct_deadlines_fulfilled <= 100.0
True
"""

__version__ = "1.0.0"

from repro.cluster import Cluster, Job, JobState, ResourceManagementSystem, UrgencyClass
from repro.obs import MetricsRegistry, ObsSession, RunSink
from repro.scheduling import (
    EDFPolicy,
    LibraPolicy,
    LibraRiskPolicy,
    available_policies,
    make_policy,
)
from repro.service import AdmissionEngine, Decision, EngineConfig
from repro.sim import RngStreams, Simulator

__all__ = [
    "AdmissionEngine",
    "Cluster",
    "Decision",
    "EDFPolicy",
    "EngineConfig",
    "Job",
    "JobState",
    "LibraPolicy",
    "LibraRiskPolicy",
    "MetricsRegistry",
    "ObsSession",
    "ResourceManagementSystem",
    "RngStreams",
    "RunSink",
    "Simulator",
    "UrgencyClass",
    "__version__",
    "available_policies",
    "make_policy",
]
