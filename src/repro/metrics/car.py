"""Computation-at-Risk (CaR) metrics — Kleban & Clearwater [7], [8].

The paper's deadline-delay risk is built "analogous to the CaR
approach", which transplants Value-at-Risk from finance to clusters:
given the distribution of a badness measure over a job portfolio
(makespan = response time, or expansion factor = slowdown), the CaR at
confidence ``q`` is the q-quantile — "with probability q, a job's
response time will not exceed CaR_q".  The *conditional* CaR (CCaR) is
the mean badness beyond that quantile, the expected severity of the
bad tail.

Implementing the reference metric lets the test-suite and analyses
compare what the paper's per-node σ buys over portfolio-level risk:
CaR describes the damage distribution after the fact; LibraRisk's σ is
actionable *at admission time*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.job import Job

MEASURES = ("makespan", "expansion_factor")


def _badness(jobs: Sequence[Job], measure: str) -> np.ndarray:
    if measure not in MEASURES:
        raise ValueError(f"measure must be one of {MEASURES}, got {measure!r}")
    values = []
    for job in jobs:
        if not job.completed:
            continue
        values.append(job.response_time if measure == "makespan" else job.slowdown)
    return np.asarray(values, dtype=float)


@dataclass(frozen=True)
class CaRReport:
    """Computation-at-Risk summary of one completed job portfolio."""

    measure: str
    confidence: float
    #: The q-quantile of the badness distribution (CaR_q).
    car: float
    #: Mean badness beyond the quantile (conditional CaR).
    conditional_car: float
    #: Portfolio mean, for scale.
    mean: float
    n_jobs: int

    @property
    def tail_ratio(self) -> float:
        """How much worse the bad tail is than the typical job."""
        return self.conditional_car / self.mean if self.mean > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "car": self.car,
            "conditional_car": self.conditional_car,
            "mean": self.mean,
            "tail_ratio": self.tail_ratio,
            "n_jobs": float(self.n_jobs),
        }


def computation_at_risk(
    jobs: Sequence[Job],
    measure: str = "makespan",
    confidence: float = 0.95,
) -> CaRReport:
    """CaR/CCaR of the completed jobs in ``jobs``.

    Parameters
    ----------
    jobs:
        Any mix of job states; only completed jobs enter the portfolio.
    measure:
        ``"makespan"`` (response time, seconds) or
        ``"expansion_factor"`` (slowdown, dimensionless).
    confidence:
        Quantile level ``q`` in (0, 1).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    values = _badness(jobs, measure)
    if values.size == 0:
        raise ValueError("no completed jobs to assess")
    car = float(np.quantile(values, confidence))
    tail = values[values >= car]
    return CaRReport(
        measure=measure,
        confidence=confidence,
        car=car,
        conditional_car=float(tail.mean()) if tail.size else car,
        mean=float(values.mean()),
        n_jobs=int(values.size),
    )


def car_by_policy(
    results: dict[str, Sequence[Job]],
    measure: str = "expansion_factor",
    confidence: float = 0.95,
) -> dict[str, CaRReport]:
    """CaR reports for several policies' completed portfolios."""
    return {
        name: computation_at_risk(jobs, measure=measure, confidence=confidence)
        for name, jobs in results.items()
    }
