"""Time-series observation of a running simulation.

The paper reports end-of-run aggregates only; for debugging, ablation
analysis and plots it is useful to watch the cluster *evolve*: load,
running/queued job counts, cumulative acceptance.  A
:class:`SimulationMonitor` samples at a fixed simulated period using
MONITOR-priority events (so samples always observe settled state), and
stores plain lists cheap to post-process with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.events import Event, EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.rms import ResourceManagementSystem
    from repro.sim.kernel import Simulator


@dataclass
class TimeSeries:
    """One sampled series: aligned times and values."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def at_or_before(self, t: float) -> Optional[float]:
        """Last sampled value at or before time ``t`` (None if nothing yet)."""
        result = None
        for ts, v in zip(self.times, self.values):
            if ts > t:
                break
            result = v
        return result


class SimulationMonitor:
    """Periodic sampler of cluster/RMS state.

    Series collected every ``period`` simulated seconds:

    * ``busy_nodes``     — nodes with at least one resident task;
    * ``running_jobs``   — distinct jobs with a resident task;
    * ``allocated_share``— total nominal rate over all tasks (node
      capacities; equals busy node count on space-shared clusters);
    * ``accepted``/``rejected``/``completed`` — cumulative RMS counts.

    Sampling stops automatically once the RMS has resolved every
    submitted job and the cluster is idle, so a monitor never keeps a
    drained simulation alive indefinitely — but it samples at least
    ``min_samples`` times.
    """

    SERIES = ("busy_nodes", "running_jobs", "allocated_share",
              "accepted", "rejected", "completed")

    def __init__(
        self,
        sim: "Simulator",
        cluster: "Cluster",
        rms: "ResourceManagementSystem",
        period: float = 3600.0,
        min_samples: int = 2,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.sim = sim
        self.cluster = cluster
        self.rms = rms
        self.period = float(period)
        self.min_samples = int(min_samples)
        self.series: dict[str, TimeSeries] = {name: TimeSeries(name) for name in self.SERIES}
        self._armed = False

    # -- control ---------------------------------------------------------------
    def start(self) -> None:
        """Arm the sampler; the first sample fires at the current time.

        The sample is a MONITOR-priority event rather than a direct
        call, so arrivals and completions scheduled for this same
        instant are observed, not missed.
        """
        if self._armed:
            raise RuntimeError("monitor already started")
        self._armed = True
        self.sim.schedule(
            0.0,
            self._sample_event,
            priority=EventPriority.MONITOR,
            name="monitor:sample",
        )

    def _sample_event(self, _event: Optional[Event]) -> None:
        self.sample()
        if self._should_continue():
            self.sim.schedule(
                self.period,
                self._sample_event,
                priority=EventPriority.MONITOR,
                name="monitor:sample",
            )

    def _should_continue(self) -> bool:
        if len(self.series["busy_nodes"]) < self.min_samples:
            return True
        unresolved = (
            len(self.rms.jobs) - len(self.rms.completed)
            - len(self.rms.rejected) - len(self.rms.failed)
        )
        pending_submissions = any(
            not ev.name.startswith("monitor:") for ev in self.sim.iter_pending()
        )
        return unresolved > 0 or pending_submissions

    # -- sampling --------------------------------------------------------------
    def sample(self) -> None:
        """Record one observation of the current state."""
        now = self.sim.now
        busy = sum(1 for n in self.cluster if not n.idle)
        running = len(self.cluster.running_jobs())
        share = 0.0
        for node in self.cluster:
            for task in node.tasks.values():
                share += task.rate
        self.series["busy_nodes"].append(now, float(busy))
        self.series["running_jobs"].append(now, float(running))
        self.series["allocated_share"].append(now, share)
        self.series["accepted"].append(now, float(len(self.rms.accepted)))
        self.series["rejected"].append(now, float(len(self.rms.rejected)))
        self.series["completed"].append(now, float(len(self.rms.completed)))

    # -- views -------------------------------------------------------------------
    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]

    def peak_busy_nodes(self) -> float:
        return self.series["busy_nodes"].peak

    def mean_running_jobs(self) -> float:
        return self.series["running_jobs"].mean
