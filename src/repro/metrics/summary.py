"""Scenario metric computation from completed job sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job, JobState, UrgencyClass


@dataclass(frozen=True)
class ClassBreakdown:
    """Headline metrics restricted to one urgency class."""

    submitted: int
    fulfilled: int

    @property
    def pct_fulfilled(self) -> float:
        return 100.0 * self.fulfilled / self.submitted if self.submitted else 0.0


@dataclass(frozen=True)
class ScenarioMetrics:
    """Everything one simulation run reports."""

    total_submitted: int
    accepted: int
    rejected: int
    completed: int
    #: Accepted but unfinished at the simulation horizon.
    unfinished: int
    #: Accepted jobs killed by node failures.
    failed: int
    #: Jobs completed within their deadline.
    deadlines_fulfilled: int
    #: Paper metric (i): fulfilled / submitted, in percent.
    pct_deadlines_fulfilled: float
    #: Paper metric (ii): mean slowdown over fulfilled jobs only.
    avg_slowdown: float
    #: Mean Eq. 3 delay over completed-but-late jobs (0 if none).
    avg_delay_of_late_jobs: float
    #: Completed-late count (accepted, finished, missed deadline).
    completed_late: int
    #: Cluster utilisation over the simulated span (0 when unknown).
    utilisation: float
    high_urgency: ClassBreakdown
    low_urgency: ClassBreakdown

    @property
    def acceptance_pct(self) -> float:
        return 100.0 * self.accepted / self.total_submitted if self.total_submitted else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dict for CSV/table rendering."""
        return {
            "total_submitted": self.total_submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "unfinished": self.unfinished,
            "failed": self.failed,
            "deadlines_fulfilled": self.deadlines_fulfilled,
            "pct_deadlines_fulfilled": self.pct_deadlines_fulfilled,
            "avg_slowdown": self.avg_slowdown,
            "avg_delay_of_late_jobs": self.avg_delay_of_late_jobs,
            "completed_late": self.completed_late,
            "utilisation": self.utilisation,
            "acceptance_pct": self.acceptance_pct,
            "high_pct_fulfilled": self.high_urgency.pct_fulfilled,
            "low_pct_fulfilled": self.low_urgency.pct_fulfilled,
            # Raw per-class counts: the percentages above are ratios and
            # cannot be recombined across engines, so anything merging
            # metrics from several shards needs the numerators and
            # denominators themselves (see repro.service.sharding.router).
            "high_submitted": self.high_urgency.submitted,
            "high_fulfilled": self.high_urgency.fulfilled,
            "low_submitted": self.low_urgency.submitted,
            "low_fulfilled": self.low_urgency.fulfilled,
        }


def _class_breakdown(jobs: Sequence[Job], cls: UrgencyClass) -> ClassBreakdown:
    members = [j for j in jobs if j.urgency is cls]
    fulfilled = sum(1 for j in members if j.deadline_met)
    return ClassBreakdown(submitted=len(members), fulfilled=fulfilled)


def compute_metrics(
    jobs: Sequence[Job],
    cluster: Optional[Cluster] = None,
    horizon: Optional[float] = None,
) -> ScenarioMetrics:
    """Compute the paper's metrics over every *submitted* job.

    Parameters
    ----------
    jobs:
        All jobs that were submitted to the RMS (any state).
    cluster, horizon:
        When both are given, cluster utilisation over ``[0, horizon]``
        is included.
    """
    submitted = [j for j in jobs if j.state is not JobState.CREATED]
    accepted = [j for j in submitted if j.accepted]
    rejected = [j for j in submitted if j.state is JobState.REJECTED]
    completed = [j for j in submitted if j.completed]
    failed = [j for j in submitted if j.state is JobState.FAILED]
    fulfilled = [j for j in completed if j.deadline_met]
    late = [j for j in completed if not j.deadline_met]

    slowdowns = [j.slowdown for j in fulfilled]
    delays = [j.delay for j in late]

    utilisation = 0.0
    if cluster is not None and horizon is not None and horizon > 0:
        utilisation = cluster.utilisation(horizon)

    return ScenarioMetrics(
        total_submitted=len(submitted),
        accepted=len(accepted),
        rejected=len(rejected),
        completed=len(completed),
        unfinished=len(accepted) - len(completed) - len(failed),
        failed=len(failed),
        deadlines_fulfilled=len(fulfilled),
        pct_deadlines_fulfilled=(
            100.0 * len(fulfilled) / len(submitted) if submitted else 0.0
        ),
        avg_slowdown=(sum(slowdowns) / len(slowdowns)) if slowdowns else 0.0,
        avg_delay_of_late_jobs=(sum(delays) / len(delays)) if delays else 0.0,
        completed_late=len(late),
        utilisation=utilisation,
        high_urgency=_class_breakdown(submitted, UrgencyClass.HIGH),
        low_urgency=_class_breakdown(submitted, UrgencyClass.LOW),
    )
