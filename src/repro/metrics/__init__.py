"""Performance metrics of the paper's evaluation (§5).

The two headline metrics:

* **percentage of jobs with deadlines fulfilled** — jobs completed
  within their specified deadline, out of **all submitted** jobs
  (rejected jobs count against the percentage);
* **average slowdown** — response time over minimum runtime, averaged
  **only over jobs whose deadlines were fulfilled** (the paper's
  emphasis is meeting deadlines, so delayed/rejected jobs are not
  mixed into the slowdown figure).
"""

from repro.metrics.summary import (
    ClassBreakdown,
    ScenarioMetrics,
    compute_metrics,
)
from repro.metrics.car import CaRReport, car_by_policy, computation_at_risk
from repro.metrics.timeseries import SimulationMonitor, TimeSeries

__all__ = [
    "CaRReport",
    "ClassBreakdown",
    "ScenarioMetrics",
    "SimulationMonitor",
    "TimeSeries",
    "car_by_policy",
    "compute_metrics",
    "computation_at_risk",
]
