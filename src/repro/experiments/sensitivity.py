"""One-factor-at-a-time sensitivity analysis around the base scenario.

The paper sweeps four axes; everything else (deadline CV, the overrun
floor, the urgency-class mean factor, cluster size, ...) is held at a
default the OCR lost.  This module quantifies how much each such
choice matters: every knob is nudged low/high around the base config
and the change in the headline metric is recorded per policy — a
tornado-style robustness check on the reproduction's conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import run_scenario

#: (config field, low value, high value) nudges around the defaults.
DEFAULT_KNOBS: tuple[tuple[str, Any, Any], ...] = (
    ("deadline_cv", 0.1, 0.5),
    ("deadline_low_factor_mean", 1.5, 3.0),
    ("overrun_floor_share", 0.01, 0.25),
    ("high_urgency_fraction", 0.1, 0.4),
    ("deadline_ratio", 2.0, 8.0),
    ("num_nodes", 96, 160),
)


@dataclass(frozen=True)
class KnobSensitivity:
    """Effect of one knob on one policy's headline metric."""

    knob: str
    low_value: Any
    high_value: Any
    base_metric: float
    low_metric: float
    high_metric: float

    @property
    def swing(self) -> float:
        """Total range of the metric across the knob's nudges."""
        return max(self.base_metric, self.low_metric, self.high_metric) - min(
            self.base_metric, self.low_metric, self.high_metric
        )


@dataclass(frozen=True)
class SensitivityResult:
    """All knobs for one policy, sorted by swing (largest first)."""

    policy: str
    metric: str
    knobs: tuple[KnobSensitivity, ...]

    def render(self) -> str:
        rows = [
            [k.knob, k.low_value, k.high_value,
             k.low_metric, k.base_metric, k.high_metric, k.swing]
            for k in self.knobs
        ]
        return (
            f"--- Sensitivity of {self.policy} ({self.metric}) ---\n"
            + render_table(
                ["knob", "low", "high", "metric@low", "metric@base",
                 "metric@high", "swing"],
                rows,
            )
        )

    def most_sensitive(self) -> str:
        return self.knobs[0].knob


def sensitivity(
    base: Optional[ScenarioConfig] = None,
    policy: str = "librarisk",
    metric: str = "pct_deadlines_fulfilled",
    knobs: Sequence[tuple[str, Any, Any]] = DEFAULT_KNOBS,
) -> SensitivityResult:
    """One-factor-at-a-time sensitivity of ``metric`` for ``policy``."""
    base = (base or ScenarioConfig()).replace(policy=policy)
    base_metric = run_scenario(base).metrics.as_dict()[metric]
    results = []
    for knob, low, high in knobs:
        low_metric = run_scenario(base.replace(**{knob: low})).metrics.as_dict()[metric]
        high_metric = run_scenario(base.replace(**{knob: high})).metrics.as_dict()[metric]
        results.append(KnobSensitivity(
            knob=knob, low_value=low, high_value=high,
            base_metric=base_metric, low_metric=low_metric, high_metric=high_metric,
        ))
    results.sort(key=lambda k: -k.swing)
    return SensitivityResult(policy=policy, metric=metric, knobs=tuple(results))


def advantage_sensitivity(
    base: Optional[ScenarioConfig] = None,
    knobs: Sequence[tuple[str, Any, Any]] = DEFAULT_KNOBS,
) -> dict[str, float]:
    """LibraRisk-minus-Libra advantage (pp fulfilled) per knob setting.

    The reproduction's conclusion is robust iff the advantage stays
    positive across every nudge; the returned mapping records the
    advantage at each (knob, setting) pair plus the base.
    """
    base = base or ScenarioConfig()

    def gap(cfg: ScenarioConfig) -> float:
        risk = run_scenario(cfg.replace(policy="librarisk")).metrics
        libra = run_scenario(cfg.replace(policy="libra")).metrics
        return risk.pct_deadlines_fulfilled - libra.pct_deadlines_fulfilled

    out = {"base": gap(base)}
    for knob, low, high in knobs:
        out[f"{knob}={low}"] = gap(base.replace(**{knob: low}))
        out[f"{knob}={high}"] = gap(base.replace(**{knob: high}))
    return out
