"""Robustness experiment: admission controls under node failures.

Beyond the paper: real clusters lose nodes, and an admission control
that guaranteed a deadline on admission cannot keep the promise for a
job whose node dies.  This experiment sweeps the failure intensity
(node MTBF) and reports each policy's deadline fulfilment, failure
casualties, and acceptance — quantifying how gracefully each degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.failures import NodeFailureInjector
from repro.cluster.rms import ResourceManagementSystem
from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import build_scenario_jobs
from repro.metrics.summary import ScenarioMetrics, compute_metrics
from repro.scheduling.registry import make_policy, policy_discipline
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams

#: MTBF values in node-hours (None = no failures), default sweep.
DEFAULT_MTBFS: tuple = (None, 500.0, 100.0, 20.0)


@dataclass(frozen=True)
class RobustnessCell:
    """One (policy, mtbf) measurement."""

    policy: str
    mtbf_hours: Optional[float]
    metrics: ScenarioMetrics
    failures_injected: int


@dataclass(frozen=True)
class RobustnessResult:
    """The full policy × failure-intensity grid."""

    cells: tuple[RobustnessCell, ...]

    def cell(self, policy: str, mtbf_hours: Optional[float]) -> RobustnessCell:
        for c in self.cells:
            if c.policy == policy and c.mtbf_hours == mtbf_hours:
                return c
        raise KeyError((policy, mtbf_hours))

    def render(self) -> str:
        rows = []
        for c in self.cells:
            mtbf = "none" if c.mtbf_hours is None else f"{c.mtbf_hours:g}h"
            m = c.metrics
            rows.append([
                c.policy, mtbf, c.failures_injected,
                m.pct_deadlines_fulfilled, m.failed, m.acceptance_pct,
            ])
        return render_table(
            ["policy", "MTBF", "node failures", "fulfilled %", "jobs killed",
             "accepted %"],
            rows,
        )


def run_with_failures(
    config: ScenarioConfig,
    mtbf_hours: Optional[float],
    repair_hours: float = 2.0,
) -> RobustnessCell:
    """One scenario with (optional) failure injection."""
    jobs = build_scenario_jobs(config)
    horizon_guess = max(j.submit_time for j in jobs) + 864_000.0
    sim = Simulator()
    cluster = Cluster.homogeneous(
        sim,
        config.num_nodes,
        rating=config.rating,
        discipline=policy_discipline(config.policy),
        share_params=config.share_params(),
    )
    policy = make_policy(config.policy, **config.policy_kwargs)
    rms = ResourceManagementSystem(sim, cluster, policy)
    rms.submit_all(jobs)

    injector = None
    if mtbf_hours is not None:
        injector = NodeFailureInjector(
            sim, cluster, policy, RngStreams(seed=config.seed).spawn("failures"),
            mtbf=mtbf_hours * 3600.0,
            repair_time=repair_hours * 3600.0,
            horizon=horizon_guess,
        )
        injector.start()
    sim.run()
    return RobustnessCell(
        policy=config.policy,
        mtbf_hours=mtbf_hours,
        metrics=compute_metrics(rms.jobs, cluster, sim.now),
        failures_injected=injector.failures_injected if injector else 0,
    )


def robustness_grid(
    base: Optional[ScenarioConfig] = None,
    policies: Sequence[str] = ("edf", "libra", "librarisk"),
    mtbfs: Sequence[Optional[float]] = DEFAULT_MTBFS,
) -> RobustnessResult:
    """Sweep failure intensity for each policy (matched workloads)."""
    base = (base or ScenarioConfig()).replace(estimate_mode="trace")
    cells = []
    for policy in policies:
        for mtbf in mtbfs:
            cells.append(run_with_failures(base.replace(policy=policy), mtbf))
    return RobustnessResult(cells=tuple(cells))
