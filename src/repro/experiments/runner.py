"""Run one scenario deterministically and collect its metrics.

The workload-construction streams are derived from the scenario seed
only (not from the policy), so two scenarios differing only in
``policy`` simulate **identical** job streams — the paper's comparisons
are paired, and so are ours.

Observability: pass an :class:`~repro.obs.session.ObsSession` to
:func:`run_scenario` (or install a :class:`~repro.obs.session.RunSink`
around any multi-run helper — figures, sweeps, :func:`run_policies`) and
every run records its admission decisions, lifecycle transitions and
final metrics; see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.rms import ResourceManagementSystem
from repro.experiments.config import ScenarioConfig
from repro.metrics.summary import ScenarioMetrics, compute_metrics
from repro.obs.log import get_logger
from repro.obs.session import ObsSession, active_sink
from repro.scheduling.registry import make_policy, policy_discipline
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.workload.swf import SWFRecord
from repro.workload.synthetic import generate_sdsc_like_records
from repro.workload.traces import build_jobs, tail_subset

log = get_logger("experiments.runner")


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one simulated scenario."""

    config: ScenarioConfig
    metrics: ScenarioMetrics
    #: Simulated horizon (time of the last event), seconds.
    horizon: float
    #: Kernel events fired.
    events: int
    #: Wall-clock seconds the simulation took.
    elapsed: float
    #: The finalized observability session, when the run was observed.
    obs: Optional[ObsSession] = None

    def __str__(self) -> str:
        m = self.metrics
        return (
            f"{self.config.label():40s} fulfilled={m.pct_deadlines_fulfilled:6.2f}% "
            f"slowdown={m.avg_slowdown:7.2f} accepted={m.acceptance_pct:6.2f}%"
        )


def load_base_records(config: ScenarioConfig) -> list[SWFRecord]:
    """The base trace for a scenario: real SWF tail subset or synthetic."""
    if config.trace_path is not None:
        from repro.workload.swf import read_swf_file

        _, records = read_swf_file(config.trace_path)
        return tail_subset(records, config.num_jobs)
    streams = RngStreams(seed=config.seed)
    return generate_sdsc_like_records(config.synthetic_model(), streams)


def build_scenario_jobs(config: ScenarioConfig) -> list[Job]:
    """Construct the exact job stream a scenario will submit."""
    records = load_base_records(config)
    streams = RngStreams(seed=config.seed)
    return build_jobs(records, config.workload_spec(), streams)


def run_scenario(
    config: ScenarioConfig,
    jobs: Optional[Sequence[Job]] = None,
    obs: Optional[ObsSession] = None,
) -> ScenarioResult:
    """Simulate one scenario to completion and compute its metrics.

    Parameters
    ----------
    config:
        The scenario.
    jobs:
        Optional pre-built job stream.  **Must** be freshly built (jobs
        are stateful); passing one lets callers reuse the expensive
        record-generation step across policies via
        :func:`build_scenario_jobs`.
    obs:
        Optional observability session to attach to this run.  When
        omitted and a :class:`~repro.obs.session.RunSink` is active, a
        session is created automatically and its records handed to the
        sink; with neither, the run is completely uninstrumented (the
        hooks cost one ``is None`` check each).
    """
    job_list = list(jobs) if jobs is not None else build_scenario_jobs(config)

    sink = active_sink() if obs is None else None
    session = obs if obs is not None else (
        sink.new_session(config) if sink is not None else None
    )

    t0 = time.perf_counter()
    sim = Simulator()
    cluster = Cluster.homogeneous(
        sim,
        config.num_nodes,
        rating=config.rating,
        discipline=policy_discipline(config.policy),
        share_params=config.share_params(),
    )
    policy = make_policy(config.policy, **config.policy_kwargs)
    rms = ResourceManagementSystem(sim, cluster, policy)
    if session is None:
        rms.submit_all(job_list)
        sim.run()
    else:
        session.attach(sim, rms, policy)
        with session.span("submit"):
            rms.submit_all(job_list)
        with session.span("run"):
            sim.run()
    elapsed = time.perf_counter() - t0

    if session is None:
        metrics = compute_metrics(rms.jobs, cluster, sim.now)
    else:
        with session.span("collect"):
            metrics = compute_metrics(rms.jobs, cluster, sim.now)
        session.finalize(metrics=metrics, sim=sim)
        if sink is not None:
            sink.take(session)
        log.info(
            "scenario %s: %d events in %.3fs wall-clock",
            config.label(), sim.events_fired, elapsed,
        )
    return ScenarioResult(
        config=config,
        metrics=metrics,
        horizon=sim.now,
        events=sim.events_fired,
        elapsed=elapsed,
        obs=session,
    )


def run_policies(
    base: ScenarioConfig,
    policies: Sequence[str | tuple[str, dict]],
) -> dict[str, ScenarioResult]:
    """Run the same scenario under several policies (paired comparison).

    ``policies`` entries are either a registry name or a
    ``(name, policy_kwargs)`` pair; the result key is the name (with a
    ``#i`` suffix on duplicates).
    """
    out: dict[str, ScenarioResult] = {}
    for entry in policies:
        if isinstance(entry, str):
            name, kwargs = entry, {}
        else:
            name, kwargs = entry
        config = base.replace(policy=name, policy_kwargs=dict(kwargs))
        key = name
        i = 1
        while key in out:
            i += 1
            key = f"{name}#{i}"
        out[key] = run_scenario(config)
    return out
