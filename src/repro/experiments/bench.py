"""Tracked admission-control benchmarks (``repro bench``).

Two cost surfaces matter for the serving story:

* **batch scenario throughput** — the closed ``run_scenario`` loop the
  figures use (jobs/s over the whole simulate-everything run, kernel
  events/s);
* **online submit throughput** — the :class:`AdmissionEngine` serving
  path added by the service layer: per-job ``submit`` latency
  (p50/p90/p99) and sustained jobs/s, which is what a live deployment
  experiences per request.

``repro bench`` measures both for every policy and records them in
``BENCH_admission.json`` at the repo root, keyed by a scale label, with
a ``baseline`` (recorded once per optimisation effort, before the
change) and a ``current`` entry per label.  The committed file is the
perf trajectory future PRs are held against — see
``docs/PERFORMANCE.md`` and ``scripts/perf_smoke.py``.

Wall-clock numbers are machine-dependent; the regression check is
therefore *relative* (current vs. baseline ratio), never absolute.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from typing import Any, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_scenario_jobs, run_scenario

#: Bumped when the JSON layout of BENCH_admission.json changes.
BENCH_SCHEMA = 1

#: Default benchmark file at the repo root.
BENCH_FILENAME = "BENCH_admission.json"

#: Instrumentation-overhead benchmark file (``repro bench --obs``).
BENCH_OBS_FILENAME = "BENCH_obs.json"

#: Sharded submit-throughput benchmark file (``repro bench --shards``).
BENCH_SHARD_FILENAME = "BENCH_shard.json"

#: Acceptable tracing+windowed-telemetry overhead on the submit path.
MAX_OBS_OVERHEAD_PCT = 5.0

DEFAULT_POLICIES = ("edf", "libra", "librarisk")


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def bench_label(jobs: int, nodes: int) -> str:
    """Canonical section label for one benchmark scale."""
    if jobs == 3000 and nodes == 128:
        return "paper"
    return f"jobs{jobs}x{nodes}"


def bench_scenario(config: ScenarioConfig, repeats: int = 1) -> dict[str, Any]:
    """Time the closed batch run of one scenario (best of ``repeats``)."""
    best: Optional[dict[str, Any]] = None
    for _ in range(max(1, repeats)):
        result = run_scenario(config, jobs=build_scenario_jobs(config))
        wall = result.elapsed
        record = {
            "wall_s": round(wall, 4),
            "events": result.events,
            "events_per_sec": round(result.events / wall) if wall > 0 else 0,
            "jobs_per_sec": round(config.num_jobs / wall, 1) if wall > 0 else 0.0,
        }
        if best is None or record["wall_s"] < best["wall_s"]:
            best = record
    assert best is not None
    return best


def bench_engine(config: ScenarioConfig, repeats: int = 1) -> dict[str, Any]:
    """Time the online serving path: per-submit latency and throughput."""
    from repro.service.engine import engine_for_scenario

    best: Optional[dict[str, Any]] = None
    for _ in range(max(1, repeats)):
        jobs = build_scenario_jobs(config)
        engine = engine_for_scenario(config)
        latencies: list[float] = []
        t0 = time.perf_counter()
        for job in jobs:
            t = time.perf_counter()
            engine.submit(job)
            latencies.append(time.perf_counter() - t)
        submit_wall = time.perf_counter() - t0
        t = time.perf_counter()
        engine.drain()
        drain_wall = time.perf_counter() - t
        latencies.sort()
        n = len(latencies)
        record = {
            "submit_wall_s": round(submit_wall, 4),
            "jobs_per_sec": round(n / submit_wall, 1) if submit_wall > 0 else 0.0,
            "latency_us": {
                "mean": round(1e6 * submit_wall / n, 1) if n else 0.0,
                "p50": round(1e6 * _percentile(latencies, 50.0), 1),
                "p90": round(1e6 * _percentile(latencies, 90.0), 1),
                "p99": round(1e6 * _percentile(latencies, 99.0), 1),
                "max": round(1e6 * latencies[-1], 1) if latencies else 0.0,
            },
            "drain_wall_s": round(drain_wall, 4),
            "events": engine.sim.events_fired,
            "events_per_sec": (
                round(engine.sim.events_fired / (submit_wall + drain_wall))
                if submit_wall + drain_wall > 0
                else 0
            ),
        }
        if best is None or record["submit_wall_s"] < best["submit_wall_s"]:
            best = record
    assert best is not None
    return best


def run_bench(
    jobs: int = 3000,
    nodes: int = 128,
    seed: int = 42,
    policies: Sequence[str] = DEFAULT_POLICIES,
    repeats: int = 1,
    progress=None,
) -> dict[str, Any]:
    """Run the full benchmark suite at one scale; returns the section body."""
    out: dict[str, Any] = {
        "scale": {"jobs": jobs, "nodes": nodes, "seed": seed},
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.machine() or "unknown",
        },
        "policies": {},
    }
    for policy in policies:
        config = ScenarioConfig(
            num_jobs=jobs, num_nodes=nodes, seed=seed, policy=policy
        )
        if progress is not None:
            progress(f"bench {policy}: batch scenario ({jobs} jobs x {nodes} nodes)")
        scenario = bench_scenario(config, repeats=repeats)
        if progress is not None:
            progress(f"bench {policy}: engine submit microbenchmark")
        engine = bench_engine(config, repeats=repeats)
        out["policies"][policy] = {"scenario": scenario, "engine": engine}
    return out


def _bench_obs_pass(config: ScenarioConfig, telemetry: bool) -> dict[str, Any]:
    """One timed submit+drain pass with telemetry on or off."""
    from repro.service.engine import engine_for_scenario

    jobs = build_scenario_jobs(config)
    engine = engine_for_scenario(config, telemetry=telemetry)
    n = len(jobs)
    t0 = time.perf_counter()
    for job in jobs:
        engine.submit(job)
    engine.drain()
    wall = time.perf_counter() - t0
    return {
        "wall_s": round(wall, 4),
        "jobs_per_sec": round(n / wall, 1) if wall > 0 else 0.0,
        "events_per_sec": (
            round(engine.sim.events_fired / wall) if wall > 0 else 0
        ),
    }


def run_bench_obs(
    jobs: int = 3000,
    nodes: int = 128,
    seed: int = 42,
    policy: str = "librarisk",
    repeats: int = 3,
    progress=None,
) -> dict[str, Any]:
    """Instrumentation-overhead benchmark: tracing+windows on vs off.

    The engine submit path is the only place the deterministic tracing
    ids are minted and the windowed counters are advanced, so the
    on/off delta of a full submit+drain run bounds the observability
    tax a live deployment pays.  Best-of-``repeats`` per mode, modes
    interleaved so thermal/allocator drift hits both equally.
    """
    config = ScenarioConfig(num_jobs=jobs, num_nodes=nodes, seed=seed, policy=policy)
    best: dict[bool, Optional[dict[str, Any]]] = {True: None, False: None}
    # One untimed warmup pass: the first run pays imports, allocator
    # growth and branch-predictor training that neither mode should be
    # charged for.
    if progress is not None:
        progress("bench obs: warmup pass")
    _bench_obs_pass(config, telemetry=True)
    for i in range(max(1, repeats)):
        for telemetry in (True, False):
            if progress is not None:
                mode = "on" if telemetry else "off"
                progress(f"bench obs: pass {i + 1}/{max(1, repeats)} telemetry={mode}")
            record = _bench_obs_pass(config, telemetry)
            prior = best[telemetry]
            if prior is None or record["wall_s"] < prior["wall_s"]:
                best[telemetry] = record
    on, off = best[True], best[False]
    assert on is not None and off is not None
    overhead = (
        (on["wall_s"] - off["wall_s"]) / off["wall_s"] * 100.0
        if off["wall_s"] > 0
        else 0.0
    )
    return {
        "scale": {"jobs": jobs, "nodes": nodes, "seed": seed},
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.machine() or "unknown",
        },
        "policy": policy,
        "telemetry_on": on,
        "telemetry_off": off,
        "overhead_pct": round(overhead, 2),
    }


def check_obs_overhead(
    fresh: dict[str, Any],
    max_overhead_pct: float = MAX_OBS_OVERHEAD_PCT,
) -> list[str]:
    """Gate for CI: does tracing+windowed telemetry cost more than the cap?

    Unlike :func:`check_regression` this is an *absolute* gate on the
    freshly-measured on/off ratio — both passes ran on the same machine
    moments apart, so the ratio is machine-independent.
    """
    overhead = float(fresh.get("overhead_pct", 0.0))
    if overhead > max_overhead_pct:
        return [
            f"observability instrumentation costs {overhead:.2f}% on the "
            f"submit path (cap {max_overhead_pct:g}%); telemetry_on="
            f"{fresh['telemetry_on']['wall_s']}s telemetry_off="
            f"{fresh['telemetry_off']['wall_s']}s"
        ]
    return []


# -- sharded throughput (``repro bench --shards``) ----------------------------

#: Minimum acceptable N-shard over 1-shard submit-throughput ratio.
MIN_SHARD_SCALING = 2.0


def _shard_worker_env() -> dict[str, str]:
    """A child env that can import ``repro`` the way this process does.

    Worker processes are spawned as ``python -m repro serve``; the repo
    is normally driven with ``PYTHONPATH=src``, which children inherit,
    but an installed/relocated parent would not pass it on — so the
    package root is prepended explicitly.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + prior if prior else "")
    return env


def _bench_shard_count(
    config: ScenarioConfig, num_shards: int, batch: int
) -> dict[str, Any]:
    """Spawn ``num_shards`` worker processes and time one full submit run.

    The drive path is the production one end to end: payloads are
    grouped into batch frames, routed by an in-process
    :class:`~repro.service.sharding.ShardRouter` (stable hash, per-shard
    sub-frames, concurrent forwarding) to real ``repro serve``
    subprocesses over HTTP.  One ordered sender, so the measured number
    is the fleet's sustainable ingest rate, not a concurrency artefact.
    """
    import subprocess
    import sys

    from repro.service import protocol
    from repro.service.engine import EngineConfig
    from repro.service.loadgen import job_request_payload
    from repro.service.sharding.router import ShardRouter
    from repro.service.sharding.supervisor import (
        ShardSupervisor,
        WorkerSpec,
        free_ports,
    )

    payloads = [job_request_payload(job) for job in build_scenario_jobs(config)]
    groups = [payloads[i:i + batch] for i in range(0, len(payloads), batch)]
    frames = [
        protocol.encode({
            "v": protocol.PROTOCOL_VERSION, "type": "batch", "jobs": group,
        })
        for group in groups
    ]
    env = _shard_worker_env()
    ports = free_ports(num_shards)
    specs = [
        WorkerSpec(
            shard_id=i,
            cmd=[
                sys.executable, "-m", "repro", "serve",
                "--policy", config.policy,
                "--nodes", str(config.num_nodes),
                "--host", "127.0.0.1", "--port", str(ports[i]),
                "--shard-id", str(i), "--shard-count", str(num_shards),
            ],
            url=f"http://127.0.0.1:{ports[i]}",
            env=env,
        )
        for i in range(num_shards)
    ]
    router = ShardRouter(
        EngineConfig(policy=config.policy, num_nodes=config.num_nodes),
        [spec.url for spec in specs],
    )
    supervisor = ShardSupervisor(
        specs, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    supervisor.router = router
    ok = 0
    errors = 0
    with supervisor:
        supervisor.start(wait_healthy=True, timeout=60.0)
        t0 = time.perf_counter()
        for group, frame in zip(groups, frames):
            status, response = router.handle(frame)
            if response.get("ok"):
                for item in response["results"]:
                    if item.get("ok"):
                        ok += 1
                    else:
                        errors += 1
            else:
                errors += len(group)
        wall = time.perf_counter() - t0
    n = len(payloads)
    return {
        "wall_s": round(wall, 4),
        "jobs_per_sec": round(n / wall, 1) if wall > 0 else 0.0,
        "ok": ok,
        "errors": errors,
        "frames": len(frames),
    }


def run_bench_shard(
    jobs: int = 3000,
    nodes: int = 128,
    seed: int = 42,
    policy: str = "librarisk",
    shard_counts: Sequence[int] = (1, 2, 4),
    batch: int = 64,
    progress=None,
) -> dict[str, Any]:
    """Shard-scaling benchmark: fleet ingest throughput at 1..N workers.

    Every shard count replays the *same* generated workload through a
    fresh fleet (router + worker subprocesses), so the jobs/s ratios
    between counts isolate exactly what sharding buys: smaller per-shard
    node scans plus real process parallelism.  Like the observability gate,
    the scaling check is *absolute* — all counts run on the same machine
    moments apart, so the ratio is machine-independent.
    """
    config = ScenarioConfig(num_jobs=jobs, num_nodes=nodes, seed=seed, policy=policy)
    counts = sorted({int(c) for c in shard_counts})
    if not counts or counts[0] < 1:
        raise ValueError("shard_counts must be positive")
    if nodes < counts[-1]:
        raise ValueError("need at least one node per shard")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    shards: dict[str, Any] = {}
    for count in counts:
        if progress is not None:
            progress(
                f"bench shards: {count} worker(s), {jobs} jobs (batch {batch})"
            )
        shards[str(count)] = _bench_shard_count(config, count, batch)
    base_rate = shards[str(counts[0])]["jobs_per_sec"]
    scaling = {
        str(count): (
            round(shards[str(count)]["jobs_per_sec"] / base_rate, 2)
            if base_rate
            else 0.0
        )
        for count in counts[1:]
    }
    return {
        "scale": {"jobs": jobs, "nodes": nodes, "seed": seed},
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.machine() or "unknown",
        },
        "policy": policy,
        "batch": batch,
        "shards": shards,
        #: jobs/s ratio of each count over the smallest measured count.
        "scaling": scaling,
    }


def check_shard_scaling(
    fresh: dict[str, Any],
    min_scaling: float = MIN_SHARD_SCALING,
) -> list[str]:
    """Gate for CI: does the largest fleet beat 1 shard by enough?

    An *absolute* gate on freshly-measured same-machine ratios (like
    :func:`check_obs_overhead`): the largest shard count must reach at
    least ``min_scaling``x the single-shard throughput, and no count may
    have dropped a single submit.
    """
    failures: list[str] = []
    for count, record in sorted(
        fresh.get("shards", {}).items(), key=lambda kv: int(kv[0])
    ):
        if record.get("errors"):
            failures.append(
                f"{count} shard(s): {record['errors']} submit(s) failed"
            )
    scaling = fresh.get("scaling", {})
    if not scaling:
        failures.append("no multi-shard measurement to check scaling with")
        return failures
    top = max(scaling, key=int)
    ratio = float(scaling[top])
    if ratio < min_scaling:
        failures.append(
            f"{top} shards only reach {ratio:.2f}x the single-shard submit "
            f"throughput (floor {min_scaling:g}x)"
        )
    return failures


# -- the tracked file ---------------------------------------------------------

def load_bench_file(path: str) -> dict[str, Any]:
    """Load ``BENCH_admission.json`` (empty skeleton when absent)."""
    if os.path.exists(path) and os.path.getsize(path) > 0:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: expected a JSON object")
        doc.setdefault("schema", BENCH_SCHEMA)
        doc.setdefault("benchmarks", {})
        return doc
    return {"schema": BENCH_SCHEMA, "benchmarks": {}}


def update_bench_file(
    path: str,
    label: str,
    section: dict[str, Any],
    record_baseline: bool = False,
) -> dict[str, Any]:
    """Merge one benchmark run into the tracked file and write it back.

    The run lands under ``benchmarks.<label>.current`` (or ``.baseline``
    with ``record_baseline``); the other entry is preserved, which is
    what keeps the pre-optimisation numbers and the current numbers in
    the same file for ratio checks.
    """
    doc = load_bench_file(path)
    slot = doc["benchmarks"].setdefault(label, {})
    slot["baseline" if record_baseline else "current"] = section
    with open(path, "w", encoding="utf-8", newline="\n") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return doc


def compare(
    baseline: dict[str, Any], current: dict[str, Any]
) -> list[tuple[str, str, float, float, float]]:
    """Per-policy throughput ratios: ``(policy, metric, base, cur, ratio)``."""
    rows: list[tuple[str, str, float, float, float]] = []
    for policy in sorted(current.get("policies", {})):
        if policy not in baseline.get("policies", {}):
            continue
        for surface, metric in (("engine", "jobs_per_sec"), ("scenario", "jobs_per_sec")):
            base = baseline["policies"][policy][surface][metric]
            cur = current["policies"][policy][surface][metric]
            ratio = cur / base if base else float("inf")
            rows.append((policy, f"{surface}.{metric}", base, cur, ratio))
    return rows


def check_regression(
    doc: dict[str, Any],
    label: str,
    fresh: dict[str, Any],
    max_regression: float = 1.5,
    against: str = "current",
) -> list[str]:
    """Regression check for CI: is ``fresh`` >``max_regression``x slower?

    Compares the engine submit throughput of a freshly-measured run
    against the committed ``against`` entry of ``label``; returns a list
    of human-readable failures (empty = pass).  The threshold absorbs
    machine-to-machine variance — it catches algorithmic regressions,
    not jitter.
    """
    committed = doc.get("benchmarks", {}).get(label, {}).get(against)
    if committed is None:
        return [f"no committed {against!r} entry for label {label!r}"]
    failures: list[str] = []
    for policy, body in committed.get("policies", {}).items():
        if policy not in fresh.get("policies", {}):
            failures.append(f"{policy}: missing from fresh run")
            continue
        base = body["engine"]["jobs_per_sec"]
        cur = fresh["policies"][policy]["engine"]["jobs_per_sec"]
        if base > 0 and cur < base / max_regression:
            failures.append(
                f"{policy}: engine submit throughput {cur:.1f} jobs/s is more "
                f"than {max_regression:g}x below the committed {base:.1f} jobs/s"
            )
    return failures
