"""Experiment harness: scenarios, sweeps, and the paper's figures.

* :mod:`repro.experiments.config` — :class:`ScenarioConfig`, the single
  source of truth for every simulation parameter;
* :mod:`repro.experiments.runner` — :func:`run_scenario`, one
  deterministic simulation → :class:`ScenarioResult`;
* :mod:`repro.experiments.sweeps` — generic one-parameter sweeps over
  multiple policies;
* :mod:`repro.experiments.figures` — regenerators for Figures 1–4 of
  the paper (each returns the four-panel series and renders ASCII);
* :mod:`repro.experiments.ablations` — design-choice ablations beyond
  the paper (suitability rule, node ordering, overrun floor, spare
  redistribution);
* :mod:`repro.experiments.reporting` — ASCII tables and CSV export.
"""

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.sweeps import SweepResult, sweep
from repro.experiments.figures import (
    FigureResult,
    Panel,
    figure1,
    figure2,
    figure3,
    figure4,
    all_figures,
)
from repro.experiments.reporting import metrics_table, render_table, series_table, to_csv
from repro.experiments.ablations import AblationResult, all_ablations
from repro.experiments.extended import extended_comparison
from repro.experiments.replication import ReplicatedResult, replicate, replicate_policies
from repro.experiments.sensitivity import advantage_sensitivity, sensitivity
from repro.experiments.validation import ValidationReport, validate_all, validate_figure
from repro.experiments.report import experiments_markdown
from repro.experiments.robustness import robustness_grid, run_with_failures
from repro.experiments.serialize import load_figure, load_figures, save_figure, save_figures

__all__ = [
    "AblationResult",
    "FigureResult",
    "ReplicatedResult",
    "ValidationReport",
    "advantage_sensitivity",
    "all_ablations",
    "experiments_markdown",
    "extended_comparison",
    "metrics_table",
    "replicate",
    "replicate_policies",
    "sensitivity",
    "load_figure",
    "load_figures",
    "robustness_grid",
    "run_with_failures",
    "save_figure",
    "save_figures",
    "validate_all",
    "validate_figure",
    "Panel",
    "ScenarioConfig",
    "ScenarioResult",
    "SweepResult",
    "all_figures",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "render_table",
    "run_scenario",
    "series_table",
    "sweep",
    "to_csv",
]
