"""Mechanical validation of the paper's §5 claims.

Every qualitative statement the paper makes about its figures is
encoded as a named, checkable claim over the regenerated series.  This
is how EXPERIMENTS.md's paper-versus-measured table is produced, and
how we know a refactor did not silently change who wins.

Claims check *shape*, not absolute values: who wins, whether a series
rises or falls, where crossovers land — the things that should survive
the substitution of a calibrated synthetic trace for the original SDSC
SP2 file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.compare import crossover_points, dominance_fraction, trend
from repro.experiments.figures import FigureResult


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of checking one paper claim."""

    claim_id: str
    source: str          # where the paper states it, e.g. "§5.1"
    description: str
    passed: bool
    detail: str

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.claim_id} ({self.source}): {self.description}\n" \
               f"       measured: {self.detail}"


@dataclass(frozen=True)
class ValidationReport:
    """All claim results for one or more figures."""

    claims: tuple[ClaimResult, ...]

    @property
    def passed(self) -> int:
        return sum(1 for c in self.claims if c.passed)

    @property
    def failed(self) -> int:
        return len(self.claims) - self.passed

    @property
    def all_passed(self) -> bool:
        return self.failed == 0

    def render(self) -> str:
        lines = [c.render() for c in self.claims]
        lines.append(f"--- {self.passed}/{len(self.claims)} paper claims hold ---")
        return "\n".join(lines)


def _fulfilled(fig: FigureResult, panel: str) -> dict[str, list[float]]:
    return fig.panel(panel).series


def _claim(cid, source, description, passed, detail) -> ClaimResult:
    return ClaimResult(cid, source, description, bool(passed), detail)


# -- §5.1 overview claims (checked on any two-mode figure) --------------------
def overview_claims(fig: FigureResult) -> list[ClaimResult]:
    """The claims §5.1 makes about every figure's four panels."""
    a, b = _fulfilled(fig, "a"), _fulfilled(fig, "b")
    c, d = fig.panel("c").series, fig.panel("d").series
    claims = [
        _claim(
            f"F{fig.figure_id}.accurate-beats-trace", "§5.1",
            "every policy fulfils more deadlines with accurate estimates",
            all(
                sum(a[p]) >= sum(b[p])
                for p in ("edf", "libra", "librarisk")
            ),
            ", ".join(f"{p}: {sum(a[p])/len(a[p]):.1f}% vs {sum(b[p])/len(b[p]):.1f}%"
                      for p in ("edf", "libra", "librarisk")),
        ),
        _claim(
            f"F{fig.figure_id}.librarisk-matches-libra-accurate", "§5.1",
            "accurate estimates: LibraRisk fulfils as many jobs as Libra",
            dominance_fraction(a["librarisk"], a["libra"], tolerance=2.0) >= 0.8
            and dominance_fraction(a["libra"], a["librarisk"], tolerance=2.0) >= 0.8,
            f"max gap {max(abs(x - y) for x, y in zip(a['librarisk'], a['libra'])):.2f} pp",
        ),
        _claim(
            f"F{fig.figure_id}.librarisk-beats-libra-trace", "§5.1",
            "trace estimates: LibraRisk fulfils many more jobs than Libra",
            dominance_fraction(b["librarisk"], b["libra"]) == 1.0
            and (sum(b["librarisk"]) - sum(b["libra"])) / len(b["libra"]) > 5.0,
            f"mean gain {(sum(b['librarisk']) - sum(b['libra'])) / len(b['libra']):.1f} pp",
        ),
        _claim(
            f"F{fig.figure_id}.libra-edge-over-edf-shrinks-with-trace", "§5.1",
            "trace estimates: Libra is only barely better than EDF "
            "(its edge is far smaller than LibraRisk's edge over Libra)",
            (sum(b["libra"]) - sum(b["edf"]))
            < (sum(b["librarisk"]) - sum(b["libra"])),
            f"libra-edf {sum(b['libra'])/len(b['libra']) - sum(b['edf'])/len(b['edf']):.1f} pp "
            f"vs librarisk-libra "
            f"{sum(b['librarisk'])/len(b['libra']) - sum(b['libra'])/len(b['libra']):.1f} pp",
        ),
        _claim(
            f"F{fig.figure_id}.same-slowdown-accurate", "§5.1",
            "accurate estimates: Libra and LibraRisk have the same slowdown",
            all(abs(x - y) <= 0.05 * max(x, 1.0)
                for x, y in zip(c["libra"], c["librarisk"])),
            f"max rel gap {max(abs(x - y) / max(x, 1.0) for x, y in zip(c['libra'], c['librarisk'])):.3f}",
        ),
        _claim(
            f"F{fig.figure_id}.librarisk-slowdown-below-libra-trace", "§5.1",
            "trace estimates: LibraRisk achieves lower slowdown than Libra",
            dominance_fraction(d["librarisk"], d["libra"], higher_is_better=False,
                               tolerance=0.05) >= 0.8,
            f"means {sum(d['librarisk'])/len(d['librarisk']):.2f} vs "
            f"{sum(d['libra'])/len(d['libra']):.2f}",
        ),
        _claim(
            f"F{fig.figure_id}.edf-lowest-slowdown", "§5.1",
            "EDF has the lowest average slowdown in every panel",
            all(
                dominance_fraction(series["edf"], series[p], higher_is_better=False,
                                   tolerance=0.02) == 1.0
                for series in (c, d)
                for p in ("libra", "librarisk")
            ),
            f"edf {sum(c['edf'])/len(c['edf']):.2f} (accurate), "
            f"{sum(d['edf'])/len(d['edf']):.2f} (trace)",
        ),
    ]
    return claims


# -- figure-specific claims -----------------------------------------------------
def figure1_claims(fig: FigureResult) -> list[ClaimResult]:
    """§5.2: varying workload."""
    a, b = _fulfilled(fig, "a"), _fulfilled(fig, "b")
    x = list(fig.panel("a").x_values)
    crossings = crossover_points(x, a["edf"], a["libra"])
    claims = [
        _claim(
            "F1.fulfilment-rises-as-load-drops", "§5.2",
            "Libra and LibraRisk fulfil more jobs as the arrival delay factor grows",
            trend(a["libra"], tolerance=1.0) == "increasing"
            and trend(b["librarisk"], tolerance=2.0) in ("increasing", "mixed"),
            f"libra(acc): {trend(a['libra'], tolerance=1.0)}, "
            f"librarisk(trace): {trend(b['librarisk'], tolerance=2.0)}",
        ),
        _claim(
            "F1.edf-wins-under-heaviest-load", "§5.2",
            "EDF fulfils the most jobs at the heaviest workload (factor 0.1)",
            a["edf"][0] >= a["libra"][0] and b["edf"][0] >= b["libra"][0],
            f"accurate {a['edf'][0]:.1f} vs {a['libra'][0]:.1f}; "
            f"trace {b['edf'][0]:.1f} vs {b['libra'][0]:.1f}",
        ),
        _claim(
            "F1.edf-advantage-fades-past-0.3", "§5.2",
            "EDF's advantage over Libra disappears around factor 0.3 "
            "(accurate estimates)",
            bool(crossings) and 0.1 <= crossings[0] <= 0.6,
            f"crossover(s) at {', '.join(f'{c:.2f}' for c in crossings) or 'none'}",
        ),
    ]
    return claims


def figure2_claims(fig: FigureResult) -> list[ClaimResult]:
    """§5.3: varying deadline high:low ratio."""
    a, b = _fulfilled(fig, "a"), _fulfilled(fig, "b")
    d = fig.panel("d").series
    x = list(fig.panel("b").x_values)
    lows = [i for i, v in enumerate(x) if v < 4.0] or [0]
    highs = [i for i, v in enumerate(x) if v >= 4.0] or [len(x) - 1]
    gain = [r - l for r, l in zip(b["librarisk"], b["libra"])]
    mean_low = sum(gain[i] for i in lows) / len(lows)
    mean_high = sum(gain[i] for i in highs) / len(highs)
    return [
        _claim(
            "F2.longer-deadlines-more-fulfilment", "§5.3",
            "more jobs meet their deadlines as the high:low ratio grows",
            trend(a["libra"], tolerance=1.0) == "increasing",
            f"libra(acc): {trend(a['libra'], tolerance=1.0)}",
        ),
        _claim(
            "F2.improvement-higher-at-low-ratio", "§5.3",
            "LibraRisk's gain over Libra is larger when the ratio is low (< 4)",
            mean_low >= mean_high,
            f"mean gain {mean_low:.1f} pp (ratio<4) vs {mean_high:.1f} pp (ratio>=4)",
        ),
        _claim(
            "F2.librarisk-slowdown-improves-with-ratio", "§5.3",
            "LibraRisk keeps a slowdown advantage over Libra as deadlines grow",
            dominance_fraction(d["librarisk"], d["libra"], higher_is_better=False,
                               tolerance=0.05) >= 0.8,
            f"means {sum(d['librarisk'])/len(d['librarisk']):.2f} vs "
            f"{sum(d['libra'])/len(d['libra']):.2f}",
        ),
    ]


def figure3_claims(fig: FigureResult) -> list[ClaimResult]:
    """§5.4: varying the percentage of high urgency jobs."""
    b = _fulfilled(fig, "b")
    gain_first = b["librarisk"][0] - b["libra"][0]
    gain_last = b["librarisk"][-1] - b["libra"][-1]
    return [
        _claim(
            "F3.edf-libra-degrade-with-urgency", "§5.4",
            "EDF and Libra fulfil fewer jobs as high-urgency jobs increase (trace)",
            b["edf"][-1] < b["edf"][0] and b["libra"][-1] < b["libra"][0],
            f"edf {b['edf'][0]:.1f}->{b['edf'][-1]:.1f}, "
            f"libra {b['libra'][0]:.1f}->{b['libra'][-1]:.1f}",
        ),
        _claim(
            "F3.librarisk-holds-up-under-urgency", "§5.4",
            "LibraRisk holds its fulfilment level as urgency grows (trace) "
            "while the others collapse",
            b["librarisk"][-1] >= b["librarisk"][0] - 5.0,
            f"librarisk {b['librarisk'][0]:.1f}->{b['librarisk'][-1]:.1f}",
        ),
        _claim(
            "F3.improvement-grows-with-urgency", "§5.4",
            "LibraRisk's improvement over Libra grows with the share of "
            "high-urgency jobs",
            gain_last > gain_first,
            f"gain {gain_first:.1f} pp -> {gain_last:.1f} pp",
        ),
    ]


def figure4_claims(fig: FigureResult) -> list[ClaimResult]:
    """§5.5: varying estimate inaccuracy (panels split by urgency %)."""
    a, b = _fulfilled(fig, "a"), _fulfilled(fig, "b")
    claims = []
    for label, series in (("a", a), ("b", b)):
        claims.append(_claim(
            f"F4.{label}.fulfilment-degrades-with-inaccuracy", "§5.5",
            f"panel ({label}): fewer deadlines fulfilled as inaccuracy grows",
            series["libra"][-1] < series["libra"][0],
            f"libra {series['libra'][0]:.1f} -> {series['libra'][-1]:.1f}",
        ))
        drop_libra = series["libra"][0] - series["libra"][-1]
        drop_risk = series["librarisk"][0] - series["librarisk"][-1]
        claims.append(_claim(
            f"F4.{label}.librarisk-degrades-least", "§5.5",
            f"panel ({label}): LibraRisk loses the least to inaccuracy",
            drop_risk < drop_libra,
            f"drops: librarisk {drop_risk:.1f} pp vs libra {drop_libra:.1f} pp",
        ))
    claims.append(_claim(
        "F4.high-urgency-advantage-about-doubles", "§5.5",
        "at full inaccuracy LibraRisk's margin over Libra is larger with "
        "80% high-urgency jobs than with 20%",
        (b["librarisk"][-1] - b["libra"][-1]) > (a["librarisk"][-1] - a["libra"][-1]),
        f"margin {a['librarisk'][-1] - a['libra'][-1]:.1f} pp (20%) vs "
        f"{b['librarisk'][-1] - b['libra'][-1]:.1f} pp (80%)",
    ))
    return claims


_FIGURE_CLAIMS: dict[str, Callable[[FigureResult], list[ClaimResult]]] = {
    "1": figure1_claims,
    "2": figure2_claims,
    "3": figure3_claims,
    "4": figure4_claims,
}


def validate_figure(fig: FigureResult) -> ValidationReport:
    """Check every claim the paper makes about one figure."""
    claims: list[ClaimResult] = []
    if fig.figure_id in ("1", "2", "3"):
        claims.extend(overview_claims(fig))
    claims.extend(_FIGURE_CLAIMS[fig.figure_id](fig))
    return ValidationReport(claims=tuple(claims))


def validate_all(figures: dict[str, FigureResult]) -> ValidationReport:
    """Concatenate claim checks over all regenerated figures."""
    claims: list[ClaimResult] = []
    for fid in sorted(figures):
        claims.extend(validate_figure(figures[fid]).claims)
    return ValidationReport(claims=tuple(claims))
