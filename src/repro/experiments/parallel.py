"""Parallel scenario execution across CPU cores.

Every scenario is a pure function of its :class:`ScenarioConfig`
(deterministic seeding, no shared state), so sweeps parallelise
embarrassingly with a process pool.  ``run_scenarios`` preserves input
order and falls back to in-process execution for ``processes <= 1`` or
single-item batches, so callers can thread a ``processes`` knob
through without special-casing.

Figure regeneration at paper scale drops from ~15 minutes to a few
minutes on a typical multi-core machine.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import ScenarioResult, run_scenario


def default_processes() -> int:
    """A safe default worker count (leave one core for the OS)."""
    return max(1, (os.cpu_count() or 2) - 1)


def run_scenarios(
    configs: Sequence[ScenarioConfig],
    processes: Optional[int] = None,
) -> list[ScenarioResult]:
    """Run many scenarios, optionally across a process pool.

    Parameters
    ----------
    configs:
        Scenario configs; results come back in the same order.
    processes:
        Worker processes.  ``None`` uses :func:`default_processes`;
        ``<= 1`` runs sequentially in-process.
    """
    configs = list(configs)
    if processes is None:
        processes = default_processes()
    if processes <= 1 or len(configs) <= 1:
        return [run_scenario(cfg) for cfg in configs]
    # 'fork' (where available) so workers need no importable __main__ —
    # a 'spawn' pool dies in REPL/heredoc contexts.  Workers run pure
    # functions of their pickled config, so inherited state is harmless.
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    with ctx.Pool(processes=min(processes, len(configs))) as pool:
        return pool.map(run_scenario, configs)


def run_matrix(
    base: ScenarioConfig,
    policies: Sequence[str],
    processes: Optional[int] = None,
) -> dict[str, ScenarioResult]:
    """Parallel equivalent of :func:`repro.experiments.runner.run_policies`
    (plain policy names only — kwargs variants need picklable configs,
    which they are, but the key naming of run_policies is preserved)."""
    configs = [base.replace(policy=name) for name in policies]
    results = run_scenarios(configs, processes=processes)
    return dict(zip(policies, results))
