"""Multi-seed replication of scenarios.

``replicate`` runs one scenario config under several seeds;
``replicate_policies`` does so for several policies with **matched
seeds** (every policy sees the identical workload per seed), enabling
paired statistical comparison via :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import Summary, paired_difference, summarize
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import ScenarioResult, run_scenario


@dataclass(frozen=True)
class ReplicatedResult:
    """All replications of one scenario (same config, varying seed)."""

    config: ScenarioConfig
    seeds: tuple[int, ...]
    results: tuple[ScenarioResult, ...]

    def metric(self, name: str) -> list[float]:
        return [r.metrics.as_dict()[name] for r in self.results]

    def summary(self, name: str) -> Summary:
        return summarize(self.metric(name))


def replicate(
    config: ScenarioConfig,
    seeds: Sequence[int],
) -> ReplicatedResult:
    """Run ``config`` once per seed."""
    if not seeds:
        raise ValueError("need at least one seed")
    results = tuple(run_scenario(config.replace(seed=int(s))) for s in seeds)
    return ReplicatedResult(config=config, seeds=tuple(int(s) for s in seeds), results=results)


def replicate_policies(
    base: ScenarioConfig,
    policies: Sequence[str],
    seeds: Sequence[int],
) -> dict[str, ReplicatedResult]:
    """Replicate several policies over matched seeds."""
    return {
        name: replicate(base.replace(policy=name), seeds)
        for name in policies
    }


def compare_replicated(
    a: ReplicatedResult,
    b: ReplicatedResult,
    metric: str = "pct_deadlines_fulfilled",
) -> Summary:
    """Paired per-seed difference ``a − b`` for ``metric``.

    Raises if the two replications do not share their seed list (the
    pairing would be meaningless).
    """
    if a.seeds != b.seeds:
        raise ValueError(f"seed lists differ: {a.seeds} vs {b.seeds}")
    return paired_difference(a.metric(metric), b.metric(metric))
