"""Scenario configuration — every knob of the paper's methodology (§4)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.share import ShareParams
from repro.scheduling.registry import available_policies
from repro.workload.deadlines import DeadlineModel
from repro.workload.synthetic import SDSCSP2Model
from repro.workload.traces import ESTIMATE_MODES, WorkloadSpec


@dataclass(frozen=True)
class ScenarioConfig:
    """One simulation scenario: policy × workload × cluster × estimates.

    Defaults reproduce the paper's base configuration: 3000 SDSC-SP2
    jobs on 128 nodes (SPEC rating 168), 20 % high-urgency jobs,
    deadline high:low ratio 4, arrival delay factor 1, actual (trace)
    estimates.
    """

    # -- policy ------------------------------------------------------------
    policy: str = "librarisk"
    policy_kwargs: dict[str, Any] = field(default_factory=dict)

    # -- cluster -------------------------------------------------------------
    num_nodes: int = 128
    rating: float = 168.0
    overrun_floor_share: float = 0.05
    redistribute_spare: bool = False

    # -- workload ---------------------------------------------------------------
    num_jobs: int = 3000
    arrival_delay_factor: float = 1.0
    #: Optional path to a real SWF trace (e.g. SDSC-SP2-1998-4.2-cln.swf);
    #: when None, the calibrated synthetic generator is used.
    trace_path: Optional[str] = None

    # -- estimates ----------------------------------------------------------------
    estimate_mode: str = "trace"
    inaccuracy_pct: float = 100.0

    # -- deadlines ------------------------------------------------------------------
    high_urgency_fraction: float = 0.20
    deadline_ratio: float = 4.0
    deadline_low_factor_mean: float = 2.0
    deadline_cv: float = 0.25

    # -- determinism --------------------------------------------------------------------
    seed: int = 42

    def __post_init__(self) -> None:
        if self.policy not in available_policies():
            raise ValueError(
                f"unknown policy {self.policy!r}; available: {available_policies()}"
            )
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        if self.estimate_mode not in ESTIMATE_MODES:
            raise ValueError(f"estimate_mode must be one of {ESTIMATE_MODES}")
        if self.arrival_delay_factor <= 0:
            raise ValueError("arrival_delay_factor must be > 0")
        if not 0.0 <= self.high_urgency_fraction <= 1.0:
            raise ValueError("high_urgency_fraction must be in [0, 1]")

    # -- derived builders -----------------------------------------------------
    def share_params(self) -> ShareParams:
        return ShareParams(
            overrun_floor_share=self.overrun_floor_share,
            redistribute_spare=self.redistribute_spare,
        )

    def deadline_model(self) -> DeadlineModel:
        return DeadlineModel(
            high_urgency_fraction=self.high_urgency_fraction,
            ratio=self.deadline_ratio,
            low_factor_mean=self.deadline_low_factor_mean,
            cv=self.deadline_cv,
        )

    def workload_spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            arrival_delay_factor=self.arrival_delay_factor,
            estimate_mode=self.estimate_mode,
            inaccuracy_pct=self.inaccuracy_pct,
            deadline_model=self.deadline_model(),
        )

    def synthetic_model(self) -> SDSCSP2Model:
        # Cap the processor-count table at the cluster size so shrunken
        # test clusters still get a valid (renormalised) distribution.
        default = SDSCSP2Model()
        kept = [
            (c, w)
            for c, w in zip(default.proc_choices, default.proc_weights)
            if c <= self.num_nodes
        ]
        if not kept:
            kept = [(1, 1.0)]
        choices, weights = zip(*kept)
        return SDSCSP2Model(
            num_jobs=self.num_jobs,
            max_procs=self.num_nodes,
            proc_choices=choices,
            proc_weights=weights,
        )

    def replace(self, **changes: Any) -> "ScenarioConfig":
        """A copy with the given fields changed (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    def label(self) -> str:
        """Short human-readable scenario label for tables."""
        parts = [self.policy]
        if self.policy_kwargs:
            parts.append(",".join(f"{k}={v}" for k, v in sorted(self.policy_kwargs.items())))
        parts.append(f"est={self.estimate_mode}")
        if self.estimate_mode == "inaccuracy":
            parts.append(f"{self.inaccuracy_pct:g}%")
        return " ".join(parts)
