"""ASCII tables and CSV export for experiment results."""

from __future__ import annotations

import io
from typing import Any, Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a fixed-width ASCII table (right-aligned numerics)."""
    def fmt(v: Any) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    sep = "  ".join("-" * w for w in widths)
    out = [line(headers), sep]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def series_table(
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[float]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render sweep series as a table: one row per x, one column per policy."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(series[name][i] for name in series)])
    return render_table(headers, rows, float_fmt=float_fmt)


def to_csv(
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render sweep series as CSV text."""
    buf = io.StringIO()
    buf.write(",".join([x_label, *series.keys()]) + "\n")
    for i, x in enumerate(x_values):
        row = [str(x)] + [repr(float(series[name][i])) for name in series]
        buf.write(",".join(row) + "\n")
    return buf.getvalue()


def metrics_table(results: Mapping[str, Any], keys: Sequence[str]) -> str:
    """Table of selected metrics, one row per policy.

    ``results`` maps policy name to :class:`ScenarioResult`.
    """
    headers = ["policy", *keys]
    rows = []
    for name, res in results.items():
        d = res.metrics.as_dict()
        rows.append([name, *(d[k] for k in keys)])
    return render_table(headers, rows)
