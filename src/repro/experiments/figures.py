"""Regenerators for the paper's four evaluation figures (§5).

Every figure has four panels:

==========  ============================================  =======================
Panel       Metric                                        Estimates
==========  ============================================  =======================
(a)         % of jobs with deadlines fulfilled            accurate
(b)         % of jobs with deadlines fulfilled            actual (trace)
(c)         average slowdown (fulfilled jobs only)        accurate
(d)         average slowdown (fulfilled jobs only)        actual (trace)
==========  ============================================  =======================

except Figure 4, whose panels split by the fraction of high-urgency
jobs (20 % vs 80 %) while sweeping the estimate-inaccuracy percentage.

Each regenerator returns a :class:`FigureResult` whose panels hold the
raw series; :meth:`FigureResult.render` prints the same rows the paper
plots.  Passing a ``base`` config with a smaller ``num_jobs`` gives a
fast approximation for tests/CI; the defaults reproduce the paper's
3000-job setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import series_table
from repro.experiments.sweeps import SweepResult, sweep

#: The three policies of the paper, in its plotting order.
PAPER_POLICIES: tuple[str, ...] = ("edf", "libra", "librarisk")

FULFILLED = "pct_deadlines_fulfilled"
SLOWDOWN = "avg_slowdown"

#: Default sweep grids (paper x-axes).
ARRIVAL_DELAY_FACTORS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
DEADLINE_RATIOS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0)
HIGH_URGENCY_PCTS: tuple[float, ...] = (0.0, 20.0, 40.0, 60.0, 80.0, 100.0)
INACCURACY_PCTS: tuple[float, ...] = (0.0, 20.0, 40.0, 60.0, 80.0, 100.0)


@dataclass(frozen=True)
class Panel:
    """One panel of a figure: a metric versus the sweep parameter."""

    label: str          # "a", "b", "c", "d"
    title: str
    x_label: str
    metric: str
    x_values: tuple[Any, ...]
    series: dict[str, list[float]]

    def render(self) -> str:
        head = f"({self.label}) {self.title}"
        return head + "\n" + series_table(self.x_label, self.x_values, self.series)


@dataclass(frozen=True)
class FigureResult:
    """All four panels of one paper figure."""

    figure_id: str
    title: str
    panels: tuple[Panel, ...]
    base: ScenarioConfig

    def panel(self, label: str) -> Panel:
        for p in self.panels:
            if p.label == label:
                return p
        raise KeyError(f"figure {self.figure_id} has no panel {label!r}")

    def render(self) -> str:
        head = f"=== Figure {self.figure_id}: {self.title} ==="
        body = "\n\n".join(p.render() for p in self.panels)
        return f"{head}\n{body}"


def _panels_from_sweeps(
    accurate: SweepResult,
    trace: SweepResult,
    x_label: str,
    x_values: Sequence[Any],
) -> tuple[Panel, ...]:
    return (
        Panel("a", "% deadlines fulfilled — accurate estimates", x_label,
              FULFILLED, tuple(x_values), accurate.series(FULFILLED)),
        Panel("b", "% deadlines fulfilled — trace estimates", x_label,
              FULFILLED, tuple(x_values), trace.series(FULFILLED)),
        Panel("c", "average slowdown — accurate estimates", x_label,
              SLOWDOWN, tuple(x_values), accurate.series(SLOWDOWN)),
        Panel("d", "average slowdown — trace estimates", x_label,
              SLOWDOWN, tuple(x_values), trace.series(SLOWDOWN)),
    )


def _two_mode_figure(
    figure_id: str,
    title: str,
    base: ScenarioConfig,
    parameter: str,
    x_label: str,
    x_values: Sequence[Any],
    policies: Sequence[str | tuple[str, dict]],
    transform: Optional[Callable[[ScenarioConfig, Any], ScenarioConfig]] = None,
    progress: Optional[Callable[[str], None]] = None,
    processes: int = 1,
) -> FigureResult:
    accurate = sweep(
        base.replace(estimate_mode="accurate"), parameter, x_values, policies,
        transform=transform, progress=progress, processes=processes,
    )
    trace = sweep(
        base.replace(estimate_mode="trace"), parameter, x_values, policies,
        transform=transform, progress=progress, processes=processes,
    )
    return FigureResult(
        figure_id=figure_id,
        title=title,
        panels=_panels_from_sweeps(accurate, trace, x_label, x_values),
        base=base,
    )


def figure1(
    base: Optional[ScenarioConfig] = None,
    x_values: Sequence[float] = ARRIVAL_DELAY_FACTORS,
    policies: Sequence[str | tuple[str, dict]] = PAPER_POLICIES,
    progress: Optional[Callable[[str], None]] = None,
    processes: int = 1,
) -> FigureResult:
    """Figure 1: impact of varying workload (arrival delay factor)."""
    base = base or ScenarioConfig()
    return _two_mode_figure(
        "1", "Impact of varying workload", base,
        "arrival_delay_factor", "arrival delay factor", x_values, policies,
        progress=progress, processes=processes,
    )


def figure2(
    base: Optional[ScenarioConfig] = None,
    x_values: Sequence[float] = DEADLINE_RATIOS,
    policies: Sequence[str | tuple[str, dict]] = PAPER_POLICIES,
    progress: Optional[Callable[[str], None]] = None,
    processes: int = 1,
) -> FigureResult:
    """Figure 2: impact of varying deadline high:low ratio."""
    base = base or ScenarioConfig()
    return _two_mode_figure(
        "2", "Impact of varying deadline high:low ratio", base,
        "deadline_ratio", "deadline high:low ratio", x_values, policies,
        progress=progress, processes=processes,
    )


def figure3(
    base: Optional[ScenarioConfig] = None,
    x_values: Sequence[float] = HIGH_URGENCY_PCTS,
    policies: Sequence[str | tuple[str, dict]] = PAPER_POLICIES,
    progress: Optional[Callable[[str], None]] = None,
    processes: int = 1,
) -> FigureResult:
    """Figure 3: impact of varying the percentage of high urgency jobs."""
    base = base or ScenarioConfig()

    def set_urgency(cfg: ScenarioConfig, pct: float) -> ScenarioConfig:
        return cfg.replace(high_urgency_fraction=pct / 100.0)

    return _two_mode_figure(
        "3", "Impact of varying high urgency jobs", base,
        "high_urgency_pct", "% of high urgency jobs", x_values, policies,
        transform=set_urgency, progress=progress, processes=processes,
    )


def figure4(
    base: Optional[ScenarioConfig] = None,
    x_values: Sequence[float] = INACCURACY_PCTS,
    policies: Sequence[str | tuple[str, dict]] = PAPER_POLICIES,
    urgency_pcts: tuple[float, float] = (20.0, 80.0),
    progress: Optional[Callable[[str], None]] = None,
    processes: int = 1,
) -> FigureResult:
    """Figure 4: impact of varying inaccurate runtime estimates.

    Panels (a)/(c) use ``urgency_pcts[0]`` % high-urgency jobs,
    panels (b)/(d) use ``urgency_pcts[1]`` %.
    """
    base = base or ScenarioConfig()

    def run_for(pct_urgent: float) -> SweepResult:
        cfg = base.replace(
            estimate_mode="inaccuracy",
            high_urgency_fraction=pct_urgent / 100.0,
        )
        return sweep(cfg, "inaccuracy_pct", x_values, policies,
                     progress=progress, processes=processes)

    low = run_for(urgency_pcts[0])
    high = run_for(urgency_pcts[1])
    x_label = "% of inaccuracy"
    panels = (
        Panel("a", f"% deadlines fulfilled — {urgency_pcts[0]:g}% high urgency",
              x_label, FULFILLED, tuple(x_values), low.series(FULFILLED)),
        Panel("b", f"% deadlines fulfilled — {urgency_pcts[1]:g}% high urgency",
              x_label, FULFILLED, tuple(x_values), high.series(FULFILLED)),
        Panel("c", f"average slowdown — {urgency_pcts[0]:g}% high urgency",
              x_label, SLOWDOWN, tuple(x_values), low.series(SLOWDOWN)),
        Panel("d", f"average slowdown — {urgency_pcts[1]:g}% high urgency",
              x_label, SLOWDOWN, tuple(x_values), high.series(SLOWDOWN)),
    )
    return FigureResult(
        figure_id="4",
        title="Impact of varying inaccurate runtime estimates",
        panels=panels,
        base=base,
    )


_FIGURES: dict[str, Callable[..., FigureResult]] = {
    "1": figure1,
    "2": figure2,
    "3": figure3,
    "4": figure4,
}


def all_figures(
    base: Optional[ScenarioConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    processes: int = 1,
) -> dict[str, FigureResult]:
    """Regenerate every figure of the paper."""
    return {
        fid: fn(base=base, progress=progress, processes=processes)
        for fid, fn in _FIGURES.items()
    }
