"""JSON (de)serialisation of experiment artefacts.

Figure regenerations at paper scale take minutes; persisting their
series lets analyses, plots and regression checks re-read results
without re-simulating.  The format is plain JSON — stable field names,
no pickling — so results survive library versions and feed external
tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import FigureResult, Panel


def config_to_dict(config: ScenarioConfig) -> dict:
    """JSON-safe dict of a scenario config."""
    out = {}
    for field in config.__dataclass_fields__:
        out[field] = getattr(config, field)
    return out


def config_from_dict(data: dict) -> ScenarioConfig:
    return ScenarioConfig(**data)


def figure_to_dict(fig: FigureResult) -> dict:
    return {
        "figure_id": fig.figure_id,
        "title": fig.title,
        "base": config_to_dict(fig.base),
        "panels": [
            {
                "label": p.label,
                "title": p.title,
                "x_label": p.x_label,
                "metric": p.metric,
                "x_values": list(p.x_values),
                "series": {k: list(v) for k, v in p.series.items()},
            }
            for p in fig.panels
        ],
    }


def figure_from_dict(data: dict) -> FigureResult:
    panels = tuple(
        Panel(
            label=p["label"],
            title=p["title"],
            x_label=p["x_label"],
            metric=p["metric"],
            x_values=tuple(p["x_values"]),
            series={k: list(v) for k, v in p["series"].items()},
        )
        for p in data["panels"]
    )
    return FigureResult(
        figure_id=data["figure_id"],
        title=data["title"],
        panels=panels,
        base=config_from_dict(data["base"]),
    )


def save_figure(fig: FigureResult, path: Union[str, Path]) -> Path:
    """Write a figure's series to JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(figure_to_dict(fig), indent=2, sort_keys=True))
    return path


def load_figure(path: Union[str, Path]) -> FigureResult:
    """Read a figure previously written by :func:`save_figure`."""
    return figure_from_dict(json.loads(Path(path).read_text()))


def save_figures(figures: dict[str, FigureResult], directory: Union[str, Path]) -> list[Path]:
    """Persist a whole figure set as ``figure<id>.json`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        save_figure(fig, directory / f"figure{fid}.json")
        for fid, fig in sorted(figures.items())
    ]


def load_figures(directory: Union[str, Path]) -> dict[str, FigureResult]:
    """Load every ``figure*.json`` in ``directory``."""
    directory = Path(directory)
    out = {}
    for path in sorted(directory.glob("figure*.json")):
        fig = load_figure(path)
        out[fig.figure_id] = fig
    return out
