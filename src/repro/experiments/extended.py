"""Extended comparison: every implemented policy on the paper's axes.

Beyond the paper's three-policy evaluation, this experiment places the
extension baselines (FCFS, EASY backfilling, conservative backfilling
with reservation admission, QoPS-style slack admission) on the same
workload, answering the natural reviewer question: *is LibraRisk's
advantage an artifact of weak space-shared baselines?*

The answer (see the bench output): deadline-aware backfilling closes
much of EDF's gap, and soft deadlines buy acceptance at the price of
hard-deadline misses, but none of the space-shared policies can match
proportional-share admission once estimates are inaccurate — the
slack/backfill planners trust the same bad estimates Libra does, while
LibraRisk is the only policy that *prices the uncertainty in*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import metrics_table
from repro.experiments.runner import ScenarioResult, run_policies

#: The full roster, paper policies first.
ALL_POLICIES: tuple = (
    "edf",
    "libra",
    "librarisk",
    "fcfs",
    "edf-easy",
    "conservative",
    ("qops-slack", {"slack_factor": 1.2}),
)

HEADLINE = ("pct_deadlines_fulfilled", "avg_slowdown", "acceptance_pct",
            "completed_late", "utilisation")


@dataclass(frozen=True)
class ExtendedComparison:
    """Results of the all-policy comparison under both estimate modes."""

    accurate: dict[str, ScenarioResult]
    trace: dict[str, ScenarioResult]

    def render(self) -> str:
        return (
            "--- All policies, accurate estimates ---\n"
            + metrics_table(self.accurate, HEADLINE)
            + "\n\n--- All policies, trace estimates ---\n"
            + metrics_table(self.trace, HEADLINE)
        )

    def winner(self, mode: str = "trace",
               metric: str = "pct_deadlines_fulfilled") -> str:
        results = self.trace if mode == "trace" else self.accurate
        return max(results, key=lambda k: results[k].metrics.as_dict()[metric])


def extended_comparison(
    base: Optional[ScenarioConfig] = None,
    policies: Sequence = ALL_POLICIES,
) -> ExtendedComparison:
    """Run every policy under accurate and trace estimates."""
    base = base or ScenarioConfig()
    return ExtendedComparison(
        accurate=run_policies(base.replace(estimate_mode="accurate"), policies),
        trace=run_policies(base.replace(estimate_mode="trace"), policies),
    )
