"""Design-choice ablations (beyond the paper's own evaluation).

DESIGN.md §3 lists the decisions the paper leaves open; each ablation
here quantifies one of them under the default trace-estimate scenario:

* **suitability** — the literal Algorithm 1 test (σ = 0) versus the
  strict no-predicted-delay variant.  This isolates how much of
  LibraRisk's advantage comes from gambling on estimate-infeasible
  jobs;
* **node ordering** — LibraRisk's placement among zero-risk nodes
  (worst-fit / best-fit / index);
* **overrun floor share** — the execution floor given to jobs whose
  estimates are exhausted;
* **spare redistribution** — whether idle capacity is handed to
  running jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.reporting import metrics_table
from repro.experiments.runner import ScenarioResult, run_scenario

HEADLINE_KEYS = ("pct_deadlines_fulfilled", "avg_slowdown", "acceptance_pct", "completed_late")


@dataclass(frozen=True)
class AblationResult:
    """Named variants of one design choice, run on identical workloads."""

    name: str
    results: dict[str, ScenarioResult]

    def render(self) -> str:
        return f"--- Ablation: {self.name} ---\n" + metrics_table(self.results, HEADLINE_KEYS)

    def series(self, metric: str) -> dict[str, float]:
        return {k: r.metrics.as_dict()[metric] for k, r in self.results.items()}


def _run_variants(name: str, variants: dict[str, ScenarioConfig]) -> AblationResult:
    return AblationResult(
        name=name,
        results={label: run_scenario(cfg) for label, cfg in variants.items()},
    )


def ablation_suitability(base: Optional[ScenarioConfig] = None) -> AblationResult:
    """Literal σ = 0 versus strict no-delay suitability for LibraRisk."""
    base = (base or ScenarioConfig()).replace(policy="librarisk", estimate_mode="trace")
    return _run_variants(
        "LibraRisk suitability rule",
        {
            "sigma (paper)": base.replace(policy_kwargs={"suitability": "sigma"}),
            "no-delay (strict)": base.replace(policy_kwargs={"suitability": "no-delay"}),
            "libra (reference)": base.replace(policy="libra", policy_kwargs={}),
        },
    )


def ablation_node_order(base: Optional[ScenarioConfig] = None) -> AblationResult:
    """Placement order among LibraRisk's zero-risk nodes."""
    base = (base or ScenarioConfig()).replace(policy="librarisk", estimate_mode="trace")
    return _run_variants(
        "LibraRisk node ordering",
        {
            order: base.replace(policy_kwargs={"node_order": order})
            for order in ("worst_fit", "best_fit", "index")
        },
    )


def ablation_overrun_floor(
    base: Optional[ScenarioConfig] = None,
    floors: Sequence[float] = (0.01, 0.05, 0.10, 0.25),
) -> AblationResult:
    """Execution floor share for overrunning jobs (Libra and LibraRisk)."""
    base = (base or ScenarioConfig()).replace(estimate_mode="trace")
    variants: dict[str, ScenarioConfig] = {}
    for policy in ("libra", "librarisk"):
        for floor in floors:
            variants[f"{policy} floor={floor:g}"] = base.replace(
                policy=policy, overrun_floor_share=floor
            )
    return _run_variants("overrun floor share", variants)


def ablation_redistribute_spare(base: Optional[ScenarioConfig] = None) -> AblationResult:
    """Idle-capacity redistribution versus exact Eq. 1 allocation."""
    base = (base or ScenarioConfig()).replace(estimate_mode="trace")
    variants: dict[str, ScenarioConfig] = {}
    for policy in ("libra", "librarisk"):
        for flag in (False, True):
            label = f"{policy} spare={'on' if flag else 'off'}"
            variants[label] = base.replace(policy=policy, redistribute_spare=flag)
    return _run_variants("spare capacity redistribution", variants)


def all_ablations(base: Optional[ScenarioConfig] = None) -> dict[str, AblationResult]:
    """Run every ablation; keys are short identifiers."""
    return {
        "suitability": ablation_suitability(base),
        "node_order": ablation_node_order(base),
        "overrun_floor": ablation_overrun_floor(base),
        "redistribute_spare": ablation_redistribute_spare(base),
    }
