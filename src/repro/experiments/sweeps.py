"""Generic one-parameter sweeps over multiple policies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import ScenarioResult, run_scenario

#: How a sweep point modifies the base config: either a config field
#: name (simple case) or a callable ``(config, x) -> config``.
ConfigTransform = Callable[[ScenarioConfig, Any], ScenarioConfig]


@dataclass
class SweepResult:
    """Results of sweeping one parameter for several policies."""

    parameter: str
    x_values: list[Any]
    #: policy name -> list of ScenarioResult aligned with x_values.
    results: dict[str, list[ScenarioResult]] = field(default_factory=dict)

    def series(self, metric: str) -> dict[str, list[float]]:
        """Extract ``metric`` (a ScenarioMetrics dict key) per policy."""
        out: dict[str, list[float]] = {}
        for policy, runs in self.results.items():
            out[policy] = [run.metrics.as_dict()[metric] for run in runs]
        return out

    def best_policy_at(self, metric: str, idx: int, higher_is_better: bool = True) -> str:
        """Which policy wins ``metric`` at sweep point ``idx``."""
        series = self.series(metric)
        chooser = max if higher_is_better else min
        return chooser(series, key=lambda p: series[p][idx])


def sweep(
    base: ScenarioConfig,
    parameter: str,
    x_values: Sequence[Any],
    policies: Sequence[str | tuple[str, dict]],
    transform: Optional[ConfigTransform] = None,
    progress: Optional[Callable[[str], None]] = None,
    processes: int = 1,
) -> SweepResult:
    """Sweep ``parameter`` over ``x_values`` for each policy.

    By default ``parameter`` names a :class:`ScenarioConfig` field;
    pass ``transform`` for anything more elaborate.  With
    ``processes > 1`` every (policy, x) cell runs concurrently on a
    process pool (cells are independent pure functions of their
    config); progress messages are then emitted before the batch.
    """
    if transform is None:
        def transform(cfg: ScenarioConfig, x: Any) -> ScenarioConfig:  # noqa: F811
            return cfg.replace(**{parameter: x})

    result = SweepResult(parameter=parameter, x_values=list(x_values))
    cells: list[tuple[str, ScenarioConfig]] = []
    for entry in policies:
        if isinstance(entry, str):
            name, kwargs = entry, {}
        else:
            name, kwargs = entry
        key = name if isinstance(entry, str) else f"{name}:{_kw_label(kwargs)}"
        for x in x_values:
            config = transform(base.replace(policy=name, policy_kwargs=dict(kwargs)), x)
            if progress is not None:
                progress(f"{key} {parameter}={x}")
            cells.append((key, config))

    if processes > 1:
        from repro.experiments.parallel import run_scenarios

        runs = run_scenarios([cfg for _, cfg in cells], processes=processes)
    else:
        runs = [run_scenario(cfg) for _, cfg in cells]

    for (key, _), run in zip(cells, runs):
        result.results.setdefault(key, []).append(run)
    return result


def _kw_label(kwargs: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(kwargs.items())) or "default"
