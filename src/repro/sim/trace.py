"""Event trace recording for post-hoc inspection of simulations.

The kernel optionally records every fired event into an
:class:`EventTrace`.  Traces are bounded ring buffers by default so a
long simulation cannot exhaust memory, and they support simple
filtering so tests can assert on the exact interleaving of, say, job
completions versus arrivals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event


@dataclass(frozen=True)
class TraceRecord:
    """An immutable snapshot of one fired event."""

    time: float
    priority: int
    seq: int
    name: str

    def __str__(self) -> str:
        return f"t={self.time:.6g} [{self.priority}] {self.name or '<anon>'}"


class EventTrace:
    """Bounded in-memory log of fired events.

    Parameters
    ----------
    capacity:
        Maximum number of records retained (oldest evicted first).
        ``None`` keeps everything.
    predicate:
        Optional filter applied at record time; events for which it
        returns ``False`` are not stored.
    """

    def __init__(
        self,
        capacity: Optional[int] = 100_000,
        predicate: Optional[Callable[["Event"], bool]] = None,
    ) -> None:
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._predicate = predicate
        self._total_recorded = 0

    def record(self, event: "Event") -> None:
        """Store a snapshot of ``event`` (called by the kernel)."""
        if self._predicate is not None and not self._predicate(event):
            return
        self._records.append(
            TraceRecord(time=event.time, priority=event.priority, seq=event.seq, name=event.name)
        )
        self._total_recorded += 1

    # -- inspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> TraceRecord:
        return self._records[idx]

    @property
    def total_recorded(self) -> int:
        """Number of records ever stored (including any evicted ones)."""
        return self._total_recorded

    @property
    def dropped(self) -> int:
        """Records silently evicted because the ring buffer was full.

        A non-zero value means the retained window is *truncated*:
        assertions over "the whole run" would be working on partial
        data.  Surfaced in ``repr``/``str`` so the loss is visible.
        """
        return self._total_recorded - len(self._records)

    def names(self) -> list[str]:
        """Names of retained records, in firing order."""
        return [r.name for r in self._records]

    def filter(self, substring: str) -> list[TraceRecord]:
        """Retained records whose name contains ``substring``."""
        return [r for r in self._records if substring in r.name]

    def between(self, start: float, end: float) -> list[TraceRecord]:
        """Retained records with ``start <= time <= end``."""
        return [r for r in self._records if start <= r.time <= end]

    def clear(self) -> None:
        """Discard retained records and reset the eviction accounting."""
        self._records.clear()
        self._total_recorded = 0

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace (for debugging/tests)."""
        records = list(self._records)
        if limit is not None:
            records = records[-limit:]
        return "\n".join(str(r) for r in records)

    def __repr__(self) -> str:
        dropped = self.dropped
        tail = f" dropped={dropped}" if dropped else ""
        return f"<EventTrace retained={len(self._records)}{tail}>"

    def __str__(self) -> str:
        dropped = self.dropped
        if not dropped:
            return f"EventTrace: {len(self._records)} records"
        return (
            f"EventTrace: {len(self._records)} records retained "
            f"({dropped} older records dropped at capacity)"
        )
