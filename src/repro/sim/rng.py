"""Named, deterministic random-number streams.

Every stochastic component in the library (inter-arrival jitter,
deadline factors, estimate models, synthetic trace generation, ...)
draws from its own named stream derived from a single root seed.  Two
properties follow:

* A whole experiment is a pure function of ``(config, seed)``.
* Adding a new consumer of randomness does **not** perturb existing
  streams, because streams are keyed by *name*, not by draw order.

Streams are ``numpy.random.Generator`` instances seeded from
``SeedSequence(root_seed, <stable hash of name>)``.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _name_key(name: str) -> int:
    """Stable 64-bit integer derived from a stream name.

    ``hash()`` is salted per-process in Python, so we use BLAKE2 to keep
    streams identical across runs and machines.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngStreams:
    """A family of independent named random streams under one root seed.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("arrivals").random()
    >>> b = RngStreams(seed=42).get("arrivals").random()
    >>> a == b
    True
    >>> streams.get("arrivals") is streams.get("arrivals")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed & 0xFFFFFFFFFFFFFFFF, _name_key(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family whose streams are independent of this one.

        Used when one experiment drives several repetitions: each
        repetition gets ``streams.spawn(f"rep{i}")``.
        """
        return RngStreams(seed=(self.seed * 1_000_003 + _name_key(name)) & 0x7FFFFFFFFFFFFFFF)

    def reset(self) -> None:
        """Forget all derived streams; next :meth:`get` re-creates them."""
        self._streams.clear()

    def stream_names(self) -> list[str]:
        """Names of the streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStreams seed={self.seed} streams={len(self._streams)}>"
