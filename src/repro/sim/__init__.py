"""Deterministic discrete-event simulation kernel.

This package is the substrate that replaces GridSim in the original
paper: a minimal but complete event-driven simulator with

* a binary-heap event queue with stable FIFO tie-breaking
  (:mod:`repro.sim.kernel`),
* typed, cancellable events (:mod:`repro.sim.events`),
* named, deterministic random-number streams so that every experiment
  is a pure function of ``(config, seed)`` (:mod:`repro.sim.rng`),
* an event trace recorder for observability (:mod:`repro.sim.trace`),
* an optional generator-based process layer in the style of SimPy
  (:mod:`repro.sim.process`).
"""

from repro.sim.events import Event, EventPriority
from repro.sim.kernel import Simulator, SimulationError
from repro.sim.process import Process, Timeout, Waiter
from repro.sim.rng import RngStreams
from repro.sim.trace import EventTrace, TraceRecord

__all__ = [
    "Event",
    "EventPriority",
    "EventTrace",
    "Process",
    "RngStreams",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Waiter",
]
