# repro-lint: disable-file=DET003  this module is where exact float comparison lives
"""Float comparison helpers for deterministic scheduling code.

``repro lint`` (rule DET003) bans bare ``==``/``!=`` between float
expressions in ``repro.sim``/``repro.scheduling``: a bare comparison
does not say whether exactness is *required* or merely *assumed*.
These helpers make the intent explicit:

* :func:`exact_eq` / :func:`exact_zero` — deliberate bitwise equality.
  The paper's zero-risk criterion (Yeo & Buyya 2006, σ = 0) is a
  *literal* zero test on an exactly-propagated statistic, not a
  tolerance, so it must stay bitwise; these helpers name that choice.
* :func:`approx_eq` — tolerance-based equality for genuinely inexact
  quantities (accumulated sums, products of rates).

Sentinel checks against ±inf/NaN should use :func:`math.isinf` /
:func:`math.isfinite` directly.

Everything here is branch-for-branch equivalent to the bare comparison
it replaces — adopting a helper never changes a scheduling decision or
an exported byte.
"""

from __future__ import annotations

import math


def exact_eq(a: float, b: float) -> bool:
    """Bitwise-intent float equality (IEEE ``==``, so NaN != NaN).

    Use only where the algorithm genuinely requires exactness — e.g.
    comparing values that were assigned, never recomputed.
    """
    return a == b


def exact_zero(x: float) -> bool:
    """True when ``x`` is exactly ``0.0`` (or ``-0.0``).

    The paper's zero-risk admission criterion is the literal σ = 0 —
    a tolerance here would admit jobs the analysis calls risky.
    """
    return x == 0.0


def approx_eq(a: float, b: float, rel_tol: float = 1e-9, abs_tol: float = 0.0) -> bool:
    """Tolerance-based equality for accumulated/inexact quantities."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


__all__ = ["approx_eq", "exact_eq", "exact_zero"]
