"""Generator-based process layer on top of the event kernel.

The admission-control simulations in this library are written directly
against kernel callbacks (it is faster and the state machines are
simple), but examples, tests and downstream users often want the
SimPy-style coroutine idiom::

    def customer(sim):
        yield Timeout(5.0)        # sleep 5 simulated seconds
        door.open()
        got = yield waiter        # park until someone triggers the waiter

    Process(sim, customer(sim))

A process is a Python generator that yields *wait directives*:

* :class:`Timeout` — resume after a fixed delay;
* :class:`Waiter` — resume when some other component calls
  :meth:`Waiter.trigger`, receiving the triggered value.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator


class Timeout:
    """Wait directive: resume the process after ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)


class Waiter:
    """One-shot-per-trigger rendezvous between processes.

    Any number of processes can be parked on a waiter; a call to
    :meth:`trigger` wakes all of them (FIFO) and delivers ``value`` as
    the result of their ``yield``.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._parked: List["Process"] = []

    def park(self, process: "Process") -> None:
        self._parked.append(process)

    def trigger(self, value: Any = None) -> int:
        """Wake every parked process; returns how many were woken."""
        parked, self._parked = self._parked, []
        for proc in parked:
            self.sim.schedule(
                0.0,
                lambda ev, p=proc: p._resume(value),
                priority=EventPriority.NORMAL,
                name=f"waiter:{self.name}",
            )
        return len(parked)

    @property
    def waiting(self) -> int:
        return len(self._parked)


class Process:
    """Drives a generator as a cooperatively scheduled process.

    The generator runs immediately up to its first ``yield`` upon
    construction.  When the generator returns, :attr:`done` becomes
    true and :attr:`result` holds its return value.
    """

    def __init__(self, sim: Simulator, generator: Generator[Any, Any, Any], name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._resume(None, first=True)

    def _resume(self, value: Any, first: bool = False) -> None:
        if self.done:
            return
        try:
            directive = self.generator.send(None if first else value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            return
        except BaseException as exc:  # surfaced to the caller via .error
            self.done = True
            self.error = exc
            raise
        self._handle(directive)

    def _handle(self, directive: Any) -> None:
        if isinstance(directive, Timeout):
            self.sim.schedule(
                directive.delay,
                lambda ev: self._resume(None),
                priority=EventPriority.NORMAL,
                name=f"timeout:{self.name}",
            )
        elif isinstance(directive, Waiter):
            directive.park(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(directive).__name__}; "
                "expected Timeout or Waiter"
            )
