"""The discrete-event simulation kernel.

:class:`Simulator` owns the simulated clock and a binary-heap event
queue.  Components schedule :class:`~repro.sim.events.Event` callbacks
with :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` and the
kernel advances time by repeatedly popping the earliest event.

Design notes
------------
* **Determinism** — events are ordered ``(time, priority, seq)``; the
  sequence number is assigned at scheduling time, so there is exactly
  one legal execution order for a given schedule history.
* **No time-stepping** — the clock jumps from event to event, which is
  what keeps the 3000-job × 128-node experiments of the paper well
  under a second each.
* **Re-entrancy** — callbacks may freely schedule and cancel further
  events, including events at the current instant (they will run in
  this same pass, after the current callback returns).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterable, Optional

from repro.sim.events import Event, EventPriority
from repro.sim.trace import EventTrace


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, bad run bounds)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (seconds).
    trace:
        Optional :class:`~repro.sim.trace.EventTrace` that records every
        fired event for post-hoc inspection.
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after
        this many events, catching accidental infinite event loops.
    on_event:
        Optional observer called as ``on_event(event)`` after each event
        fires (after any trace recording, before the next event pops).
        Observers must be passive — they see the event but must not
        schedule, cancel or mutate simulation state — so instrumented
        and uninstrumented runs execute identical event sequences.
        Long-running callers use this to report progress; the obs layer
        uses it to count events and sample heap depth.  Also assignable
        after construction.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda ev: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        trace: Optional[EventTrace] = None,
        max_events: int = 50_000_000,
        on_event: Optional[Callable[[Event], None]] = None,
    ) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._events_fired = 0
        self._tombstones_dropped = 0
        self._running = False
        self._stopped = False
        self.trace = trace
        self.max_events = int(max_events)
        self.on_event = on_event

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of (non-cancelled) events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def tombstones_dropped(self) -> int:
        """Cancelled events discarded lazily instead of re-heapified.

        ``cancel()`` is O(1): it only flags the event, and the heap drops
        the tombstone when it surfaces (or in :meth:`drain_cancelled`).
        This counter sizes how much churn that laziness absorbed —
        LibraRisk's per-completion reschedules cancel one timer per
        resident task, so it grows with cluster occupancy.
        """
        return self._tombstones_dropped

    # -- scheduling -------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Optional[Callable[[Event], None]],
        priority: int = EventPriority.NORMAL,
        name: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        return self.schedule_at(self._now + float(delay), callback, priority, name, payload)

    def schedule_at(
        self,
        time: float,
        callback: Optional[Callable[[Event], None]],
        priority: int = EventPriority.NORMAL,
        name: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies in the past or is not finite.
        """
        time = float(time)
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6g}: clock is already at t={self._now:.6g}"
            )
        event = Event(time, priority, callback, name=name, payload=payload)
        event.seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_event(self, event: Event) -> Event:
        """Schedule a pre-built :class:`Event` (assigns its sequence number)."""
        if event.time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={event.time:.6g}: clock is at t={self._now:.6g}"
            )
        event.seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # -- execution --------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is drained."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the single earliest live event.

        Returns
        -------
        bool
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._events_fired += 1
        if self.trace is not None:
            self.trace.record(event)
        if self.on_event is not None:
            self.on_event(event)
        if event.callback is not None:
            event.callback(event)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given, the clock is left at exactly ``until``
        even if the last event fired earlier (so post-run metrics read a
        consistent horizon).
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until:.6g}) is in the past (now={self._now:.6g})"
            )
        self._running = True
        self._stopped = False
        pop = heapq.heappop
        try:
            # peek() + step() fused: one tombstone sweep per event instead
            # of two, no per-event method dispatch.  `self._heap` is
            # re-read each iteration because drain_cancelled() rebinds it.
            while not self._stopped:
                heap = self._heap
                while heap and heap[0].cancelled:
                    pop(heap)
                    self._tombstones_dropped += 1
                if not heap:
                    break
                event = heap[0]
                if until is not None and event.time > until:
                    break
                if self._events_fired >= self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}: possible event loop"
                    )
                pop(heap)
                self._now = event.time
                self._events_fired += 1
                if self.trace is not None:
                    self.trace.record(event)
                if self.on_event is not None:
                    self.on_event(event)
                if event.callback is not None:
                    event.callback(event)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)

    def stop(self) -> None:
        """Request :meth:`run` to return after the current event."""
        self._stopped = True

    # -- checkpoint support ------------------------------------------------
    def clock_state(self) -> dict:
        """The kernel's restorable scalar state (see :meth:`restore_clock`)."""
        return {"now": self._now, "seq": self._seq, "events_fired": self._events_fired}

    def restore_clock(self, now: float, seq: int, events_fired: int) -> None:
        """Reset the clock and counters from a checkpoint.

        Only legal on a simulator whose event queue is still empty: the
        restorer re-creates pending events *after* this call so their
        sequence numbers continue from the snapshot's ``seq``.
        """
        if self._heap:
            raise SimulationError(
                f"cannot restore clock state with {len(self._heap)} events pending"
            )
        now = float(now)
        if not math.isfinite(now):
            raise SimulationError(f"restored clock must be finite, got {now!r}")
        if seq < 0 or events_fired < 0:
            raise SimulationError("restored seq/events_fired must be >= 0")
        self._now = now
        self._seq = int(seq)
        self._events_fired = int(events_fired)

    # -- internals --------------------------------------------------------
    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._tombstones_dropped += 1

    def drain_cancelled(self) -> int:
        """Remove every cancelled event from the heap; return the count.

        Useful for long simulations that cancel many timers — the heap
        otherwise retains tombstones until their scheduled times.
        """
        live = [ev for ev in self._heap if not ev.cancelled]
        removed = len(self._heap) - len(live)
        if removed:
            heapq.heapify(live)
            self._heap = live
            self._tombstones_dropped += removed
        return removed

    def iter_pending(self) -> Iterable[Event]:
        """Yield pending live events in an unspecified order (inspection only)."""
        return (ev for ev in self._heap if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6g} pending={len(self._heap)} "
            f"fired={self._events_fired}>"
        )
