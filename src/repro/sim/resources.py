"""Process-layer synchronisation resources for the simulation kernel.

Rounds out the SimPy-substitute substrate: generator-based processes
(:mod:`repro.sim.process`) often need more than timeouts —

* :class:`Semaphore` — counted capacity with FIFO waiters (models
  anything from licence tokens to a bounded device);
* :class:`Store` — a FIFO item queue with blocking get (producer/
  consumer pipelines);
* :class:`Gate` — a level-triggered barrier processes can wait on.

All of them integrate with :class:`~repro.sim.process.Process` through
:class:`~repro.sim.process.Waiter` rendezvous, so acquisition order is
deterministic (FIFO) and replayable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.kernel import Simulator
from repro.sim.process import Waiter


class Semaphore:
    """Counted resource with FIFO blocking acquisition.

    Usage from a process::

        yield from sem.acquire()
        ...critical section...
        sem.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "semaphore") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._available = int(capacity)
        self._waiters: Deque[Waiter] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def try_acquire(self) -> bool:
        """Non-blocking acquisition attempt."""
        if self._available > 0:
            self._available -= 1
            return True
        return False

    def acquire(self) -> Generator[Any, Any, None]:
        """Blocking acquisition (``yield from`` inside a process)."""
        while not self.try_acquire():
            waiter = Waiter(self.sim, name=f"{self.name}:acquire")
            self._waiters.append(waiter)
            yield waiter

    def release(self) -> None:
        """Return one unit; wakes the oldest waiter if any."""
        if self._available >= self.capacity and not self._waiters:
            raise RuntimeError(f"{self.name}: release without matching acquire")
        self._available = min(self.capacity, self._available + 1)
        if self._waiters:
            self._waiters.popleft().trigger()


class Store:
    """FIFO item queue with blocking ``get`` and optional capacity bound."""

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Waiter] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> bool:
        """Add an item; returns False (dropped) when the store is full."""
        if self.full:
            return False
        self._items.append(item)
        if self._getters:
            self._getters.popleft().trigger()
        return True

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def get(self) -> Generator[Any, Any, Any]:
        """Blocking get (``item = yield from store.get()``)."""
        while True:
            ok, item = self.try_get()
            if ok:
                return item
            waiter = Waiter(self.sim, name=f"{self.name}:get")
            self._getters.append(waiter)
            yield waiter


class Gate:
    """Level-triggered barrier: processes wait until the gate is open.

    While open, waiting is a no-op; closing makes subsequent waiters
    park until the next :meth:`open`.
    """

    def __init__(self, sim: Simulator, open_: bool = False, name: str = "gate") -> None:
        self.sim = sim
        self.name = name
        self._open = bool(open_)
        self._waiter = Waiter(sim, name=f"{name}:gate")

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def waiting(self) -> int:
        return self._waiter.waiting

    def open(self) -> int:
        """Open the gate, waking every parked process; returns the count."""
        self._open = True
        return self._waiter.trigger()

    def close(self) -> None:
        self._open = False

    def wait(self) -> Generator[Any, Any, None]:
        """``yield from gate.wait()`` — returns immediately if open."""
        while not self._open:
            yield self._waiter
