"""Event objects for the discrete-event kernel.

An :class:`Event` is a scheduled callback.  Events are ordered by
``(time, priority, seq)`` where ``seq`` is a monotonically increasing
sequence number assigned at scheduling time, so events scheduled for
the same instant with the same priority fire in FIFO order.  That
stable ordering is what makes whole simulations reproducible.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class EventPriority(enum.IntEnum):
    """Relative ordering of events that fire at the same simulated time.

    Lower numeric value fires first.  The defaults are chosen so that
    job completions are processed before arrivals at the same instant:
    a node must release its processors/shares before the admission
    control evaluates a new job, otherwise capacity freed "now" would
    be invisible to a job arriving "now".
    """

    #: Internal kernel bookkeeping (timers that must precede all else).
    URGENT = 0
    #: Job/task completions, releases of capacity.
    COMPLETION = 10
    #: Job arrivals and admission decisions.
    ARRIVAL = 20
    #: Everything else.
    NORMAL = 30
    #: Metric snapshots, monitors — observe state after it settled.
    MONITOR = 40


class Event:
    """A single scheduled occurrence inside a :class:`~repro.sim.kernel.Simulator`.

    Parameters
    ----------
    time:
        Absolute simulated time at which the event fires.
    priority:
        Tie-break ordering for simultaneous events (lower fires first).
    callback:
        Callable invoked as ``callback(event)`` when the event fires.
    name:
        Human-readable label used by the trace recorder.
    payload:
        Arbitrary data carried by the event; never interpreted by the
        kernel.
    """

    __slots__ = ("time", "priority", "seq", "callback", "name", "payload", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        callback: Optional[Callable[["Event"], None]],
        name: str = "",
        payload: Any = None,
    ) -> None:
        self.time = float(time)
        self.priority = int(priority)
        self.seq = -1  # assigned by the simulator at scheduling time
        self.callback = callback
        self.name = name
        self.payload = payload
        self._cancelled = False

    # -- ordering ---------------------------------------------------------
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Called O(log n) times per heap operation — compare fields
        # directly instead of allocating two key tuples per call.
        # The inequality is a deliberate exact tie-break (same-instant
        # events fall through to priority/seq), not a tolerance.
        if self.time != other.time:  # repro-lint: disable=DET003  exact tie-break
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    # -- cancellation -----------------------------------------------------
    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped.

        Cancellation is O(1); the event stays in the heap until its
        scheduled time, at which point it is silently discarded.
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self._cancelled else ""
        return f"<Event {self.name or 'anon'} t={self.time:.6g} prio={self.priority}{state}>"
