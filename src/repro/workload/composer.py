"""Compose arbitrary workloads from pluggable statistical pieces.

Where :mod:`repro.workload.synthetic` is the fixed SDSC-SP2 calibration
the paper needs, :class:`WorkloadComposition` lets studies assemble any
combination of arrival process, runtime distribution, processor-count
table and user-estimate model into SWF records that flow through the
same ``build_jobs`` pipeline, CLI and experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.rng import RngStreams
from repro.workload.estimates import ModalOverestimateModel
from repro.workload.models import (
    ArrivalProcess,
    GammaArrivals,
    LognormalRuntimes,
    RuntimeDistribution,
)
from repro.workload.swf import STATUS_COMPLETED, SWFRecord


@dataclass(frozen=True)
class ProcessorModel:
    """Discrete processor-count distribution."""

    choices: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    weights: tuple[float, ...] = (0.28, 0.12, 0.14, 0.16, 0.13, 0.10, 0.05, 0.02)
    max_procs: int = 128

    def __post_init__(self) -> None:
        if len(self.choices) != len(self.weights):
            raise ValueError("choices and weights must align")
        if not self.choices:
            raise ValueError("need at least one processor choice")
        if any(c < 1 or c > self.max_procs for c in self.choices):
            raise ValueError("choices must lie in [1, max_procs]")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")

    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        w = np.asarray(self.weights, dtype=float)
        return rng.choice(np.asarray(self.choices), size=n, p=w / w.sum()).astype(int)

    @classmethod
    def capped(cls, max_procs: int) -> "ProcessorModel":
        """Default table restricted to a smaller machine."""
        default = cls()
        kept = [(c, w) for c, w in zip(default.choices, default.weights) if c <= max_procs]
        if not kept:
            kept = [(1, 1.0)]
        choices, weights = zip(*kept)
        return cls(choices=choices, weights=weights, max_procs=max_procs)


@dataclass(frozen=True)
class WorkloadComposition:
    """A full recipe for a synthetic workload."""

    num_jobs: int = 1000
    arrivals: ArrivalProcess = field(default_factory=lambda: GammaArrivals(2131.0))
    runtimes: RuntimeDistribution = field(default_factory=LognormalRuntimes)
    processors: ProcessorModel = field(default_factory=ProcessorModel)
    estimates: ModalOverestimateModel = field(default_factory=ModalOverestimateModel)

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")


def compose_records(
    composition: WorkloadComposition,
    streams: RngStreams,
) -> list[SWFRecord]:
    """Generate SWF records from a composition (deterministic in seed)."""
    n = composition.num_jobs
    submit = composition.arrivals.submit_times(n, streams.get("compose.arrivals"))
    runtimes = composition.runtimes.runtimes(n, streams.get("compose.runtimes"))
    procs = composition.processors.draw(n, streams.get("compose.procs"))
    estimates = composition.estimates.draw(runtimes, streams.get("compose.estimates"))
    users = streams.get("compose.users").integers(1, 200, size=n)

    return [
        SWFRecord(
            job_number=i + 1,
            submit_time=float(submit[i]),
            wait_time=0.0,
            run_time=float(runtimes[i]),
            allocated_procs=int(procs[i]),
            requested_procs=int(procs[i]),
            requested_time=float(estimates[i]),
            status=STATUS_COMPLETED,
            user_id=int(users[i]),
        )
        for i in range(n)
    ]
