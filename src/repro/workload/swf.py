"""Standard Workload Format (SWF) reader and writer.

The Parallel Workloads Archive distributes supercomputer traces (the
paper uses SDSC SP2 v2.2) in SWF: one job per line, 18 whitespace-
separated integer-ish fields, with ``;``-prefixed header comments that
carry machine metadata (``; MaxNodes: 128`` and friends).  Missing
values are encoded as ``-1``.

Reference: Feitelson's "Standard Workload Format" definition (PWA).

Field order::

     1 job_number        2 submit_time       3 wait_time
     4 run_time          5 allocated_procs   6 avg_cpu_time
     7 used_memory       8 requested_procs   9 requested_time
    10 requested_memory 11 status           12 user_id
    13 group_id         14 executable       15 queue
    16 partition        17 preceding_job    18 think_time
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Iterable, Iterator, Optional, TextIO, Union

#: SWF sentinel for "unknown / not applicable".
MISSING = -1

#: SWF status codes (field 11).
STATUS_FAILED = 0
STATUS_COMPLETED = 1
STATUS_PARTIAL = 2  # partial execution (to be continued)
STATUS_LAST_PARTIAL = 3
STATUS_CANCELLED = 4
STATUS_UNKNOWN = 5


@dataclass(frozen=True)
class SWFRecord:
    """One job line of an SWF trace.  Times are seconds, ``-1`` = missing."""

    job_number: int
    submit_time: float
    wait_time: float = MISSING
    run_time: float = MISSING
    allocated_procs: int = MISSING
    avg_cpu_time: float = MISSING
    used_memory: int = MISSING
    requested_procs: int = MISSING
    requested_time: float = MISSING
    requested_memory: int = MISSING
    status: int = MISSING
    user_id: int = MISSING
    group_id: int = MISSING
    executable: int = MISSING
    queue: int = MISSING
    partition: int = MISSING
    preceding_job: int = MISSING
    think_time: float = MISSING

    # -- derived views --------------------------------------------------------
    @property
    def procs(self) -> int:
        """Best available processor count: allocated, else requested."""
        if self.allocated_procs != MISSING and self.allocated_procs > 0:
            return self.allocated_procs
        return self.requested_procs

    @property
    def estimate(self) -> float:
        """The user's runtime estimate (SWF ``requested_time``)."""
        return self.requested_time

    @property
    def usable(self) -> bool:
        """True if the record can drive a simulation job."""
        return (
            self.submit_time != MISSING
            and self.run_time != MISSING
            and self.run_time > 0
            and self.procs != MISSING
            and self.procs > 0
        )

    def to_line(self) -> str:
        """Render the record as a canonical SWF data line."""
        vals = []
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, float) and v == int(v):
                v = int(v)
            vals.append(str(v))
        return " ".join(vals)


@dataclass
class SWFHeader:
    """Header comments of an SWF file.

    Well-known directives are parsed into attributes; everything else
    is retained verbatim in :attr:`extra`.
    """

    version: Optional[str] = None
    computer: Optional[str] = None
    installation: Optional[str] = None
    max_jobs: Optional[int] = None
    max_nodes: Optional[int] = None
    max_procs: Optional[int] = None
    unix_start_time: Optional[int] = None
    timezone: Optional[str] = None
    note: Optional[str] = None
    extra: list[str] = field(default_factory=list)

    _INT_KEYS = {
        "maxjobs": "max_jobs",
        "maxnodes": "max_nodes",
        "maxprocs": "max_procs",
        "unixstarttime": "unix_start_time",
    }
    _STR_KEYS = {
        "version": "version",
        "computer": "computer",
        "installation": "installation",
        "timezone": "timezone",
        "note": "note",
    }

    def absorb(self, comment: str) -> None:
        """Parse one ``;`` header line into the appropriate attribute."""
        body = comment.lstrip(";").strip()
        if ":" in body:
            key, _, value = body.partition(":")
            norm = key.strip().lower().replace(" ", "").replace("-", "")
            value = value.strip()
            if norm in self._INT_KEYS:
                try:
                    setattr(self, self._INT_KEYS[norm], int(value))
                    return
                except ValueError:
                    pass
            elif norm in self._STR_KEYS:
                attr = self._STR_KEYS[norm]
                if getattr(self, attr) is None:
                    setattr(self, attr, value)
                    return
        self.extra.append(body)

    def to_lines(self) -> list[str]:
        out = []
        if self.version is not None:
            out.append(f"; Version: {self.version}")
        if self.computer is not None:
            out.append(f"; Computer: {self.computer}")
        if self.installation is not None:
            out.append(f"; Installation: {self.installation}")
        if self.max_jobs is not None:
            out.append(f"; MaxJobs: {self.max_jobs}")
        if self.max_nodes is not None:
            out.append(f"; MaxNodes: {self.max_nodes}")
        if self.max_procs is not None:
            out.append(f"; MaxProcs: {self.max_procs}")
        if self.unix_start_time is not None:
            out.append(f"; UnixStartTime: {self.unix_start_time}")
        if self.timezone is not None:
            out.append(f"; TimeZone: {self.timezone}")
        if self.note is not None:
            out.append(f"; Note: {self.note}")
        out.extend(f"; {line}" for line in self.extra)
        return out


class SWFParseError(ValueError):
    """Raised for malformed SWF data lines."""


_FIELD_NAMES = [f.name for f in fields(SWFRecord)]
_FLOAT_FIELDS = {"submit_time", "wait_time", "run_time", "avg_cpu_time", "requested_time",
                 "think_time"}


def _parse_line(line: str, lineno: int) -> SWFRecord:
    parts = line.split()
    if len(parts) != 18:
        raise SWFParseError(
            f"line {lineno}: expected 18 fields, got {len(parts)}: {line[:80]!r}"
        )
    kwargs = {}
    for name, token in zip(_FIELD_NAMES, parts):
        try:
            if name in _FLOAT_FIELDS:
                kwargs[name] = float(token)
            else:
                kwargs[name] = int(float(token))
        except ValueError as exc:
            raise SWFParseError(f"line {lineno}: bad value {token!r} for {name}") from exc
    return SWFRecord(**kwargs)


def parse_swf(stream: Union[str, TextIO]) -> tuple[SWFHeader, list[SWFRecord]]:
    """Parse SWF text (string or file-like) into a header and records.

    Blank lines are skipped; lines starting with ``;`` feed the header.
    """
    if isinstance(stream, str):
        stream = io.StringIO(stream)
    header = SWFHeader()
    records: list[SWFRecord] = []
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            header.absorb(line)
            continue
        records.append(_parse_line(line, lineno))
    return header, records


def read_swf_file(path: Union[str, Path]) -> tuple[SWFHeader, list[SWFRecord]]:
    """Read and parse an SWF trace file."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return parse_swf(fh)


def iter_swf_records(path: Union[str, Path]) -> Iterator[SWFRecord]:
    """Stream records from an SWF file without keeping them all in memory."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith(";"):
                continue
            yield _parse_line(line, lineno)


def write_swf_file(
    path: Union[str, Path],
    records: Iterable[SWFRecord],
    header: Optional[SWFHeader] = None,
) -> int:
    """Write records (and optional header) as an SWF file; returns count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        if header is not None:
            for line in header.to_lines():
                fh.write(line + "\n")
        for rec in records:
            fh.write(rec.to_line() + "\n")
            count += 1
    return count
