"""Synthetic SDSC-SP2-like workload generator.

The paper's evaluation uses the last 3000 jobs of the SDSC SP2 trace
(v2.2).  When that archive file is not available offline, this module
generates a statistically similar workload.  The calibration targets
are the subset statistics the paper reports (§4):

* 3000 jobs spanning ≈ 2.5 months;
* mean inter-arrival time ≈ 2131 s (35.52 min), bursty;
* mean runtime ≈ 2.7 h, heavy-tailed (lognormal);
* mean ≈ 17 requested processors on a 128-node machine, with strong
  preference for powers of two;
* user runtime estimates that are *highly inaccurate and often
  over-estimated*, with a minority of jobs reaching or exceeding their
  estimate (the "killed at the limit" spike well known from this
  trace — Mu'alem & Feitelson 2001, Tsafrir et al. 2005).

Every draw comes from named :class:`~repro.sim.rng.RngStreams`, so a
generated trace is a pure function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.rng import RngStreams
from repro.workload.estimates import ModalOverestimateModel
from repro.workload.swf import STATUS_COMPLETED, SWFRecord


@dataclass(frozen=True)
class SDSCSP2Model:
    """Calibration knobs of the synthetic SDSC SP2 workload."""

    #: Number of jobs to generate (paper subset: 3000).
    num_jobs: int = 3000
    #: Mean inter-arrival time in seconds (paper: 2131 s).
    mean_interarrival: float = 2131.0
    #: Gamma shape for inter-arrivals; < 1 gives the burstiness real
    #: submission streams show (CV > 1).
    interarrival_shape: float = 0.45
    #: Mean runtime in seconds (paper: ≈ 2.7 h).
    mean_runtime: float = 9720.0
    #: Lognormal sigma of runtimes (heavy tail).
    runtime_sigma: float = 1.9
    #: Runtime clamp, seconds.
    min_runtime: float = 30.0
    max_runtime: float = 200_000.0
    #: Machine size (SDSC SP2: 128 nodes).
    max_procs: int = 128
    #: Processor-count choices and weights (powers of two dominate;
    #: normalised internally).  Mean of the default table ≈ 17.
    proc_choices: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    proc_weights: tuple[float, ...] = (0.28, 0.12, 0.14, 0.16, 0.13, 0.10, 0.05, 0.02)
    #: Fraction of non-power-of-two stragglers mixed in.
    odd_proc_fraction: float = 0.08
    #: User-estimate behaviour (see ModalOverestimateModel).
    estimate_model: ModalOverestimateModel = field(default_factory=ModalOverestimateModel)

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        if self.mean_interarrival <= 0 or self.mean_runtime <= 0:
            raise ValueError("means must be positive")
        if len(self.proc_choices) != len(self.proc_weights):
            raise ValueError("proc_choices and proc_weights must have equal length")
        if any(c < 1 or c > self.max_procs for c in self.proc_choices):
            raise ValueError("proc_choices must lie in [1, max_procs]")
        if not 0.0 <= self.odd_proc_fraction < 1.0:
            raise ValueError("odd_proc_fraction must be in [0, 1)")

    @property
    def expected_mean_procs(self) -> float:
        w = np.asarray(self.proc_weights, dtype=float)
        c = np.asarray(self.proc_choices, dtype=float)
        return float((w / w.sum()) @ c)


def _draw_interarrivals(model: SDSCSP2Model, rng: np.random.Generator) -> np.ndarray:
    shape = model.interarrival_shape
    scale = model.mean_interarrival / shape
    return rng.gamma(shape, scale, size=model.num_jobs)


def _draw_runtimes(model: SDSCSP2Model, rng: np.random.Generator) -> np.ndarray:
    sigma = model.runtime_sigma
    # E[lognormal] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
    mu = np.log(model.mean_runtime) - sigma * sigma / 2.0
    runtimes = rng.lognormal(mu, sigma, size=model.num_jobs)
    return np.clip(runtimes, model.min_runtime, model.max_runtime)


def _draw_procs(model: SDSCSP2Model, rng: np.random.Generator) -> np.ndarray:
    weights = np.asarray(model.proc_weights, dtype=float)
    weights = weights / weights.sum()
    procs = rng.choice(np.asarray(model.proc_choices), size=model.num_jobs, p=weights)
    if model.odd_proc_fraction > 0.0:
        odd_mask = rng.random(model.num_jobs) < model.odd_proc_fraction
        odd_vals = rng.integers(1, min(33, model.max_procs + 1), size=model.num_jobs)
        procs = np.where(odd_mask, odd_vals, procs)
    return procs.astype(int)


def generate_sdsc_like_records(
    model: SDSCSP2Model,
    streams: RngStreams,
) -> list[SWFRecord]:
    """Generate a synthetic SDSC-SP2-like trace as SWF records.

    The records carry ``run_time`` (actual), ``requested_time`` (the
    modal user estimate), ``requested_procs`` and ``submit_time``; other
    SWF fields are filled with plausible values or left missing.
    """
    arr_rng = streams.get("synthetic.interarrival")
    run_rng = streams.get("synthetic.runtime")
    proc_rng = streams.get("synthetic.procs")
    est_rng = streams.get("synthetic.estimates")
    user_rng = streams.get("synthetic.users")

    interarrivals = _draw_interarrivals(model, arr_rng)
    submit_times = np.cumsum(interarrivals)
    submit_times -= submit_times[0]  # first job arrives at t = 0
    runtimes = _draw_runtimes(model, run_rng)
    procs = _draw_procs(model, proc_rng)
    estimates = model.estimate_model.draw(runtimes, est_rng)
    users = user_rng.integers(1, 200, size=model.num_jobs)

    records = []
    for i in range(model.num_jobs):
        records.append(
            SWFRecord(
                job_number=i + 1,
                submit_time=float(submit_times[i]),
                wait_time=0.0,
                run_time=float(runtimes[i]),
                allocated_procs=int(procs[i]),
                requested_procs=int(procs[i]),
                requested_time=float(estimates[i]),
                status=STATUS_COMPLETED,
                user_id=int(users[i]),
            )
        )
    return records
