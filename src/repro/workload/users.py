"""Per-user runtime-estimate behaviour.

Tsafrir, Etsion & Feitelson's study of user estimates (reference [17])
found that inaccuracy is not i.i.d. noise: it is a *per-user habit*.
Some users always request the queue maximum, some always pad by the
same factor, a few are genuinely accurate — and each user recycles a
handful of favourite values.

:class:`UserConsistentEstimateModel` reproduces that structure: every
user is assigned a persistent *behaviour profile* (deterministically
from the seed), and each of their jobs draws an estimate conditioned
on the profile.  Compared to the i.i.d. modal model this concentrates
inaccuracy: the same users are wrong over and over, which is exactly
what per-user estimate-correction schemes (and risk-aware admission)
face in production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.workload.estimates import CANONICAL_ESTIMATES


@dataclass(frozen=True)
class UserProfile:
    """One user's persistent estimating habit."""

    #: "accurate" | "padder" | "max_requester" | "overrunner"
    kind: str
    #: Personal padding factor (padder) — constant across their jobs.
    pad_factor: float
    #: Personal favourite estimate (max_requester), seconds.
    favourite: float


@dataclass(frozen=True)
class UserConsistentEstimateModel:
    """Assigns behaviour profiles per user, then estimates per job."""

    #: Fraction of users who estimate essentially correctly.
    p_accurate: float = 0.15
    #: Fraction who always pad by their personal factor.
    p_padder: float = 0.55
    #: Fraction who always request (their personal) huge value.
    p_max_requester: float = 0.20
    #: Remainder habitually underestimate (their jobs overrun).
    #: p_overrunner = 1 - p_accurate - p_padder - p_max_requester.
    pad_mu: float = 0.8
    pad_sigma: float = 0.7
    max_overrun_factor: float = 1.5
    #: Per-job jitter applied on top of the personal factor.
    jitter: float = 0.1

    def __post_init__(self) -> None:
        total = self.p_accurate + self.p_padder + self.p_max_requester
        if not 0.0 <= total <= 1.0:
            raise ValueError("behaviour fractions must sum to <= 1")
        if self.max_overrun_factor <= 1.0:
            raise ValueError("max_overrun_factor must be > 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    @property
    def p_overrunner(self) -> float:
        return 1.0 - self.p_accurate - self.p_padder - self.p_max_requester

    # -- profiles ------------------------------------------------------------
    def profile_for(self, user_id: int, seed: int) -> UserProfile:
        """The persistent profile of ``user_id`` under ``seed``."""
        rng = np.random.default_rng(
            np.random.SeedSequence([seed & 0xFFFFFFFF, int(user_id) & 0xFFFFFFFF, 0xE57])
        )
        u = rng.random()
        pad = 1.0 + rng.lognormal(self.pad_mu, self.pad_sigma)
        favourite = float(
            CANONICAL_ESTIMATES[rng.integers(len(CANONICAL_ESTIMATES) // 2,
                                             len(CANONICAL_ESTIMATES))]
        )
        if u < self.p_accurate:
            kind = "accurate"
        elif u < self.p_accurate + self.p_padder:
            kind = "padder"
        elif u < self.p_accurate + self.p_padder + self.p_max_requester:
            kind = "max_requester"
        else:
            kind = "overrunner"
        return UserProfile(kind=kind, pad_factor=pad, favourite=favourite)

    # -- estimates ---------------------------------------------------------------
    def draw(
        self,
        runtimes: Sequence[float],
        user_ids: Sequence[int],
        rng: np.random.Generator,
        seed: int = 0,
    ) -> np.ndarray:
        """Estimates for jobs with the given runtimes and owners."""
        runtimes = np.asarray(runtimes, dtype=float)
        if len(runtimes) != len(user_ids):
            raise ValueError("runtimes and user_ids must align")
        profiles = {uid: self.profile_for(uid, seed) for uid in set(user_ids)}
        out = np.empty_like(runtimes)
        for i, (rt, uid) in enumerate(zip(runtimes, user_ids)):
            profile = profiles[uid]
            noise = 1.0 + self.jitter * (rng.random() - 0.5)
            if profile.kind == "accurate":
                est = rt * noise
            elif profile.kind == "padder":
                est = rt * profile.pad_factor * noise
            elif profile.kind == "max_requester":
                est = max(profile.favourite, rt)  # never below the runtime
            else:  # overrunner
                est = rt / (1.0 + (self.max_overrun_factor - 1.0) * rng.random())
            out[i] = max(est, 1.0)
        return out

    def behaviour_counts(self, user_ids: Sequence[int], seed: int = 0) -> dict[str, int]:
        """How many distinct users fall into each behaviour class."""
        counts: dict[str, int] = {}
        for uid in set(user_ids):
            kind = self.profile_for(uid, seed).kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts
