"""Pluggable statistical models for workload generation.

The default SDSC-SP2-like generator (:mod:`repro.workload.synthetic`)
hard-wires one calibration.  This module provides composable pieces so
studies beyond the paper can vary the workload's *statistical shape*
while keeping everything else fixed:

* **arrival processes** — Poisson (memoryless), gamma (bursty, the
  default's family), Weibull, and a daily-cycle modulated wrapper that
  reproduces the strong diurnal pattern of real submission streams
  (cf. Lublin & Feitelson's workload model);
* **runtime distributions** — lognormal (the default), hyper-
  exponential mixtures (very short + very long jobs), and bounded
  Pareto for heavy-tail studies.

Everything draws from a caller-supplied ``numpy`` generator, so the
pieces compose with :class:`~repro.sim.rng.RngStreams` determinism.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

SECONDS_PER_DAY = 86_400.0


# --------------------------------------------------------------------------
# Arrival processes
# --------------------------------------------------------------------------
class ArrivalProcess(abc.ABC):
    """Generates job submission times (absolute seconds, sorted)."""

    @abc.abstractmethod
    def submit_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` non-decreasing submission times starting at 0."""

    @staticmethod
    def _cumulate(gaps: np.ndarray) -> np.ndarray:
        times = np.cumsum(gaps)
        return times - times[0]


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival times."""

    mean_interarrival: float

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be > 0")

    def submit_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self._cumulate(rng.exponential(self.mean_interarrival, size=n))


@dataclass(frozen=True)
class GammaArrivals(ArrivalProcess):
    """Gamma inter-arrivals; ``shape < 1`` gives bursty streams (CV > 1)."""

    mean_interarrival: float
    shape: float = 0.45

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0 or self.shape <= 0:
            raise ValueError("mean_interarrival and shape must be > 0")

    def submit_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        scale = self.mean_interarrival / self.shape
        return self._cumulate(rng.gamma(self.shape, scale, size=n))


@dataclass(frozen=True)
class WeibullArrivals(ArrivalProcess):
    """Weibull inter-arrivals; ``shape < 1`` is heavy-tailed."""

    mean_interarrival: float
    shape: float = 0.7

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0 or self.shape <= 0:
            raise ValueError("mean_interarrival and shape must be > 0")

    def submit_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # E[Weibull(k, lambda=1)] = Gamma(1 + 1/k); rescale to the mean.
        from math import gamma as gamma_fn

        unit_mean = gamma_fn(1.0 + 1.0 / self.shape)
        gaps = rng.weibull(self.shape, size=n) * (self.mean_interarrival / unit_mean)
        return self._cumulate(gaps)


@dataclass(frozen=True)
class DailyCycleArrivals(ArrivalProcess):
    """Wraps a base process with a diurnal intensity profile.

    Real submission streams peak during working hours.  The wrapper
    time-warps the base process: a sinusoidal intensity
    ``1 + depth·sin(2π(t/day − phase))`` compresses gaps during the
    peak and stretches them in the trough, preserving the base
    process's mean rate over whole days.
    """

    base: ArrivalProcess
    #: Peak-to-mean amplitude in [0, 1); 0 disables the cycle.
    depth: float = 0.6
    #: Fraction of a day by which the peak is shifted.
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.depth < 1.0:
            raise ValueError("depth must be in [0, 1)")

    def _intensity(self, t: np.ndarray) -> np.ndarray:
        return 1.0 + self.depth * np.sin(
            2.0 * np.pi * (t / SECONDS_PER_DAY - self.phase)
        )

    def submit_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        base_times = self.base.submit_times(n, rng)
        if self.depth == 0.0:
            return base_times
        # Thinning-free warp: advance each gap at the local intensity.
        out = np.empty_like(base_times)
        t = 0.0
        prev_base = 0.0
        for i, bt in enumerate(base_times):
            gap = bt - prev_base
            prev_base = bt
            # Local linearisation of the warp (gaps are short relative
            # to a day, so one evaluation per gap is adequate).
            rate = float(self._intensity(np.asarray([t]))[0])
            t += gap / max(rate, 1e-6)
            out[i] = t
        return out - out[0]


# --------------------------------------------------------------------------
# Runtime distributions
# --------------------------------------------------------------------------
class RuntimeDistribution(abc.ABC):
    """Generates actual job runtimes (seconds, > 0)."""

    @abc.abstractmethod
    def runtimes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` runtimes."""


@dataclass(frozen=True)
class LognormalRuntimes(RuntimeDistribution):
    """Heavy-tailed lognormal runtimes with a target mean."""

    mean: float = 9720.0
    sigma: float = 1.9
    minimum: float = 30.0
    maximum: float = 200_000.0

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.sigma <= 0:
            raise ValueError("mean and sigma must be > 0")
        if not 0 < self.minimum <= self.maximum:
            raise ValueError("need 0 < minimum <= maximum")

    def runtimes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        mu = np.log(self.mean) - self.sigma**2 / 2.0
        return np.clip(rng.lognormal(mu, self.sigma, size=n), self.minimum, self.maximum)


@dataclass(frozen=True)
class HyperExponentialRuntimes(RuntimeDistribution):
    """Two-phase mixture: a mass of short jobs plus a long-job tail."""

    short_mean: float = 600.0
    long_mean: float = 30_000.0
    short_fraction: float = 0.7
    minimum: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.short_fraction <= 1.0:
            raise ValueError("short_fraction must be in [0, 1]")
        if self.short_mean <= 0 or self.long_mean <= 0:
            raise ValueError("means must be > 0")

    @property
    def mean(self) -> float:
        return (self.short_fraction * self.short_mean
                + (1.0 - self.short_fraction) * self.long_mean)

    def runtimes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        short = rng.random(n) < self.short_fraction
        vals = np.where(
            short,
            rng.exponential(self.short_mean, size=n),
            rng.exponential(self.long_mean, size=n),
        )
        return np.maximum(vals, self.minimum)


@dataclass(frozen=True)
class BoundedParetoRuntimes(RuntimeDistribution):
    """Bounded Pareto runtimes for extreme-tail studies."""

    alpha: float = 1.1
    low: float = 60.0
    high: float = 200_000.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be > 0")
        if not 0 < self.low < self.high:
            raise ValueError("need 0 < low < high")

    def runtimes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(n)
        la, ha = self.low**self.alpha, self.high**self.alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)
