"""Workload substrate: traces, synthetic generation, estimates, deadlines.

The paper drives its simulations with the last 3000 jobs of the SDSC
SP2 trace (Parallel Workloads Archive, SWF format), a deadline model
layered on top (high/low urgency classes), and a runtime-estimate
model (accurate vs. the trace's actual user estimates).

This package provides each piece:

* :mod:`repro.workload.swf` — a complete Standard Workload Format
  reader/writer, so the genuine trace file is used when present;
* :mod:`repro.workload.synthetic` — a seeded statistical generator
  calibrated to the SDSC SP2 subset's published statistics, used when
  the archive file is unavailable (see DESIGN.md §2);
* :mod:`repro.workload.estimates` — user runtime-estimate models,
  including the paper's inaccuracy-percentage interpolation (§5.5);
* :mod:`repro.workload.deadlines` — the urgency-class deadline
  assignment of §4;
* :mod:`repro.workload.traces` — subsetting, statistics, and the
  pipeline that turns all of the above into simulator jobs.
"""

from repro.workload.swf import SWFHeader, SWFRecord, parse_swf, read_swf_file, write_swf_file
from repro.workload.synthetic import SDSCSP2Model, generate_sdsc_like_records
from repro.workload.estimates import (
    ModalOverestimateModel,
    accurate_estimates,
    interpolate_inaccuracy,
)
from repro.workload.archive import KNOWN_TRACES, TraceInfo, locate
from repro.workload.composer import ProcessorModel, WorkloadComposition, compose_records
from repro.workload.deadlines import DeadlineModel
from repro.workload.traces import (
    WorkloadSpec,
    build_jobs,
    describe_records,
    records_to_jobs,
    scale_arrivals,
    tail_subset,
)

__all__ = [
    "DeadlineModel",
    "KNOWN_TRACES",
    "ProcessorModel",
    "TraceInfo",
    "WorkloadComposition",
    "compose_records",
    "locate",
    "ModalOverestimateModel",
    "SDSCSP2Model",
    "SWFHeader",
    "SWFRecord",
    "WorkloadSpec",
    "accurate_estimates",
    "build_jobs",
    "describe_records",
    "generate_sdsc_like_records",
    "interpolate_inaccuracy",
    "parse_swf",
    "read_swf_file",
    "records_to_jobs",
    "scale_arrivals",
    "tail_subset",
    "write_swf_file",
]
