"""Registry of Parallel Workloads Archive traces the paper family uses.

The archive (https://www.cs.huji.ac.il/labs/parallel/workload/) hosts
the SWF traces this literature evaluates on.  The registry records the
metadata needed to use them correctly offline: machine size, node SPEC
rating where the papers state one, and whether the trace carries real
user runtime estimates (most do not, which is *why* the paper picks
SDSC SP2 — §4).

``locate``/``load`` find a trace file on disk (by explicit path or
conventional filename in a search directory) and sanity-check its
header against the registry entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.workload.swf import SWFHeader, SWFRecord, read_swf_file


@dataclass(frozen=True)
class TraceInfo:
    """Metadata for one archive trace."""

    key: str
    filename: str
    computer: str
    max_nodes: int
    #: SPEC rating per node where the papers state one (else None).
    node_rating: Optional[float]
    #: Whether requested_time carries genuine user estimates.
    has_user_estimates: bool
    note: str = ""


#: Traces relevant to the deadline-admission-control literature.  The
#: paper uses SDSC SP2 because it is the rare trace with genuine user
#: estimates *and* the highest utilisation of its contemporaries.
KNOWN_TRACES: dict[str, TraceInfo] = {
    info.key: info
    for info in (
        TraceInfo(
            key="sdsc-sp2",
            filename="SDSC-SP2-1998-4.2-cln.swf",
            computer="IBM SP2",
            max_nodes=128,
            node_rating=168.0,
            has_user_estimates=True,
            note="The paper's trace: last 3000 jobs, highest utilisation (~83%).",
        ),
        TraceInfo(
            key="ctc-sp2",
            filename="CTC-SP2-1996-3.1-cln.swf",
            computer="IBM SP2",
            max_nodes=338,
            node_rating=None,
            has_user_estimates=True,
            note="Cornell Theory Center SP2.",
        ),
        TraceInfo(
            key="kth-sp2",
            filename="KTH-SP2-1996-2.1-cln.swf",
            computer="IBM SP2",
            max_nodes=100,
            node_rating=None,
            has_user_estimates=True,
            note="KTH Stockholm SP2.",
        ),
        TraceInfo(
            key="sdsc-par95",
            filename="SDSC-Par-1995-3.1-cln.swf",
            computer="Intel Paragon",
            max_nodes=416,
            node_rating=None,
            has_user_estimates=False,
            note="No user estimates — unusable for this paper's question.",
        ),
        TraceInfo(
            key="lanl-cm5",
            filename="LANL-CM5-1994-4.1-cln.swf",
            computer="TMC CM-5",
            max_nodes=1024,
            node_rating=None,
            has_user_estimates=False,
        ),
    )
}


def traces_with_estimates() -> list[TraceInfo]:
    """Traces that can drive the paper's experiments."""
    return [t for t in KNOWN_TRACES.values() if t.has_user_estimates]


def locate(key: str, search_dir: Union[str, Path]) -> Optional[Path]:
    """Path of the registry trace in ``search_dir``, or None if absent."""
    info = KNOWN_TRACES.get(key)
    if info is None:
        raise KeyError(f"unknown trace {key!r}; known: {sorted(KNOWN_TRACES)}")
    candidate = Path(search_dir) / info.filename
    return candidate if candidate.is_file() else None


class TraceMismatch(ValueError):
    """The file's SWF header contradicts the registry metadata."""


def load(
    key: str,
    path: Union[str, Path],
    strict: bool = True,
) -> tuple[SWFHeader, list[SWFRecord]]:
    """Read a trace and verify it is the machine the registry says.

    With ``strict`` the machine size must match exactly; otherwise a
    mismatch only has to be non-catastrophic (file size present).
    """
    info = KNOWN_TRACES.get(key)
    if info is None:
        raise KeyError(f"unknown trace {key!r}; known: {sorted(KNOWN_TRACES)}")
    header, records = read_swf_file(path)
    declared = header.max_nodes or header.max_procs
    if declared is not None and declared != info.max_nodes:
        message = (
            f"{path}: header declares {declared} nodes; registry expects "
            f"{info.max_nodes} for {info.key}"
        )
        if strict:
            raise TraceMismatch(message)
    return header, records
