"""Deadline assignment: the high/low urgency model of §4.

The trace has no deadlines, so the paper (following Irwin, Grit &
Chase, HPDC 2004) assigns each job a deadline as a factor of its *real*
runtime:

* a fraction of jobs (default 20 %) forms the **high urgency** class
  with a *low* ``deadline/runtime`` factor;
* the rest is **low urgency** with a *high* factor;
* the **deadline high:low ratio** is the ratio of the two class means
  — a larger ratio means low-urgency jobs get looser deadlines;
* factors are normally distributed within each class, and the deadline
  is "always assigned a higher factored value based on the real
  runtime", which we enforce by truncating factors at ``min_factor``.

The arrival order of the two classes is random (the class draw is i.i.d.
per job).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.job import UrgencyClass


@dataclass(frozen=True)
class DeadlineModel:
    """Parameters of the urgency-class deadline assignment."""

    #: Fraction of jobs in the high urgency (tight deadline) class.
    high_urgency_fraction: float = 0.20
    #: Mean ``deadline/runtime`` factor of the *high urgency* class
    #: (the "low deadline_i/runtime_i value" of the paper).
    low_factor_mean: float = 2.0
    #: Deadline high:low ratio — mean factor of the low urgency class
    #: is ``low_factor_mean × ratio``.
    ratio: float = 4.0
    #: Coefficient of variation of the normal factor distributions.
    cv: float = 0.25
    #: Hard lower truncation so deadlines always exceed runtimes.
    min_factor: float = 1.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.high_urgency_fraction <= 1.0:
            raise ValueError("high_urgency_fraction must be in [0, 1]")
        if self.low_factor_mean <= 1.0:
            raise ValueError("low_factor_mean must be > 1")
        if self.ratio < 1.0:
            raise ValueError("ratio must be >= 1")
        if self.cv < 0.0:
            raise ValueError("cv must be >= 0")
        if self.min_factor < 1.0:
            raise ValueError("min_factor must be >= 1")

    @property
    def high_factor_mean(self) -> float:
        """Mean factor of the low urgency class."""
        return self.low_factor_mean * self.ratio

    def assign(
        self,
        runtimes: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, list[UrgencyClass]]:
        """Draw deadlines (seconds, relative to submission) for ``runtimes``.

        Returns ``(deadlines, urgency_classes)`` aligned with the input.
        """
        runtimes = np.asarray(runtimes, dtype=float)
        n = runtimes.shape[0]
        is_high = rng.random(n) < self.high_urgency_fraction
        means = np.where(is_high, self.low_factor_mean, self.high_factor_mean)
        factors = rng.normal(means, self.cv * means)
        factors = np.maximum(factors, self.min_factor)
        deadlines = factors * runtimes
        classes = [UrgencyClass.HIGH if h else UrgencyClass.LOW for h in is_high]
        return deadlines, classes
